"""The algorithm portfolio: every quantile engine behind one surface.

OPAQ (the paper's algorithm), KLL, GK01 and the AS95 interval baseline
each answer the structural :class:`~repro.core.QuantileEstimator`
protocol — ``summarize`` / ``bounds`` / ``bound`` / ``estimate`` — and
their summaries share one duck-typed surface (see
:mod:`repro.portfolio.base`): counts, exact extremes,
``guaranteed_rank_error()``, vectorised ``bounds_arrays``, merge where
claimed, and versioned ``.npz`` serialisation with per-engine magics
(``OPAQSUM`` / ``KLLSUM`` / ``GKSUM`` / ``AS95SUM``).

:data:`ENGINES` is the catalogue: one :class:`EngineSpec` per engine
recording its guarantee kind, mergeability and serialisation magic next
to constructors for every context an engine is built in — default
(:meth:`EngineSpec.make`), equal-memory shootouts
(:meth:`EngineSpec.for_budget`), and the multi-tenant registry's
per-key fold state (:meth:`EngineSpec.key_state`).  ``docs/portfolio.md``
is the prose companion: the "which engine when" decision table plus the
measured equal-memory shootout behind it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.summary import OPAQSummary
from repro.errors import ConfigError
from repro.portfolio.as95 import AS95Engine, IntervalSummary
from repro.portfolio.base import SketchEngine, SketchSummary
from repro.portfolio.gk import GKEngine, GKSummary
from repro.portfolio.kll import KLLEngine, KLLSummary
from repro.portfolio.opaq import (
    OPAQEngine,
    OpaqKeyState,
    compact_within_budget,
    exact_delta,
)

__all__ = [
    "ENGINES",
    "ENGINE_POLICIES",
    "EngineSpec",
    "resolve_engine",
    "make_engine",
    "OPAQEngine",
    "OpaqKeyState",
    "KLLEngine",
    "KLLSummary",
    "GKEngine",
    "GKSummary",
    "AS95Engine",
    "IntervalSummary",
    "SketchEngine",
    "SketchSummary",
    "compact_within_budget",
    "exact_delta",
]


@dataclass(frozen=True)
class EngineSpec:
    """One portfolio entry: an engine's claims and its constructors.

    The claims columns (``guarantee`` / ``mergeable`` /
    ``merge_commutes`` / ``summary_magic``) are data, not prose — the
    conformance suite asserts each one against the implementation, and
    ``docs/portfolio.md``'s catalogue table is generated from the same
    fields, so the documentation cannot drift from the code.
    """

    name: str
    #: ``"deterministic"``, ``"randomized"`` or ``"none"``.
    guarantee: str
    #: Whether ``summary.merge(other)`` is supported at all.
    mergeable: bool
    #: Whether ``a.merge(b)`` and ``b.merge(a)`` answer identically.
    merge_commutes: bool
    #: Magic string of the engine's ``.npz`` archive format.
    summary_magic: str
    engine_cls: type
    summary_cls: type
    description: str

    def make(self, **kwargs: Any) -> Any:
        """Construct the engine with its native tuning knobs."""
        return self.engine_cls(**kwargs)

    def for_budget(self, budget: int, n_hint: int = 0) -> Any:
        """Construct the engine sized to ``budget`` float64 slots."""
        return self.engine_cls.for_budget(budget, n_hint)

    def load(self, path: str | os.PathLike) -> Any:
        """Load one of this engine's summary archives."""
        return self.summary_cls.load(path)

    def key_state(self, epsilon: float, max_samples: int, seed: int = 0) -> Any:
        """Fresh per-key fold state for the multi-tenant registry."""
        return self.engine_cls.key_state(epsilon, max_samples, seed)

    def restored_key_state(
        self,
        loaded: Any,
        compactions: int,
        *,
        epsilon: float,
        max_samples: int,
    ) -> Any:
        """Per-key fold state wrapping a summary restored from spill."""
        return self.engine_cls.restored_key_state(
            loaded, compactions, epsilon=epsilon, max_samples=max_samples
        )


ENGINES: dict[str, EngineSpec] = {
    "opaq": EngineSpec(
        name="opaq",
        guarantee="deterministic",
        mergeable=True,
        merge_commutes=True,
        summary_magic="OPAQSUM",
        engine_cls=OPAQEngine,
        summary_cls=OPAQSummary,
        description=(
            "The paper's one-pass regular-sampling summary: deterministic "
            "a-priori rank bounds, commutative merge, floor-tightened "
            "guarantees."
        ),
    ),
    "kll": EngineSpec(
        name="kll",
        guarantee="randomized",
        mergeable=True,
        merge_commutes=False,
        summary_magic="KLLSUM",
        engine_cls=KLLEngine,
        summary_cls=KLLSummary,
        description=(
            "Randomized compactor sketch: near-optimal space, fully "
            "mergeable; bounds hold per query except with probability "
            "delta."
        ),
    ),
    "gk": EngineSpec(
        name="gk",
        guarantee="deterministic",
        mergeable=True,
        merge_commutes=False,
        summary_magic="GKSUM",
        engine_cls=GKEngine,
        summary_cls=GKSummary,
        description=(
            "Greenwald-Khanna tuples: deterministic eps*n bounds in the "
            "smallest streaming state; one-shot merge with additive "
            "epsilon decay."
        ),
    ),
    "as95": EngineSpec(
        name="as95",
        guarantee="none",
        mergeable=False,
        merge_commutes=False,
        summary_magic="AS95SUM",
        engine_cls=AS95Engine,
        summary_cls=IntervalSummary,
        description=(
            "Adaptive interval histogram (the paper's motivating "
            "baseline): smallest state, point estimates only, no error "
            "bound."
        ),
    ),
}

#: Named tenancy policies: a policy is an alias the service config
#: accepts wherever an engine name is accepted, picking the engine whose
#: claims match the stated operational need.
ENGINE_POLICIES: dict[str, str] = {
    "deterministic-guarantee": "opaq",
    "mergeable-sketch": "kll",
    "smallest-memory": "gk",
}


def resolve_engine(name: str) -> str:
    """Resolve an engine name or policy alias to a canonical engine name."""
    resolved = ENGINE_POLICIES.get(name, name)
    if resolved not in ENGINES:
        choices = sorted(ENGINES) + sorted(ENGINE_POLICIES)
        raise ConfigError(
            f"unknown engine {name!r}; choose one of {', '.join(choices)}"
        )
    return resolved


def make_engine(name: str, **kwargs: Any) -> Any:
    """Construct an engine by name (or policy alias) with native knobs."""
    return ENGINES[resolve_engine(name)].make(**kwargs)
