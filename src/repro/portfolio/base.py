"""Shared machinery of the algorithm portfolio.

Every engine in :mod:`repro.portfolio` answers the same four-method
surface as :class:`~repro.core.OPAQ` — the structural
:class:`~repro.core.QuantileEstimator` protocol: ``summarize`` a data
source into a queryable summary, ``bounds``/``bound`` that summary for
quantile fractions, ``estimate`` both in one call.  What differs per
engine is the *summary object* behind that surface; this module pins the
duck-typed contract every portfolio summary honours:

``count`` / ``memory_footprint`` / ``minimum`` / ``maximum``
    Elements described, resident float64 slots, and the exact tracked
    extremes.

``guaranteed_rank_error()``
    The engine's documented rank-error guarantee ``g`` for the whole
    summary, with OPAQ's convention: the true rank distance of any served
    bound is **less than** ``g`` (so ``g == 1`` means exact).  For KLL the
    claim is probabilistic (holds per query except with probability
    ``delta``); for AS95 it is vacuous (``g == count`` — no guarantee,
    stated honestly).  ``guarantee_kind`` names which reading applies.

``bounds_arrays(phis)``
    The vectorised query: the same 6-tuple of parallel arrays
    ``(psi, lower, upper, max_below, max_above, phis)`` that
    :func:`repro.core.quantile_phase.bounds_arrays` produces for OPAQ
    summaries, so the serving layer can answer from any engine through
    one code path.

``merge(other)`` / ``absorb(chunk)`` / ``save(path)`` / ``load(path)``
    Mergeability (engines that do not support it raise
    :class:`~repro.errors.EstimationError`), streaming ingest for the
    multi-tenant registry's fold path, and versioned ``.npz``
    serialisation with a per-engine magic — the same
    magic-and-version discipline as ``OPAQSUM`` archives, enforced by the
    :func:`save_archive` / :func:`load_archive` helpers here.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator, consume
from repro.core.bounds import QuantileBounds
from repro.core.protocols import DataSource
from repro.errors import DataError, EstimationError
from repro.obs import current_tracer

__all__ = [
    "SketchSummary",
    "SketchEngine",
    "validate_phis",
    "target_ranks",
    "save_archive",
    "load_archive",
]


def validate_phis(phis: np.ndarray | Sequence[float]) -> np.ndarray:
    """Validate a φ-vector exactly like the core quantile phase does."""
    fractions = np.ascontiguousarray(phis, dtype=np.float64)
    if fractions.ndim != 1:
        raise EstimationError("phis must be a one-dimensional vector")
    if fractions.size == 0:
        raise EstimationError("pass at least one quantile fraction")
    if not bool(np.all((fractions > 0.0) & (fractions <= 1.0))):
        raise EstimationError(
            f"every phi must lie in (0, 1]; got {fractions!r}"
        )
    return fractions


def target_ranks(fractions: np.ndarray, count: int) -> np.ndarray:
    """``psi = clamp(ceil(phi*n), 1, n)`` — the core's rank arithmetic."""
    return np.minimum(
        count, np.maximum(1, np.ceil(fractions * count).astype(np.int64))
    )


# ----------------------------------------------------------------------
# Versioned .npz archives (the OPAQSUM discipline, parameterised)
# ----------------------------------------------------------------------


def save_archive(
    path: str | os.PathLike,
    *,
    magic: str,
    version: int,
    arrays: dict[str, np.ndarray],
    meta: dict[str, object],
) -> None:
    """Persist one summary as a versioned ``.npz`` archive.

    Same layout as :meth:`repro.core.OPAQSummary.save`: named arrays plus
    a ``meta`` JSON blob carrying the magic, the format version and the
    scalar state.  ``magic`` marks the file as this engine's; ``version``
    gates compatibility on load.
    """
    body = dict(meta)
    body["magic"] = magic
    body["format"] = version
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(body).encode(), dtype=np.uint8),
        **arrays,
    )


def load_archive(
    path: str | os.PathLike,
    *,
    magic: str,
    supported: tuple[int, ...],
) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Load an archive written by :func:`save_archive`.

    Returns ``(arrays, meta)``.  A missing file, a wrong magic or an
    unknown version raises :class:`~repro.errors.DataError` with a
    message naming the problem — the same contract as
    :meth:`repro.core.OPAQSummary.load`, so a mixed-engine spill
    directory fails loudly instead of mis-parsing a foreign archive.
    """
    path = Path(path)
    if path.suffix != ".npz" and not path.exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path) as archive:
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "meta"
            }
            meta = json.loads(bytes(archive["meta"].tobytes()).decode())
    except FileNotFoundError:
        raise DataError(f"summary file does not exist: {path}") from None
    except (KeyError, ValueError) as exc:
        raise DataError(f"malformed summary file {path}: {exc}") from None
    found = meta.get("magic")
    if found != magic:
        raise DataError(
            f"{path} is not a {magic} summary file (magic {found!r}, "
            f"expected {magic!r})"
        )
    version = meta.get("format")
    if version not in supported:
        raise DataError(
            f"summary file {path} has format version {version!r}; this "
            f"build reads versions {supported} — upgrade the library or "
            "re-create the summary"
        )
    return arrays, meta


# ----------------------------------------------------------------------
# The portfolio summary contract
# ----------------------------------------------------------------------


class SketchSummary(StreamingQuantileEstimator):
    """A mutable sketch that doubles as its own queryable summary.

    OPAQ separates the estimator (stateless config) from the summary (the
    immutable artifact of one pass).  The sketch engines fuse the two: a
    :class:`SketchSummary` *is* the ingest state — feed it chunks through
    the inherited :meth:`update` — and *is* the queryable artifact.  That
    duality is what lets the multi-tenant registry hold one object per
    key regardless of engine.
    """

    #: ``"deterministic"`` (the bound always holds), ``"randomized"``
    #: (holds per query except with probability ``delta``) or ``"none"``
    #: (``guaranteed_rank_error() == count``: no claim at all).
    guarantee_kind = "deterministic"
    #: Per-query failure probability for ``guarantee_kind="randomized"``.
    delta: float | None = None

    FORMAT_MAGIC = "SKETCH"
    FORMAT_VERSION = 1

    def __init__(self) -> None:
        super().__init__()
        self._compactions = 0

    # -- bookkeeping shared by every engine ----------------------------

    @property
    def count(self) -> int:
        """Elements described (the summary-side name for ``n``)."""
        return self._n

    @property
    def compactions(self) -> int:
        """Lossy compaction events absorbed so far."""
        return self._compactions

    def absorb(self, chunk: np.ndarray) -> None:
        """Registry fold hook: ingest one (sorted) chunk in place."""
        self.update(chunk)

    # -- per-engine surface --------------------------------------------

    @property
    def minimum(self) -> float:
        raise NotImplementedError

    @property
    def maximum(self) -> float:
        raise NotImplementedError

    def guaranteed_rank_error(self) -> int:
        """Summary-wide rank guarantee ``g`` (distance < ``g``)."""
        raise NotImplementedError

    def bounds_arrays(
        self, phis: np.ndarray | Sequence[float]
    ) -> tuple[np.ndarray, ...]:
        """``(psi, lower, upper, max_below, max_above, phis)`` arrays."""
        raise NotImplementedError

    def merge(self, other: "SketchSummary") -> "SketchSummary":
        raise NotImplementedError

    def save(self, path: str | os.PathLike) -> None:
        raise NotImplementedError

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SketchSummary":
        raise NotImplementedError


def bounds_list(
    summary: SketchSummary, phis: Sequence[float]
) -> list[QuantileBounds]:
    """Assemble :class:`~repro.core.QuantileBounds` rows from a summary's
    vectorised ``bounds_arrays`` (indices 0: sketches do not expose
    sample positions)."""
    psi, lower, upper, max_below, max_above, fractions = (
        summary.bounds_arrays(phis)
    )
    return [
        QuantileBounds(
            phi=float(fractions[i]),
            rank=int(psi[i]),
            lower=float(lower[i]),
            upper=float(upper[i]),
            max_below=int(max_below[i]),
            max_above=int(max_above[i]),
        )
        for i in range(fractions.size)
    ]


class SketchEngine:
    """Base engine: the :class:`~repro.core.QuantileEstimator` surface
    over a :class:`SketchSummary` subclass.

    Subclasses set ``name``/``summary_cls`` and build their summary in
    :meth:`_new_summary`; everything else — source normalisation, obs
    counters, bounds assembly — is shared.
    """

    name = "abstract"
    guarantee_kind = "deterministic"
    summary_cls: type[SketchSummary] = SketchSummary

    #: Chunk size used when chopping arrays/datasets into a stream.
    run_size = 1 << 17

    def _new_summary(self) -> SketchSummary:
        raise NotImplementedError

    def summarize(self, source: DataSource) -> SketchSummary:
        """One pass over ``source`` into a fresh sketch summary."""
        sketch = self._new_summary()
        tracer = current_tracer()
        with tracer.span(f"portfolio.{self.name}.summarize"):
            consume(sketch, source, run_size=self.run_size)
        tracer.count(f"portfolio.{self.name}.ingest.elements", sketch.n)
        return sketch

    def bounds(
        self, summary: SketchSummary, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Quantile bounds for many fractions."""
        out = bounds_list(summary, phis)
        current_tracer().count(f"portfolio.{self.name}.queries", len(out))
        return out

    def bound(self, summary: SketchSummary, phi: float) -> QuantileBounds:
        """Quantile bounds for a single fraction."""
        return self.bounds(summary, [phi])[0]

    def estimate(
        self, source: DataSource, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """``summarize`` + ``bounds`` in one call."""
        return self.bounds(self.summarize(source), phis)
