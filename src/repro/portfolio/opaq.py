"""OPAQ as a portfolio engine, plus the registry's per-key OPAQ state.

:class:`OPAQEngine` wraps the paper's estimator behind the portfolio
conventions: engines are constructed from tuning knobs (not a full
:class:`~repro.core.OPAQConfig`), derive a near-memory-optimal run size
``~sqrt(n*s)`` when the source's size is knowable, and support the
equal-memory :meth:`for_budget` construction the shootout benchmark
uses (sample budget = ``slots / 3``, enforced by
:meth:`~repro.core.OPAQSummary.compact_to` whatever the source shape).

This module is also where the *canonical* per-key fold logic lives —
:func:`exact_delta` and :func:`compact_within_budget` — so the
multi-tenant registry can treat OPAQ as one engine among several: the
service layer imports from the portfolio, never the reverse.
:class:`OpaqKeyState` replicates the registry's historical fold
behaviour exactly (sorted pending → exact delta → merge →
epsilon-gated compaction), byte for byte.
"""

from __future__ import annotations

import math
from os import PathLike
from typing import Sequence

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ
from repro.core.quantile_phase import bounds_arrays, bounds_for, quantile_bounds
from repro.core.protocols import DataSource
from repro.core.summary import OPAQSummary
from repro.obs import current_tracer
from repro.storage import DiskDataset, RunReader

__all__ = [
    "OPAQEngine",
    "OpaqKeyState",
    "exact_delta",
    "compact_within_budget",
]


def exact_delta(data: np.ndarray) -> OPAQSummary:
    """Sorted data -> exact summary (unit gaps, rank guarantee 1).

    ``data`` must already be sorted and owned by the caller.  Each
    element is its own group, so its floor IS the element — without
    explicit floors they default to the conservative ``-inf``, which is
    harmless while gaps are 1 but makes every group a straddler for
    every value after compaction, blowing the guarantee up to
    ``~s*(k-1)`` instead of ``~k`` and defeating
    :func:`compact_within_budget`.
    """
    return OPAQSummary(
        samples=data,
        gaps=np.ones(data.size, dtype=np.int64),
        num_runs=1,
        count=data.size,
        minimum=float(data[0]),
        maximum=float(data[-1]),
        floors=data,
    )


def compact_within_budget(
    summary: OPAQSummary, *, epsilon: float, target: int
) -> tuple[OPAQSummary, bool]:
    """Compact toward ``target`` samples without breaking the key's epsilon.

    Returns ``(summary, compacted)``.  The accuracy contract is
    ``(g - 1) <= epsilon * count`` where ``g`` is the deterministic
    rank-error guarantee; when the target compaction would break it the
    sample budget doubles until a compliant width is found, falling back
    to no compaction at all (the caller then pays for the extra resident
    samples — the budget squeezes residency, never accuracy).
    """
    if summary.num_samples <= target:
        return summary, False
    allowed = epsilon * summary.count
    width = target
    while width < summary.num_samples:
        candidate = summary.compact_to(width)
        if candidate.guaranteed_rank_error() - 1 <= allowed:
            return candidate, True
        width *= 2
    return summary, False


class OPAQEngine:
    """The paper's estimator behind the portfolio conventions."""

    name = "opaq"
    guarantee_kind = "deterministic"
    summary_cls = OPAQSummary

    #: Chunk size used when the source's total size is unknowable (an
    #: iterable of runs) and no explicit ``run_size`` was given.
    DEFAULT_RUN_SIZE = 1 << 17

    def __init__(
        self,
        sample_size: int = 1000,
        run_size: int | None = None,
        max_samples: int | None = None,
    ) -> None:
        self.sample_size = sample_size
        self.run_size = run_size
        self.max_samples = max_samples

    def _config_for(self, n: int | None) -> OPAQConfig:
        run_size = self.run_size
        if run_size is None:
            if n is None:
                run_size = self.DEFAULT_RUN_SIZE
            else:
                # The memory-optimal choice: r*s == m at m = sqrt(n*s).
                run_size = max(
                    self.sample_size,
                    int(math.sqrt(float(n) * self.sample_size)),
                )
                run_size = min(run_size, max(1, n))
        return OPAQConfig(
            run_size=run_size, sample_size=min(self.sample_size, run_size)
        )

    def summarize(self, source: DataSource) -> OPAQSummary:
        """One pass over ``source``; compacted to ``max_samples`` if set."""
        if isinstance(source, DiskDataset):
            n: int | None = source.count
        elif isinstance(source, RunReader):
            n = source.dataset.count
        elif isinstance(source, np.ndarray):
            n = int(source.size)
        else:
            n = None
        tracer = current_tracer()
        with tracer.span(f"portfolio.{self.name}.summarize"):
            summary = OPAQ(self._config_for(n)).summarize(source)
            if self.max_samples is not None:
                summary = summary.compact_to(self.max_samples)
        tracer.count(f"portfolio.{self.name}.ingest.elements", summary.count)
        return summary

    def bounds(
        self, summary: OPAQSummary, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Quantile bounds for many fractions."""
        out = bounds_for(summary, phis)
        current_tracer().count(f"portfolio.{self.name}.queries", len(out))
        return out

    def bound(self, summary: OPAQSummary, phi: float) -> QuantileBounds:
        """Quantile bounds for a single fraction."""
        return quantile_bounds(summary, phi)

    def estimate(
        self, source: DataSource, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """``summarize`` + ``bounds`` in one call."""
        return self.bounds(self.summarize(source), phis)

    @classmethod
    def for_budget(cls, budget: int, n_hint: int = 0) -> "OPAQEngine":
        """Equal-memory construction: a retained sample costs 3 slots
        (sample, gap, floor), so a budget of ``b`` slots buys ``b/3``
        samples.  ``compact_to`` enforces the cap whatever run shape the
        source produced; the run size is tuned from ``n_hint`` so the
        fresh summary lands near the cap instead of far above it.
        """
        sample_budget = max(2, budget // 3)
        sample_size = min(1000, sample_budget)
        runs = max(1, sample_budget // sample_size)
        run_size = None
        if n_hint > 0:
            run_size = max(sample_size, -(-n_hint // runs))
        return cls(
            sample_size=sample_size,
            run_size=run_size,
            max_samples=sample_budget,
        )

    @classmethod
    def key_state(
        cls, epsilon: float, max_samples: int, seed: int = 0
    ) -> "OpaqKeyState":
        """Registry per-key state (the historical fold logic, verbatim)."""
        return OpaqKeyState(epsilon=epsilon, max_samples=max_samples)

    @classmethod
    def restored_key_state(
        cls,
        loaded: OPAQSummary,
        compactions: int,
        *,
        epsilon: float,
        max_samples: int,
    ) -> "OpaqKeyState":
        """Wrap a restored ``OPAQSUM`` archive back into fold state."""
        return OpaqKeyState(
            epsilon=epsilon,
            max_samples=max_samples,
            summary=loaded,
            compactions=compactions,
        )


class OpaqKeyState:
    """One registry key's OPAQ state: summary + epsilon-gated folding.

    The uniform per-key interface every engine's state answers (the
    sketch engines answer it with their summary object itself):
    ``absorb`` sorted data, expose ``count``/``memory_footprint``/
    ``compactions``, answer ``guaranteed_rank_error``/``bounds_arrays``,
    and ``save`` to the engine's archive format.
    """

    engine = "opaq"
    __slots__ = ("epsilon", "max_samples", "summary", "compactions")

    def __init__(
        self,
        epsilon: float,
        max_samples: int,
        summary: OPAQSummary | None = None,
        compactions: int = 0,
    ) -> None:
        self.epsilon = epsilon
        self.max_samples = max_samples
        self.summary = summary
        self.compactions = compactions

    @property
    def count(self) -> int:
        return 0 if self.summary is None else self.summary.count

    @property
    def memory_footprint(self) -> int:
        return 0 if self.summary is None else self.summary.memory_footprint

    def absorb(self, data: np.ndarray) -> None:
        """Merge one sorted chunk: exact delta -> merge -> gated compact."""
        delta = exact_delta(data)
        merged = delta if self.summary is None else self.summary.merge(delta)
        merged, compacted = compact_within_budget(
            merged, epsilon=self.epsilon, target=self.max_samples
        )
        if compacted:
            self.compactions += 1
        self.summary = merged

    def guaranteed_rank_error(self) -> int:
        return self.summary.guaranteed_rank_error()

    def bounds_arrays(
        self, phis: np.ndarray | Sequence[float]
    ) -> tuple[np.ndarray, ...]:
        return bounds_arrays(self.summary, phis)

    def save(self, path: str | PathLike) -> None:
        self.summary.save(path)
