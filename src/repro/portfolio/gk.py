"""GK01 as a portfolio engine: deterministic bounds from the tuple bands.

:class:`~repro.baselines.GreenwaldKhanna` is the repo's point-estimate
baseline; :class:`GKSummary` promotes it with per-query deterministic
bounds, a one-shot merge, and versioned serialisation (magic ``GKSUM``).

The bound derivation works straight off the tuple invariant.  With
``rmin = cumsum(g)`` and ``rmax = rmin + delta``, tuple ``i``'s value has
true rank (count of elements at or below it) inside ``[rmin_i, rmax_i]``.
For target rank ``psi``:

* **lower** — the largest tuple with ``rmax < psi``: at most ``psi - 1``
  elements sit at or below it, so its value is at most ``e_psi`` under
  any duplication (the same tie-safety argument the OPAQ quantile phase
  makes).  Its rank distance is ``psi - rmin_i <= max(g + delta)``.
* **upper** — the smallest tuple with ``rmin >= psi``: at least ``psi``
  elements sit at or below it, so its value is at least ``e_psi``.  Its
  distance is ``rmax_j - psi < max(g + delta)``.

The summary-wide guarantee is therefore ``g = max_i(g_i + delta_i) + 1``
(distance < ``g``), computed from the *actual* tuple state — it stays
honest whatever ingest or merge history produced the tuples, rather than
trusting the ``2*eps*n`` bookkeeping invariant.  The first and last
tuples hold the exact extremes (inserts beyond either end carry
``delta = 0``), so extreme quantiles get finite bounds for free.

Merge is one-shot: values interleave and each side's rank band is
widened by its rank interval in the *other* summary (predecessor
``rmin``, successor ``rmax - 1``).  That construction is exact but the
compress pass afterwards works against the summed epsilon — repeated
pairwise merging degrades ``eps`` additively, which is why the
multi-tenant registry feeds GK keys by streaming ``absorb``, never by
merge trees.  (KLL is the engine whose merge does not decay.)
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.baselines.gk01 import GreenwaldKhanna
from repro.errors import EstimationError
from repro.portfolio.base import (
    SketchEngine,
    load_archive,
    save_archive,
    target_ranks,
    validate_phis,
)

__all__ = ["GKSummary", "GKEngine"]


class GKSummary(GreenwaldKhanna):
    """A GK01 sketch with bounds, merge, extremes and serialisation."""

    name = "gk"
    guarantee_kind = "deterministic"

    FORMAT_MAGIC = "GKSUM"
    FORMAT_VERSION = 1
    _SUPPORTED_FORMATS = (1,)

    def __init__(self, epsilon: float = 0.01) -> None:
        super().__init__(epsilon=epsilon)
        self._compactions = 0

    # -- ingest bookkeeping --------------------------------------------

    def _compress(self, cap: int) -> None:
        before = self._v.size
        super()._compress(cap)
        if self._v.size < before:
            self._compactions += 1

    @property
    def count(self) -> int:
        return self._n

    @property
    def compactions(self) -> int:
        return self._compactions

    @property
    def minimum(self) -> float:
        self._require_data()
        return float(self._v[0])

    @property
    def maximum(self) -> float:
        self._require_data()
        return float(self._v[-1])

    def absorb(self, chunk: np.ndarray) -> None:
        self.update(chunk)

    # -- guarantees and bounds -----------------------------------------

    def guaranteed_rank_error(self) -> int:
        """``max_i(g_i + delta_i) + 1``: deterministic, from actual state."""
        if self._v.size == 0:
            return 1
        return int(np.max(self._g + self._d)) + 1

    def bounds_arrays(
        self, phis: np.ndarray | Sequence[float]
    ) -> tuple[np.ndarray, ...]:
        """Deterministic enclosure per φ from the tuple rank bands."""
        self._require_data()
        fractions = validate_phis(phis)
        n = self._n
        psi = target_ranks(fractions, n)
        rmin = np.cumsum(self._g)
        # Monotone envelope: merged summaries can carry locally loose
        # rmax values; the running max is still a valid upper bound for
        # every later (larger) value and restores sortedness for the
        # binary search.
        rmax = np.maximum.accumulate(rmin + self._d)

        lower_idx = np.searchsorted(rmax, psi, side="left") - 1
        has_lower = lower_idx >= 0
        safe_lo = np.maximum(lower_idx, 0)
        lower = np.where(has_lower, self._v[safe_lo], self._v[0])
        max_below = np.where(has_lower, psi - rmin[safe_lo], psi - 1)

        upper_idx = np.minimum(
            np.searchsorted(rmin, psi, side="left"), self._v.size - 1
        )
        upper = self._v[upper_idx]
        max_above = rmax[upper_idx] - psi

        max_below = np.maximum(0, np.minimum(max_below, psi - 1))
        max_above = np.maximum(0, np.minimum(max_above, n - psi))
        lower = np.minimum(lower, upper)
        return psi, lower, upper, max_below, max_above, fractions

    # -- merge ----------------------------------------------------------

    def _copy(self) -> "GKSummary":
        out = GKSummary(epsilon=self.epsilon)
        out._v = self._v.copy()
        out._g = self._g.copy()
        out._d = self._d.copy()
        out._n = self._n
        out._compactions = self._compactions
        return out

    def merge(self, other: "GKSummary") -> "GKSummary":
        """One-shot merge over disjoint data.

        Deterministic (no randomness) but **not** commutative bitwise:
        the compress pass walks the interleaved tuples left to right, so
        ``a.merge(b)`` and ``b.merge(a)`` may retain different tuples —
        both within the summed-epsilon bound.  The merged epsilon is
        ``eps_a + eps_b`` (the additive decay of one-shot GK merging).
        """
        if not isinstance(other, GKSummary):
            raise EstimationError("can only merge with another GKSummary")
        if other._n == 0:
            return self._copy()
        if self._n == 0:
            out = other._copy()
            out.epsilon = self.epsilon
            return out

        def banded(
            values: np.ndarray,
            rmin_own: np.ndarray,
            rmax_own: np.ndarray,
            v_other: np.ndarray,
            rmin_other: np.ndarray,
            rmax_other: np.ndarray,
            n_other: int,
        ) -> tuple[np.ndarray, np.ndarray]:
            """Widen one side's rank bands by its interval in the other:
            at least the predecessor's ``rmin`` of the other summary sits
            at or below each value, at most ``rmax - 1`` of the strict
            successor does."""
            pred = np.searchsorted(v_other, values, side="right") - 1
            lo = np.where(pred >= 0, rmin_other[np.maximum(pred, 0)], 0)
            succ = np.searchsorted(v_other, values, side="right")
            has_succ = succ < v_other.size
            hi = np.where(
                has_succ,
                rmax_other[np.minimum(succ, v_other.size - 1)] - 1,
                n_other,
            )
            return rmin_own + lo, rmax_own + hi

        rmin_a = np.cumsum(self._g)
        rmax_a = rmin_a + self._d
        rmin_b = np.cumsum(other._g)
        rmax_b = rmin_b + other._d
        lo_a, hi_a = banded(
            self._v, rmin_a, rmax_a, other._v, rmin_b, rmax_b, other._n
        )
        lo_b, hi_b = banded(
            other._v, rmin_b, rmax_b, self._v, rmin_a, rmax_a, self._n
        )
        values = np.concatenate([self._v, other._v])
        rmin = np.concatenate([lo_a, lo_b])
        rmax = np.concatenate([hi_a, hi_b])
        order = np.argsort(values, kind="stable")
        values, rmin, rmax = values[order], rmin[order], rmax[order]
        # Ranks are non-decreasing in value, so the running max of the
        # lower bounds (and its envelope on the upper bounds) tightens
        # without losing soundness; it also guarantees g >= 0.
        rmin = np.maximum.accumulate(rmin)
        rmax = np.maximum(rmax, rmin)

        out = GKSummary(epsilon=min(0.499, self.epsilon + other.epsilon))
        out._v = values
        out._g = np.diff(rmin, prepend=0)
        out._d = rmax - rmin
        out._n = self._n + other._n
        out._compactions = self._compactions + other._compactions
        out._compress(max(1, int(2 * out.epsilon * out._n)))
        return out

    # -- serialisation ---------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist as a versioned ``.npz`` archive (magic ``GKSUM``)."""
        self._require_data()
        save_archive(
            path,
            magic=self.FORMAT_MAGIC,
            version=self.FORMAT_VERSION,
            arrays={"v": self._v, "g": self._g, "d": self._d},
            meta={
                "epsilon": self.epsilon,
                "count": self._n,
                "compactions": self._compactions,
            },
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "GKSummary":
        """Load a summary saved with :meth:`save` (byte-identical state)."""
        arrays, meta = load_archive(
            path, magic=cls.FORMAT_MAGIC, supported=cls._SUPPORTED_FORMATS
        )
        out = cls(epsilon=float(meta["epsilon"]))
        out._v = np.ascontiguousarray(arrays["v"], dtype=np.float64)
        out._g = np.ascontiguousarray(arrays["g"], dtype=np.int64)
        out._d = np.ascontiguousarray(arrays["d"], dtype=np.int64)
        out._n = int(meta["count"])
        out._compactions = int(meta["compactions"])
        return out


class GKEngine(SketchEngine):
    """The GK engine: deterministic ``eps*n`` bounds, adaptive memory."""

    name = "gk"
    guarantee_kind = "deterministic"
    summary_cls = GKSummary

    #: Empirical steady-state tuple count of the batched implementation
    #: is ``~C/eps`` (the compress cap is ``2*eps*n`` and folded gaps
    #: settle near half of it); ``C = 2.5`` is the conservative end the
    #: equal-memory benchmark verifies against its budget.
    TUPLES_PER_INV_EPS = 2.5

    def __init__(self, epsilon: float = 0.01) -> None:
        self.epsilon = epsilon

    def _new_summary(self) -> GKSummary:
        return GKSummary(epsilon=self.epsilon)

    @classmethod
    def for_budget(cls, budget: int, n_hint: int = 0) -> "GKEngine":
        """Equal-memory construction: a tuple costs 3 slots, so a budget
        of ``b`` slots supports ``~b/3`` tuples, i.e.
        ``eps = C / (b/3)``."""
        tuples = max(8, budget // 3)
        return cls(epsilon=min(0.4, max(1e-9, cls.TUPLES_PER_INV_EPS / tuples)))

    @classmethod
    def key_state(
        cls, epsilon: float, max_samples: int, seed: int = 0
    ) -> GKSummary:
        """Registry per-key state: the served guarantee is
        ``max(g + delta) + 1 <= 2*eps_gk*n + 1``, so running GK at half
        the contract epsilon keeps ``g - 1 <= eps*n`` deterministically."""
        return GKSummary(epsilon=epsilon / 2.0)

    @classmethod
    def restored_key_state(
        cls,
        loaded: GKSummary,
        compactions: int,
        *,
        epsilon: float,
        max_samples: int,
    ) -> GKSummary:
        """A restored GK summary carries its whole state."""
        return loaded
