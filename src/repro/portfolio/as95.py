"""AS95 as a portfolio engine: the honest no-guarantee reference point.

The paper's motivating baseline ([AS95] adaptive intervals) "does not
provide an upper bound of the error rate" — and the portfolio keeps that
property visible instead of papering over it.  :class:`IntervalSummary`
answers the shared ``bounds_arrays`` surface with a **degenerate
enclosure**: ``lower == upper`` is the interpolated point estimate, and
``max_below``/``max_above`` are the vacuous clamps (``psi - 1`` and
``n - psi``) that say "the truth may be anywhere".  Correspondingly
``guaranteed_rank_error()`` is ``count`` (``guarantee_kind = "none"``),
so every consumer that checks "distance < guarantee" remains formally
correct while learning nothing — which is exactly AS95's contract.

Two honest exceptions: while the first buffer is still pending (the
structure is unseeded) answers are exact, and the tracked extremes are
always exact.  The summary is not mergeable — splitting/merging interval
histograms with drifted boundaries has no error story at all — and
:meth:`merge` says so with a typed error.

Serialisation (magic ``AS95SUM``) persists boundaries, counts and any
pending seed buffer, so a spilled key resumes exactly where it left off.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from repro.baselines.as95 import AdaptiveIntervalEstimator
from repro.errors import EstimationError
from repro.portfolio.base import (
    SketchEngine,
    load_archive,
    save_archive,
    target_ranks,
    validate_phis,
)

__all__ = ["IntervalSummary", "AS95Engine"]


class IntervalSummary(AdaptiveIntervalEstimator):
    """An AS95 interval histogram with the portfolio summary surface."""

    name = "as95"
    guarantee_kind = "none"

    FORMAT_MAGIC = "AS95SUM"
    FORMAT_VERSION = 1
    _SUPPORTED_FORMATS = (1,)

    def __init__(self, intervals: int = 64, split_factor: float = 2.0) -> None:
        super().__init__(intervals=intervals, split_factor=split_factor)
        self._compactions = 0
        self._min = math.inf
        self._max = -math.inf

    # -- ingest bookkeeping --------------------------------------------

    def _consume(self, chunk: np.ndarray) -> None:
        self._min = min(self._min, float(chunk.min()))
        self._max = max(self._max, float(chunk.max()))
        super()._consume(chunk)

    @property
    def count(self) -> int:
        return self._n

    @property
    def compactions(self) -> int:
        """Always 0: AS95 has no discrete lossy events to count — the
        whole structure is lossy from the first split onward."""
        return self._compactions

    @property
    def minimum(self) -> float:
        self._require_data()
        return self._min

    @property
    def maximum(self) -> float:
        self._require_data()
        return self._max

    def absorb(self, chunk: np.ndarray) -> None:
        self.update(chunk)

    # -- guarantees and bounds -----------------------------------------

    def guaranteed_rank_error(self) -> int:
        """``count`` — the vacuous guarantee (no error bound exists).

        Exception: while everything is still in the unseeded buffer the
        answers are exact, and the summary says so (``1``).
        """
        self._require_data()
        if self._bounds is None:
            return 1
        return self._n

    def bounds_arrays(
        self, phis: np.ndarray | Sequence[float]
    ) -> tuple[np.ndarray, ...]:
        """Degenerate enclosure: the point estimate with vacuous bands."""
        self._require_data()
        fractions = validate_phis(phis)
        n = self._n
        psi = target_ranks(fractions, n)
        if self._bounds is None:
            data = np.sort(np.concatenate(self._pending))
            estimate = data[psi - 1]
            zeros = np.zeros(psi.size, dtype=np.int64)
            return psi, estimate.copy(), estimate.copy(), zeros, zeros.copy(), fractions
        counts = self._counts
        cum = np.cumsum(counts)
        target = fractions * cum[-1]
        cell = np.minimum(
            np.searchsorted(cum, target, side="left"), counts.size - 1
        )
        before = cum[cell] - counts[cell]
        inside = np.where(
            counts[cell] > 0,
            (target - before) / np.maximum(counts[cell], 1e-300),
            0.5,
        )
        left = self._bounds[cell]
        right = self._bounds[cell + 1]
        estimate = np.clip(left + inside * (right - left), self._min, self._max)
        max_below = psi - 1
        max_above = n - psi
        return psi, estimate, estimate.copy(), max_below, max_above, fractions

    # -- merge ----------------------------------------------------------

    def merge(self, other: "IntervalSummary") -> "IntervalSummary":
        raise EstimationError(
            "as95 summaries are not mergeable: interval histograms with "
            "independently drifted boundaries have no sound combination "
            "(pick kll for a mergeable sketch or opaq/gk for merge with "
            "deterministic bounds)"
        )

    # -- serialisation ---------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist as a versioned ``.npz`` archive (magic ``AS95SUM``)."""
        self._require_data()
        seeded = self._bounds is not None
        empty = np.empty(0, dtype=np.float64)
        pending = (
            np.concatenate(self._pending) if self._pending else empty
        )
        save_archive(
            path,
            magic=self.FORMAT_MAGIC,
            version=self.FORMAT_VERSION,
            arrays={
                "bounds": self._bounds if seeded else empty,
                "counts": self._counts if seeded else empty,
                "pending": pending,
            },
            meta={
                "intervals": self.intervals,
                "split_factor": self.split_factor,
                "count": self._n,
                "minimum": self._min,
                "maximum": self._max,
                "seeded": seeded,
            },
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "IntervalSummary":
        """Load a summary saved with :meth:`save`.

        The pending buffer reloads as one chunk; seeding sorts the
        concatenation either way, so resumed ingest behaves identically.
        """
        arrays, meta = load_archive(
            path, magic=cls.FORMAT_MAGIC, supported=cls._SUPPORTED_FORMATS
        )
        out = cls(
            intervals=int(meta["intervals"]),
            split_factor=float(meta["split_factor"]),
        )
        if bool(meta["seeded"]):
            out._bounds = np.ascontiguousarray(
                arrays["bounds"], dtype=np.float64
            )
            out._counts = np.ascontiguousarray(
                arrays["counts"], dtype=np.float64
            )
        pending = np.ascontiguousarray(arrays["pending"], dtype=np.float64)
        if pending.size:
            out._pending = [pending]
            out._pending_size = int(pending.size)
        out._n = int(meta["count"])
        out._min = float(meta["minimum"])
        out._max = float(meta["maximum"])
        return out


class AS95Engine(SketchEngine):
    """The AS95 engine: smallest state, point estimates, no guarantee."""

    name = "as95"
    guarantee_kind = "none"
    summary_cls = IntervalSummary

    def __init__(self, intervals: int = 64, split_factor: float = 2.0) -> None:
        self.intervals = intervals
        self.split_factor = split_factor

    def _new_summary(self) -> IntervalSummary:
        return IntervalSummary(
            intervals=self.intervals, split_factor=self.split_factor
        )

    @classmethod
    def for_budget(cls, budget: int, n_hint: int = 0) -> "AS95Engine":
        """Equal-memory construction: an interval costs ~2 slots (a
        boundary and a count), the paper's own accounting."""
        return cls(intervals=max(4, (budget - 1) // 2))

    @classmethod
    def key_state(
        cls, epsilon: float, max_samples: int, seed: int = 0
    ) -> IntervalSummary:
        """Registry per-key state: intervals sized to the key's sample
        target (2 slots each vs OPAQ's 3 per sample).  The epsilon
        contract is *not* honoured — AS95 has no error bound; the served
        guarantee says so."""
        return IntervalSummary(intervals=max(4, max_samples))

    @classmethod
    def restored_key_state(
        cls,
        loaded: IntervalSummary,
        compactions: int,
        *,
        epsilon: float,
        max_samples: int,
    ) -> IntervalSummary:
        """A restored interval summary carries its whole state."""
        return loaded
