"""KLL as a portfolio engine: mergeable randomized sketch with bounds.

:class:`~repro.baselines.KLLSketch` is the repo's point-estimate
baseline; this module promotes it to a first-class engine.
:class:`KLLSummary` adds what the baseline lacks — exact extremes,
per-query *probabilistic* rank bounds, sketch merge, and versioned
serialisation (magic ``KLLSUM``) including the compactor RNG state, so a
spilled-and-restored sketch continues the exact random sequence it would
have produced in memory.

The guarantee model (documented in ``docs/portfolio.md``): the baseline's
empirical one-sigma rank error is ``sigma = 1.7*n/k``.  Compaction noise
is a sum of independent bounded terms, so the sub-gaussian tail bound
``P(|err| > z*sigma) <= delta`` with ``z = sqrt(2*ln(2/delta))`` gives a
one-sided rank band ``B = ceil(z * 1.7 * n / k)`` at the documented
``delta = 0.01``.  A bound query shifts the estimated rank by ``B`` in
each direction before reading the value, so each served enclosure holds
except with probability ``delta`` — and the summary-wide guarantee
``g = 2B + 2`` follows OPAQ's convention (true rank distance < ``g``).
An uncompacted sketch (single level) stores everything and serves exact
answers (``g = 1``).
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from repro.baselines.kll import KLLSketch
from repro.errors import ConfigError, EstimationError
from repro.portfolio.base import (
    SketchEngine,
    load_archive,
    save_archive,
    target_ranks,
    validate_phis,
)

__all__ = ["KLLSummary", "KLLEngine"]

#: Empirical one-sigma coefficient of the baseline sketch (rank error
#: ``~1.7*n/k``; see :meth:`repro.baselines.KLLSketch.rank_error_estimate`).
SIGMA_COEFF = 1.7
#: Documented per-query failure probability of every served bound.
DELTA = 0.01
#: Two-sided sub-gaussian z-score for ``DELTA``: ``sqrt(2*ln(2/delta))``.
Z_SCORE = math.sqrt(2.0 * math.log(2.0 / DELTA))


class KLLSummary(KLLSketch):
    """A KLL sketch with bounds, merge, extremes and serialisation."""

    name = "kll"
    guarantee_kind = "randomized"
    delta = DELTA

    FORMAT_MAGIC = "KLLSUM"
    FORMAT_VERSION = 1
    _SUPPORTED_FORMATS = (1,)

    def __init__(self, k: int = 200, seed: int = 0) -> None:
        super().__init__(k=k, seed=seed)
        self._compactions = 0
        self._min = math.inf
        self._max = -math.inf

    # -- ingest bookkeeping --------------------------------------------

    def _consume(self, chunk: np.ndarray) -> None:
        self._min = min(self._min, float(chunk.min()))
        self._max = max(self._max, float(chunk.max()))
        super()._consume(chunk)

    def _compact(self, level: int) -> None:
        super()._compact(level)
        self._compactions += 1

    @property
    def count(self) -> int:
        return self._n

    @property
    def compactions(self) -> int:
        return self._compactions

    @property
    def minimum(self) -> float:
        self._require_data()
        return self._min

    @property
    def maximum(self) -> float:
        self._require_data()
        return self._max

    def absorb(self, chunk: np.ndarray) -> None:
        self.update(chunk)

    # -- guarantees and bounds -----------------------------------------

    def rank_band(self) -> int:
        """One-sided rank band ``B = ceil(z * 1.7 * n / k)`` at ``delta``.

        Zero while the sketch has never compacted (one level: every item
        is still present at weight 1, answers are exact).
        """
        if self.num_levels == 1:
            return 0
        return int(math.ceil(Z_SCORE * SIGMA_COEFF * self._n / self.k))

    def guaranteed_rank_error(self) -> int:
        """``g = 2B + 2`` (distance < ``g`` w.p. ``1 - delta`` per query).

        Twice the band because a served *bound* is read ``B`` estimated
        ranks away from the target, and its own true rank may deviate by
        another ``B``.  Clipped to ``count`` — beyond that the claim is
        vacuous anyway.
        """
        band = self.rank_band()
        if band == 0:
            return 1
        return int(min(self._n, 2 * band + 2))

    def bounds_arrays(
        self, phis: np.ndarray | Sequence[float]
    ) -> tuple[np.ndarray, ...]:
        """Probabilistic enclosure per φ: values at estimated ranks
        ``psi -/+ B``, falling back to the exact extremes off either end."""
        self._require_data()
        fractions = validate_phis(phis)
        n = self._n
        psi = target_ranks(fractions, n)
        values, weights = self._weighted_items()
        cum = np.cumsum(weights)
        band = self.rank_band()

        # Lower: largest item whose estimated rank is <= psi - B, so its
        # true rank is <= psi w.p. 1 - delta (hence value <= e_psi even
        # under ties — any item at true rank <= psi is <= the value at
        # rank psi).  With band 0 and unit weights this serves the exact
        # quantile itself, keeping the g == 1 claim honest.  Off the end:
        # the exact minimum (always sound).
        lower_idx = np.searchsorted(cum, psi - band, side="right") - 1
        has_lower = lower_idx >= 0
        safe_lo = np.maximum(lower_idx, 0)
        lower = np.where(has_lower, values[safe_lo], self._min)
        max_below = np.where(
            has_lower,
            np.ceil(psi - cum[safe_lo] + band).astype(np.int64),
            psi - 1,
        )

        # Upper: smallest item whose estimated rank is >= psi + B, so its
        # true rank is >= psi w.p. 1 - delta (value >= e_psi).  Off the
        # end: the exact maximum.
        upper_idx = np.searchsorted(cum, psi + band, side="left")
        has_upper = upper_idx < values.size
        safe_hi = np.minimum(upper_idx, values.size - 1)
        upper = np.where(has_upper, values[safe_hi], self._max)
        max_above = np.where(
            has_upper,
            np.ceil(cum[safe_hi] + band - psi).astype(np.int64),
            n - psi,
        )

        max_below = np.maximum(0, np.minimum(max_below, psi - 1))
        max_above = np.maximum(0, np.minimum(max_above, n - psi))
        lower = np.minimum(lower, upper)
        return psi, lower, upper, max_below, max_above, fractions

    # -- merge ----------------------------------------------------------

    def merge(self, other: "KLLSummary") -> "KLLSummary":
        """Combine two sketches over disjoint data (same ``k`` required).

        Level-wise concatenation followed by the standard compaction
        sweep.  The merged sketch continues *this* operand's RNG stream,
        so the result is deterministic given the operands — but not
        independent of operand order (KLL merge is commutative in
        distribution, not bitwise; the conformance suite pins exactly
        this claim).
        """
        if not isinstance(other, KLLSummary):
            raise EstimationError("can only merge with another KLLSummary")
        if self.k != other.k:
            raise ConfigError(
                f"cannot merge KLL sketches with k={self.k} and "
                f"k={other.k}; equal-k merge is the mergeability contract"
            )
        out = KLLSummary(k=self.k, seed=0)
        out._rng.bit_generator.state = self._rng.bit_generator.state
        depth = max(len(self._levels), len(other._levels))
        out._levels = [[] for _ in range(depth)]
        out._sizes = [0] * depth
        for src in (self, other):
            for level, pieces in enumerate(src._levels):
                for piece in pieces:
                    out._levels[level].append(piece.copy())
                    out._sizes[level] += piece.size
        out._n = self._n + other._n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        out._compactions = self._compactions + other._compactions
        level = 0
        while level < len(out._levels):
            if out._sizes[level] > out._capacity(level):
                out._compact(level)
            level += 1
        return out

    # -- serialisation ---------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist as a versioned ``.npz`` archive (magic ``KLLSUM``).

        Level payloads travel concatenated with per-level totals; the
        compactor RNG state rides in the JSON meta so a restored sketch
        draws the same random sequence it would have in memory.
        """
        self._require_data()
        level_sizes = np.array(self._sizes, dtype=np.int64)
        chunks = [
            piece for pieces in self._levels for piece in pieces
        ]
        level_data = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
        )
        save_archive(
            path,
            magic=self.FORMAT_MAGIC,
            version=self.FORMAT_VERSION,
            arrays={"level_data": level_data, "level_sizes": level_sizes},
            meta={
                "k": self.k,
                "count": self._n,
                "minimum": self._min,
                "maximum": self._max,
                "compactions": self._compactions,
                "rng": self._rng.bit_generator.state,
            },
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "KLLSummary":
        """Load a sketch saved with :meth:`save` (byte-identical state)."""
        arrays, meta = load_archive(
            path, magic=cls.FORMAT_MAGIC, supported=cls._SUPPORTED_FORMATS
        )
        out = cls(k=int(meta["k"]), seed=0)
        out._rng.bit_generator.state = meta["rng"]
        sizes = [int(s) for s in arrays["level_sizes"]]
        data = np.ascontiguousarray(arrays["level_data"], dtype=np.float64)
        out._levels = []
        out._sizes = []
        pos = 0
        for size in sizes:
            out._levels.append([data[pos : pos + size].copy()] if size else [])
            out._sizes.append(size)
            pos += size
        if not out._levels:
            out._levels, out._sizes = [[]], [0]
        out._n = int(meta["count"])
        out._min = float(meta["minimum"])
        out._max = float(meta["maximum"])
        out._compactions = int(meta["compactions"])
        return out


class KLLEngine(SketchEngine):
    """The KLL engine: randomized, mergeable, near-optimal space."""

    name = "kll"
    guarantee_kind = "randomized"
    summary_cls = KLLSummary

    def __init__(self, k: int = 200, seed: int = 0) -> None:
        self.k = k
        self.seed = seed

    def _new_summary(self) -> KLLSummary:
        return KLLSummary(k=self.k, seed=self.seed)

    @classmethod
    def for_budget(cls, budget: int, n_hint: int = 0) -> "KLLEngine":
        """Equal-memory construction: total resident items across the
        geometric compactor stack converge to ``~3k`` (ratio 2/3), so a
        budget of ``b`` float64 slots buys ``k = b // 3``."""
        return cls(k=max(8, budget // 3))

    @classmethod
    def key_state(
        cls, epsilon: float, max_samples: int, seed: int = 0
    ) -> KLLSummary:
        """Registry per-key state tuned so the served guarantee meets the
        key's epsilon contract ``g - 1 <= eps*n``.

        ``g = 2*ceil(z*1.7*n/k) + 2`` asymptotically needs only
        ``k >= 2*z*1.7/eps``, but the ceil/+2 constants can breach the
        contract by a couple of ranks right where compaction first kicks
        in (``n`` slightly above ``k``).  Sizing at ``k = 3*z*1.7/eps``
        leaves a third of the budget to absorb those constants: the
        sketch is exact until ``n > k``, and for every larger ``n`` the
        slack ``eps*n - (2*(z*1.7*n/k + 1) + 1) = eps*n/3 - 3`` is
        positive (``eps*n > 3*z*1.7 > 9`` there)."""
        k = max(8, int(math.ceil(3.0 * Z_SCORE * SIGMA_COEFF / epsilon)) + 1)
        return KLLSummary(k=k, seed=seed)

    @classmethod
    def restored_key_state(
        cls,
        loaded: KLLSummary,
        compactions: int,
        *,
        epsilon: float,
        max_samples: int,
    ) -> KLLSummary:
        """A restored sketch carries its whole state (RNG included)."""
        return loaded
