"""Applications of OPAQ from the paper's motivation section.

Equi-depth histograms / selectivity estimation (:class:`EquiDepthHistogram`,
with :class:`EquiWidthHistogram` as the classic strawman it beats under
skew), external sorting with quantile splitters (:func:`external_sort`),
parallel load balancing (:class:`LoadBalancer`), and equi-depth attribute
discretisation for quantitative rule mining
(:class:`EquiDepthDiscretizer`).
"""

from repro.apps.discretization import EquiDepthDiscretizer
from repro.apps.equiwidth import EquiWidthHistogram
from repro.apps.external_sort import SortReport, external_sort
from repro.apps.histogram import EquiDepthHistogram, SelectivityEstimate
from repro.apps.load_balance import BalanceReport, LoadBalancer
from repro.apps.table_stats import (
    ConjunctionEstimate,
    Predicate,
    TableStatistics,
)

__all__ = [
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "SelectivityEstimate",
    "EquiDepthDiscretizer",
    "external_sort",
    "SortReport",
    "LoadBalancer",
    "BalanceReport",
    "TableStatistics",
    "Predicate",
    "ConjunctionEstimate",
]
