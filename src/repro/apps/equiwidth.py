"""Equi-width histograms — the strawman the paper's introduction targets.

"In the past, equi-depth histograms [Koo80, PS84, MD88] have not worked
well for range queries when data distribution skew has been high" — and
equi-*width* histograms (the simplest optimizer statistic, [Koo80]-style)
fare worse still: under skew, most of the mass lands in a few cells and
the uniform-within-cell assumption collapses.

:class:`EquiWidthHistogram` implements that classic statistic over the
same one-pass streaming discipline, so the selectivity-estimation
benchmark can compare it head-to-head with the OPAQ-backed
:class:`~repro.apps.EquiDepthHistogram` on skewed data and reproduce the
introduction's claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, EstimationError

__all__ = ["EquiWidthHistogram"]


@dataclass
class EquiWidthHistogram:
    """Fixed-grid equal-width histogram with streaming construction.

    Parameters
    ----------
    lo, hi:
        The value range the grid covers (values outside are clamped into
        the boundary cells, keeping counts exact and values coarse —
        the standard optimizer behaviour).
    cells:
        Number of equal-width buckets; the memory budget in counters.
    """

    lo: float
    hi: float
    cells: int

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ConfigError("need lo < hi")
        if self.cells < 1:
            raise ConfigError("need at least one cell")
        self._counts = np.zeros(self.cells, dtype=np.int64)
        self._width = (self.hi - self.lo) / self.cells
        self._n = 0

    @property
    def n(self) -> int:
        """Values absorbed so far."""
        return self._n

    @property
    def counts(self) -> np.ndarray:
        """Per-cell populations (copy)."""
        return self._counts.copy()

    def update(self, chunk: np.ndarray) -> None:
        """Absorb one chunk of values."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.size == 0:
            return
        idx = ((chunk - self.lo) / self._width).astype(np.int64)
        np.clip(idx, 0, self.cells - 1, out=idx)
        self._counts += np.bincount(idx, minlength=self.cells)
        self._n += chunk.size

    def _cum_at(self, value: float) -> float:
        """Estimated ``count(x <= value)`` under uniform-within-cell."""
        if value < self.lo:
            return 0.0
        if value >= self.hi:
            return float(self._n)
        position = (value - self.lo) / self._width
        cell = min(int(position), self.cells - 1)
        inside = position - cell
        before = float(self._counts[:cell].sum())
        return before + inside * float(self._counts[cell])

    def selectivity(self, lo: float, hi: float) -> float:
        """Point estimate of ``P(lo <= x <= hi)`` — no bounds available.

        This is the crucial asymmetry versus the OPAQ-backed equi-depth
        histogram: the equal-width estimate comes with no deterministic
        band, and under skew its error is unbounded.
        """
        if hi < lo:
            raise EstimationError("need lo <= hi")
        self._require_data()
        return max(0.0, (self._cum_at(hi) - self._cum_at(np.nextafter(lo, -np.inf)))) / self._n

    def quantile(self, phi: float) -> float:
        """Point estimate of the φ-quantile (uniform-within-cell)."""
        if not 0.0 < phi <= 1.0:
            raise EstimationError("phi must lie in (0, 1]")
        self._require_data()
        cum = np.cumsum(self._counts)
        target = phi * self._n
        cell = min(int(np.searchsorted(cum, target, side="left")), self.cells - 1)
        before = cum[cell] - self._counts[cell]
        inside = (
            (target - before) / self._counts[cell] if self._counts[cell] else 0.5
        )
        return self.lo + (cell + inside) * self._width

    def _require_data(self) -> None:
        if self._n == 0:
            raise EstimationError("no data absorbed yet")
