"""Equi-depth histograms and selectivity estimation from an OPAQ summary.

The paper's opening motivation: "Query optimizers need accurate estimates
of the number of tuples satisfying various predicates ... quantile
algorithms can generate equi-depth histograms [PIHS96], which have been
used to estimate query result sizes."

:class:`EquiDepthHistogram` turns one OPAQ pass into a ``q``-bucket
equi-depth histogram whose bucket populations carry *deterministic* error
bounds (each boundary is off by at most ``n/s`` ranks — Lemmas 1/2), and
answers range-selectivity queries through the summary's rank estimation,
again with deterministic bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantile_phase import quantile_bounds
from repro.core.rank import estimate_rank
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError, EstimationError

__all__ = ["EquiDepthHistogram", "SelectivityEstimate"]


@dataclass(frozen=True)
class SelectivityEstimate:
    """A range predicate's estimated selectivity with deterministic bands."""

    lo: float
    hi: float
    estimate: float  # point estimate in [0, 1]
    lower: float  # guaranteed lower bound on the true selectivity
    upper: float  # guaranteed upper bound

    @property
    def width(self) -> float:
        return self.upper - self.lower


class EquiDepthHistogram:
    """A ``q``-bucket equi-depth histogram backed by an OPAQ summary.

    Parameters
    ----------
    summary:
        The product of one OPAQ pass over the data.
    buckets:
        ``q`` — number of equi-depth buckets.
    """

    def __init__(self, summary: OPAQSummary, buckets: int) -> None:
        if buckets < 1:
            raise ConfigError("need at least one bucket")
        self.summary = summary
        self.buckets = buckets
        if buckets == 1:
            self._bounds = []
        else:
            self._bounds = [
                quantile_bounds(summary, k / buckets) for k in range(1, buckets)
            ]

    @property
    def boundaries(self) -> np.ndarray:
        """Point-estimate bucket boundaries (bound midpoints)."""
        return np.array([b.midpoint for b in self._bounds])

    @property
    def boundary_bounds(self) -> list:
        """The full :class:`~repro.core.QuantileBounds` per boundary."""
        return list(self._bounds)

    @property
    def depth(self) -> float:
        """Ideal bucket population ``n/q``."""
        return self.summary.count / self.buckets

    def max_depth_error(self) -> int:
        """Deterministic bound on any bucket's deviation from ``n/q``.

        A bucket is delimited by two estimated boundaries, each within
        ``n/s`` ranks of its true quantile (Lemmas 1/2), so the population
        error is at most the two adjacent boundary errors combined.
        """
        if not self._bounds:
            return 0
        errs = [b.max_below + b.max_above for b in self._bounds]
        padded = [0, *errs, 0]
        return max(
            padded[i] + padded[i + 1] for i in range(len(padded) - 1)
        )

    def bucket_of(self, value: float) -> int:
        """Index of the bucket a value falls into (by point boundaries)."""
        return int(np.searchsorted(self.boundaries, value, side="right"))

    def selectivity(self, lo: float, hi: float) -> SelectivityEstimate:
        """Estimated selectivity of the predicate ``lo <= x <= hi``.

        The bands are deterministic: the true selectivity is guaranteed to
        lie in ``[lower, upper]``.
        """
        if hi < lo:
            raise EstimationError("need lo <= hi")
        n = self.summary.count
        # rank bands of both endpoints from the summary
        r_hi = estimate_rank(self.summary, hi)
        # count(x < lo) band = count(x <= prev(lo)); use the <= band of lo
        # minus the duplicates-of-lo uncertainty by querying just below.
        r_lo = estimate_rank(self.summary, np.nextafter(lo, -np.inf))
        est = max(0.0, (r_hi.midpoint - r_lo.midpoint)) / n
        lower = max(0, r_hi.low - r_lo.high) / n
        upper = min(n, max(0, r_hi.high - r_lo.low)) / n
        return SelectivityEstimate(
            lo=lo, hi=hi, estimate=min(1.0, est), lower=lower, upper=min(1.0, upper)
        )

    def describe(self) -> str:
        """Human-readable dump (one line per bucket)."""
        cuts = [self.summary.minimum, *self.boundaries, self.summary.maximum]
        lines = [
            f"equi-depth histogram: {self.buckets} buckets, "
            f"depth ~{self.depth:.0f} elements"
        ]
        for i in range(self.buckets):
            lines.append(f"  bucket {i}: [{cuts[i]:.6g}, {cuts[i + 1]:.6g})")
        return "\n".join(lines)
