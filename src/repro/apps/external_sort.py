"""External sorting with OPAQ splitters (paper section 1).

"Quantiles can be used for external sorting.  Data can be partitioned
using quantiles into a number of partitions such that each partition fits
into main memory."

The pipeline here is the classic distribution sort the paper alludes to:

1. **pass 1** — OPAQ over the file: one read, produces the summary;
2. choose ``q`` so each partition is guaranteed to fit in memory: bucket
   populations are at most ``n/q + 2n/s`` (Lemma 3 on both boundaries);
3. **pass 2** — scatter each run into ``q`` bucket files by binary search
   against the splitters;
4. sort each bucket in memory and concatenate — the output is globally
   sorted because the buckets are value-disjoint.

Total: two reads and two writes of the data, no merge pass — exactly the
I/O profile a quantile-splitter sort promises.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ
from repro.core.quantile_phase import splitters
from repro.errors import ConfigError
from repro.storage import DatasetWriter, DiskDataset, RunReader

__all__ = ["external_sort", "SortReport"]


@dataclass(frozen=True)
class SortReport:
    """What an external sort run did."""

    output: DiskDataset
    num_buckets: int
    bucket_sizes: tuple[int, ...]
    guaranteed_max_bucket: int
    passes_over_input: int

    @property
    def max_bucket(self) -> int:
        return max(self.bucket_sizes)

    @property
    def imbalance(self) -> float:
        """Largest bucket relative to the ideal ``n/q``."""
        n = sum(self.bucket_sizes)
        return self.max_bucket / (n / self.num_buckets)


def external_sort(
    dataset: DiskDataset,
    output_path: str | os.PathLike,
    memory: int,
    config: OPAQConfig | None = None,
    workdir: str | os.PathLike | None = None,
) -> SortReport:
    """Sort a disk-resident dataset that does not fit in ``memory`` keys.

    Parameters
    ----------
    dataset:
        The input file.
    output_path:
        Where the sorted result is written.
    memory:
        In-memory working budget in keys; every bucket is *guaranteed*
        (not just expected) to fit, via Lemma 3.
    config:
        OPAQ parameters for pass 1; derived from ``memory`` when omitted.
    workdir:
        Directory for the temporary bucket files (default: alongside the
        output).
    """
    n = dataset.count
    if memory < 1024:
        raise ConfigError("memory budget unrealistically small")
    if config is None:
        # Feasibility needs roughly 2*sqrt(n*s) <= memory, i.e.
        # s <= memory^2/(4n); stay a little under that and cap at 1000.
        sample_size = max(16, min(1000, memory * memory // (5 * n), memory // 8))
        config = OPAQConfig.for_memory(n, memory, sample_size=sample_size)
    config.validate_for(n)

    # Pass 1: the summary.
    estimator = OPAQ(config)
    summary = estimator.summarize(dataset)

    # Bucket count: population <= n/q + slack must fit in memory, where
    # slack is twice the guaranteed per-boundary rank error.
    slack = 2 * summary.guaranteed_rank_error()
    if memory <= slack:
        raise ConfigError(
            f"memory budget {memory} cannot absorb the splitter slack "
            f"{slack}; increase sample_size or memory"
        )
    q = max(1, -(-n // (memory - slack)))
    if q == 1:
        cuts = np.empty(0, dtype=np.float64)
    else:
        cuts = splitters(summary, q, which="upper")

    workdir = Path(workdir) if workdir is not None else Path(output_path).parent
    workdir.mkdir(parents=True, exist_ok=True)
    bucket_paths = [workdir / f".sort_bucket_{i}.opaq" for i in range(q)]
    writers = [DatasetWriter(p, dtype=np.float64) for p in bucket_paths]
    try:
        # Pass 2: scatter runs into buckets.
        reader = RunReader(dataset, run_size=config.run_size, max_passes=1)
        for run in reader.runs():
            idx = np.searchsorted(cuts, run, side="left")
            order = np.argsort(idx, kind="stable")
            sorted_idx = idx[order]
            boundaries = np.searchsorted(sorted_idx, np.arange(q + 1))
            run_by_bucket = run[order]
            for b in range(q):
                lo, hi = boundaries[b], boundaries[b + 1]
                if hi > lo:
                    writers[b].append(run_by_bucket[lo:hi])
        buckets = [w.close() for w in writers]

        # Pass 3 (over the buckets, not the input): sort each in memory.
        # A bucket can legitimately exceed the budget only when its upper
        # cut value is massively duplicated (value partitioning cannot
        # split ties); the duplicate band needs no sorting, so it is
        # counted and streamed while the strictly-below part — which *is*
        # Lemma-bounded — is sorted in memory.
        sizes = []
        with DatasetWriter(output_path, dtype=np.float64) as out:
            for b, bucket in enumerate(buckets):
                sizes.append(bucket.count)
                if not bucket.count:
                    continue
                if bucket.count <= memory:
                    out.append(np.sort(bucket.read_all()))
                    continue
                if b >= cuts.size:
                    raise ConfigError(
                        f"final bucket of {bucket.count} keys exceeded the "
                        f"memory budget {memory} — Lemma 3 violated (bug)"
                    )
                cut = cuts[b]
                below: list[np.ndarray] = []
                below_size = 0
                eq_count = 0
                for chunk in bucket.iter_ranges(memory):
                    eq_count += int(np.count_nonzero(chunk == cut))
                    part = chunk[chunk < cut]
                    below.append(part)
                    below_size += part.size
                    if below_size > memory:
                        raise ConfigError(
                            f"bucket {b} holds {below_size}+ keys below its "
                            f"cut — Lemma 3 violated (bug)"
                        )
                if below_size:
                    out.append(np.sort(np.concatenate(below)))
                while eq_count > 0:
                    chunk_len = min(eq_count, memory)
                    out.append(np.full(chunk_len, cut, dtype=np.float64))
                    eq_count -= chunk_len
    finally:
        for p in bucket_paths:
            if p.exists():
                p.unlink()

    return SortReport(
        output=DiskDataset.open(output_path),
        num_buckets=q,
        bucket_sizes=tuple(sizes),
        guaranteed_max_bucket=-(-n // q) + slack,
        passes_over_input=2,
    )
