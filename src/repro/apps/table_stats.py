"""Optimizer-style table statistics from per-column OPAQ passes.

The paper's first motivation: "Query optimizers need accurate estimates
of the number of tuples satisfying various predicates" [PS84].  Real
optimizers keep per-attribute statistics; :class:`TableStatistics` is
that object, built by one OPAQ pass per column of a
:class:`~repro.storage.TableDataset`.

Single-column range predicates get OPAQ's deterministic selectivity
bands.  Conjunctions get two estimates:

* the textbook **independence** point estimate (product of per-column
  selectivities — what System-R-style optimizers actually do), and
* deterministic **Fréchet bounds**: for any joint distribution,
  ``max(0, Σ selᵢ − (k−1)) ≤ sel(⋀ predᵢ) ≤ min(selᵢ)``.  Combined with
  the per-column bands these give a *guaranteed* envelope on the
  conjunctive selectivity with no independence assumption at all.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.apps.histogram import EquiDepthHistogram, SelectivityEstimate
from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError, DataError, EstimationError
from repro.storage.table import TableDataset

__all__ = ["TableStatistics", "Predicate", "ConjunctionEstimate"]


@dataclass(frozen=True)
class Predicate:
    """A range predicate ``lo <= column <= hi``."""

    column: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ConfigError(f"predicate on {self.column!r} has hi < lo")


@dataclass(frozen=True)
class ConjunctionEstimate:
    """Selectivity of a conjunction of range predicates."""

    independence: float  # the optimizer's product estimate
    lower: float  # Fréchet lower bound (guaranteed, no assumptions)
    upper: float  # Fréchet upper bound (guaranteed, no assumptions)
    per_column: tuple[SelectivityEstimate, ...]

    @property
    def width(self) -> float:
        return self.upper - self.lower


class TableStatistics:
    """Per-column OPAQ summaries over one table."""

    def __init__(
        self, summaries: dict[str, OPAQSummary], histogram_buckets: int = 20
    ) -> None:
        if not summaries:
            raise ConfigError("need at least one column summary")
        counts = {s.count for s in summaries.values()}
        if len(counts) != 1:
            raise ConfigError(
                f"column summaries disagree on the row count: {counts}"
            )
        self._summaries = dict(summaries)
        self._histograms = {
            name: EquiDepthHistogram(summary, histogram_buckets)
            for name, summary in summaries.items()
        }

    @classmethod
    def collect(
        cls,
        table: TableDataset,
        config: OPAQConfig,
        columns: Iterable[str] | None = None,
        histogram_buckets: int = 20,
    ) -> "TableStatistics":
        """One OPAQ pass per column (the nightly ANALYZE job)."""
        names = list(columns) if columns is not None else list(table.columns)
        estimator = OPAQ(config)
        summaries = {name: estimator.summarize(table.column(name)) for name in names}
        return cls(summaries, histogram_buckets=histogram_buckets)

    @property
    def columns(self) -> list[str]:
        return list(self._summaries)

    @property
    def row_count(self) -> int:
        return next(iter(self._summaries.values())).count

    def summary(self, column: str) -> OPAQSummary:
        """The raw per-column summary."""
        try:
            return self._summaries[column]
        except KeyError:
            raise EstimationError(
                f"no statistics for column {column!r}; have {self.columns}"
            ) from None

    def selectivity(self, predicate: Predicate) -> SelectivityEstimate:
        """Deterministic selectivity band for one range predicate."""
        if predicate.column not in self._histograms:
            raise EstimationError(
                f"no statistics for column {predicate.column!r}"
            )
        return self._histograms[predicate.column].selectivity(
            predicate.lo, predicate.hi
        )

    def conjunction(self, predicates: Sequence[Predicate]) -> ConjunctionEstimate:
        """Estimate ``sel(p1 AND p2 AND ...)``.

        The ``independence`` field multiplies point estimates (what an
        optimizer reports); ``lower``/``upper`` are assumption-free
        Fréchet bounds built from the per-column deterministic bands, so
        the true conjunctive selectivity is guaranteed inside them.
        """
        if not predicates:
            raise EstimationError("need at least one predicate")
        per_column = tuple(self.selectivity(p) for p in predicates)
        independence = 1.0
        for est in per_column:
            independence *= est.estimate
        k = len(per_column)
        frechet_lower = max(0.0, sum(e.lower for e in per_column) - (k - 1))
        frechet_upper = min(e.upper for e in per_column)
        return ConjunctionEstimate(
            independence=independence,
            lower=frechet_lower,
            upper=max(frechet_upper, frechet_lower),
            per_column=per_column,
        )

    def estimated_rows(self, predicates: Sequence[Predicate]) -> float:
        """Cardinality estimate for the conjunction (independence)."""
        return self.conjunction(predicates).independence * self.row_count

    # ------------------------------------------------------------------
    # Persistence (the ANALYZE catalog)
    # ------------------------------------------------------------------

    def save(self, directory: str | os.PathLike) -> None:
        """Persist the statistics as a directory of per-column summaries."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, summary in self._summaries.items():
            summary.save(directory / f"{name}.summary.npz")
        (directory / "stats.json").write_text(
            json.dumps({"columns": self.columns, "rows": self.row_count})
        )

    @classmethod
    def load(
        cls, directory: str | os.PathLike, histogram_buckets: int = 20
    ) -> "TableStatistics":
        """Load statistics saved with :meth:`save`."""
        directory = Path(directory)
        manifest = directory / "stats.json"
        if not manifest.exists():
            raise DataError(f"no statistics catalog at {directory}")
        try:
            meta = json.loads(manifest.read_text())
            columns = list(meta["columns"])
        except (KeyError, ValueError, TypeError) as exc:
            raise DataError(f"malformed statistics catalog: {exc}") from None
        summaries = {
            name: OPAQSummary.load(directory / f"{name}.summary.npz")
            for name in columns
        }
        return cls(summaries, histogram_buckets=histogram_buckets)
