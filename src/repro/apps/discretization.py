"""Equi-depth discretisation for mining quantitative rules ([AS96]).

The paper's introduction: "Quantiles can be used for computing association
rules for data mining as shown in [AS95, AIS93, AS96]" — concretely,
Srikant & Agrawal's quantitative association rules discretise each numeric
attribute into equi-depth intervals before mining, because equal-depth
intervals bound the *partial completeness* of the rules found.

:class:`EquiDepthDiscretizer` performs that discretisation from one OPAQ
pass: fit on a disk-resident column, then map values to interval ids (and
back to human-readable interval labels) in bulk.  The interval populations
inherit OPAQ's deterministic bounds, which translate directly into the
partial-completeness level ``K`` of [AS96]:

    ``K = 1 + 2·q·(max interval excess)/n``  (lower is better, 1 ideal).
"""

from __future__ import annotations

import numpy as np

from repro.core.quantile_phase import splitters
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError, EstimationError

__all__ = ["EquiDepthDiscretizer"]


class EquiDepthDiscretizer:
    """Maps a numeric attribute into ``q`` near-equal-population intervals."""

    def __init__(self, summary: OPAQSummary, intervals: int) -> None:
        if intervals < 2:
            raise ConfigError("need at least two intervals")
        self.summary = summary
        self.intervals = intervals
        self._cuts = splitters(summary, intervals, which="mid")

    @property
    def cuts(self) -> np.ndarray:
        """The ``q-1`` interval boundaries."""
        return self._cuts.copy()

    def transform(self, values) -> np.ndarray:
        """Interval id (0-based) for every value, vectorised."""
        return np.searchsorted(self._cuts, np.asarray(values), side="right")

    def interval_label(self, interval: int) -> str:
        """Human-readable ``[lo, hi)`` label for one interval id."""
        if not 0 <= interval < self.intervals:
            raise EstimationError(
                f"interval {interval} out of range (q={self.intervals})"
            )
        lo = self.summary.minimum if interval == 0 else self._cuts[interval - 1]
        hi = (
            self.summary.maximum
            if interval == self.intervals - 1
            else self._cuts[interval]
        )
        closer = "]" if interval == self.intervals - 1 else ")"
        return f"[{lo:.6g}, {hi:.6g}{closer}"

    def labels(self) -> list[str]:
        """Labels for all intervals, in order."""
        return [self.interval_label(i) for i in range(self.intervals)]

    def max_population_excess(self) -> int:
        """Deterministic bound on any interval's deviation from ``n/q``.

        Two boundary rank errors (Lemmas 1/2), one per side.
        """
        return 2 * self.summary.guaranteed_rank_error()

    def partial_completeness(self) -> float:
        """The [AS96] partial-completeness level these intervals give.

        ``K = 1 + 2·q·excess/n``; mining at minimum support ``s`` over
        these intervals is guaranteed to find a rule within a factor ``K``
        of every rule mineable from the raw values.
        """
        n = self.summary.count
        return 1.0 + 2.0 * self.intervals * self.max_population_excess() / n
