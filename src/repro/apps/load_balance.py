"""Load balancing with quantile splitters (paper section 1).

"Quantiles are excellent for load balancing many parallel applications
[DNS91]" — partition a key space into ``p`` near-equal shares so each
worker receives the same amount of data, with OPAQ's deterministic rank
errors turning directly into a deterministic *imbalance* guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantile_phase import splitters
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError

__all__ = ["LoadBalancer", "BalanceReport"]


@dataclass(frozen=True)
class BalanceReport:
    """Realised balance of a partitioning (from actually routing data)."""

    counts: np.ndarray
    ideal: float

    @property
    def max_share(self) -> int:
        return int(self.counts.max())

    @property
    def imbalance(self) -> float:
        """Largest share relative to the ideal ``n/p`` (1.0 = perfect)."""
        return float(self.max_share / self.ideal) if self.ideal else 1.0


class LoadBalancer:
    """Routes keys to ``p`` workers along OPAQ splitters."""

    def __init__(self, summary: OPAQSummary, workers: int) -> None:
        if workers < 1:
            raise ConfigError("need at least one worker")
        self.summary = summary
        self.workers = workers
        self._cuts = (
            splitters(summary, workers, which="mid")
            if workers > 1
            else np.empty(0)
        )

    @property
    def cuts(self) -> np.ndarray:
        """The ``p-1`` splitter values."""
        return self._cuts

    def guaranteed_extra(self) -> int:
        """Deterministic bound on any share's excess over ``n/p``:
        one boundary rank error on each side (Lemmas 1/2), ignoring
        duplicate bands at the cut values (value partitioning cannot
        split ties)."""
        return 2 * self.summary.guaranteed_rank_error()

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Worker index for every value (vectorised)."""
        return np.searchsorted(self._cuts, np.asarray(values), side="left")

    def report(self, values: np.ndarray) -> BalanceReport:
        """Route ``values`` and measure the realised balance."""
        values = np.asarray(values)
        assignment = self.assign(values)
        counts = np.bincount(assignment, minlength=self.workers)
        return BalanceReport(
            counts=counts, ideal=values.size / self.workers
        )
