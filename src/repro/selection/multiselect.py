"""Multiselect: all ``s`` regular sample points of a run in ``O(m log s)``.

Section 2.1 of the paper describes how to extract the ``s`` regular samples
(the elements at ranks ``m/s, 2m/s, ..., m`` of the sorted run) *without*
sorting the run: find the run's median, split into two halves, find each
half's median, and so on for ``log s`` rounds until the sublists have size
``m/s``; the maximum of sublist ``i`` is the ``i``-th sample point.

The routine below implements the same divide-and-conquer but for an
*arbitrary* sorted list of target ranks, which is strictly more general (the
paper's scheme is the special case of equally spaced ranks, and the quantile
phase of the incremental extension benefits from arbitrary ranks): select the
middle target rank with a single-rank selection algorithm, three-way
partition around it, and recurse into each side with the ranks that fall
there.  With ``t`` target ranks this performs ``O(log t)`` levels of
partitioning over disjoint pieces of the array, i.e. ``O(m log t)`` total
work when the single-rank selector is linear — exactly the paper's bound with
``t = s``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.obs import current_tracer
from repro.selection.partition import partition_three_way

__all__ = ["multiselect", "regular_sample_ranks"]

Selector = Callable[[np.ndarray, int], float]


class _SelectStats:
    """Measured work of one multiselect (allocated only under tracing).

    ``comparisons`` counts elements scanned by the single-rank selections
    and the three-way partitions — the quantity the paper's ``O(m log s)``
    bound speaks about; ``partitions`` the partition_three_way calls;
    ``depth`` the deepest recursion level reached.
    """

    __slots__ = ("comparisons", "partitions", "depth")

    def __init__(self) -> None:
        self.comparisons = 0
        self.partitions = 0
        self.depth = 0


def regular_sample_ranks(run_size: int, sample_size: int) -> np.ndarray:
    """0-based ranks of the paper's regular samples of a run.

    The paper takes the elements at 1-based ranks ``i * m/s`` for
    ``i = 1..s`` (so the last sample is the run maximum).  When ``s`` does
    not divide ``m`` the rank grid uses ``floor(i*m/s)``, which preserves the
    sub-run property: sample ``i`` has at least ``floor(i*m/s)`` elements at
    or below it.
    """
    if sample_size <= 0:
        raise EstimationError("sample_size must be positive")
    if sample_size > run_size:
        raise EstimationError(
            f"sample_size {sample_size} exceeds run size {run_size}"
        )
    i = np.arange(1, sample_size + 1, dtype=np.int64)
    return (i * run_size) // sample_size - 1


def _multiselect_into(
    values: np.ndarray,
    ranks: np.ndarray,
    base: int,
    out: np.ndarray,
    out_lo: int,
    select: Selector,
    stats: _SelectStats | None = None,
    depth: int = 0,
) -> None:
    """Recursive worker: fill ``out[out_lo : out_lo+len(ranks)]``.

    ``ranks`` are absolute 0-based ranks in the original array; ``base`` is
    the rank of ``values[argmin]`` within the original array, i.e. how many
    elements of the original array sit strictly to the left of this slice.
    """
    if ranks.size == 0:
        return
    mid = ranks.size // 2
    local_rank = int(ranks[mid]) - base
    pivot = select(values, local_rank)
    if stats is not None:
        stats.depth = max(stats.depth, depth + 1)
        stats.comparisons += values.size  # the single-rank selection scan
    out[out_lo + mid] = pivot
    if ranks.size == 1:
        return
    less, n_equal, greater = partition_three_way(values, pivot)
    if stats is not None:
        stats.partitions += 1
        stats.comparisons += values.size  # the three-way partition scan
    # Ranks strictly below the first occurrence of the pivot go left; ranks
    # inside the pivot's equal-band are already answered by the pivot value;
    # the rest go right.
    left_ranks = ranks[:mid]
    right_ranks = ranks[mid + 1 :]
    first_eq = base + less.size
    last_eq = first_eq + n_equal  # one past the equal band
    go_left = left_ranks[left_ranks < first_eq]
    out[out_lo + go_left.size : out_lo + mid] = pivot
    _multiselect_into(less, go_left, base, out, out_lo, select, stats, depth + 1)
    go_right = right_ranks[right_ranks >= last_eq]
    n_right_eq = right_ranks.size - go_right.size
    out[out_lo + mid + 1 : out_lo + mid + 1 + n_right_eq] = pivot
    _multiselect_into(
        greater,
        go_right,
        last_eq,
        out,
        out_lo + mid + 1 + n_right_eq,
        select,
        stats,
        depth + 1,
    )


def multiselect(
    values: np.ndarray, ranks: Sequence[int] | np.ndarray, select: Selector
) -> np.ndarray:
    """Return the elements of ``values`` at the given sorted 0-based ranks.

    Parameters
    ----------
    values:
        One-dimensional array; not modified.
    ranks:
        Non-decreasing sequence of 0-based order statistics to extract.
    select:
        Single-rank selection routine, e.g.
        :func:`repro.selection.median_of_medians_select` or a seeded
        :func:`repro.selection.floyd_rivest_select`.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of the selected values, in rank order — this is the
        run's sorted sample list from the paper's Figure 1.
    """
    rank_arr = np.asarray(ranks, dtype=np.int64)
    if rank_arr.size == 0:
        return np.empty(0, dtype=np.float64)
    if np.any(np.diff(rank_arr) < 0):
        raise EstimationError("ranks must be non-decreasing")
    if rank_arr[0] < 0 or rank_arr[-1] >= values.size:
        raise EstimationError(
            f"ranks must lie in [0, {values.size}); got "
            f"[{int(rank_arr[0])}, {int(rank_arr[-1])}]"
        )
    out = np.empty(rank_arr.size, dtype=np.float64)
    tracer = current_tracer()
    if not tracer.enabled:
        _multiselect_into(np.asarray(values), rank_arr, 0, out, 0, select)
        return out
    stats = _SelectStats()
    with tracer.span(
        "phase.multiselect",
        engine="recursive",
        size=int(values.size),
        ranks=int(rank_arr.size),
    ):
        _multiselect_into(np.asarray(values), rank_arr, 0, out, 0, select, stats, 0)
    tracer.count("selection.comparisons", stats.comparisons, engine="measured")
    tracer.count("selection.partitions", stats.partitions)
    tracer.count("selection.depth", stats.depth)
    return out
