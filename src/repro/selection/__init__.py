"""Selection substrate: order statistics, multiselect, and merging.

This package implements the selection machinery the paper's sample phase
builds on — deterministic selection [Blum et al. 72], randomized selection
[Floyd & Rivest 75], the recursive multiselect of section 2.1, and the r-way
merge of per-run sample lists.
"""

from repro.selection.floyd_rivest import floyd_rivest_select
from repro.selection.kernels import (
    KERNEL_NAMES,
    merge_sorted_numpy,
    multiselect_numpy,
    validate_kernel,
)
from repro.selection.kway_merge import (
    is_sorted,
    kway_merge,
    merge_two,
    merge_two_with_payload,
)
from repro.selection.median_of_medians import (
    median_of_medians_pivot,
    median_of_medians_select,
)
from repro.selection.multiselect import multiselect, regular_sample_ranks
from repro.selection.partition import partition_counts, partition_three_way
from repro.selection.strategies import (
    STRATEGY_NAMES,
    FloydRivestStrategy,
    MedianOfMediansStrategy,
    NumpyPartitionStrategy,
    SelectionStrategy,
    SortStrategy,
    get_strategy,
)

__all__ = [
    "KERNEL_NAMES",
    "validate_kernel",
    "multiselect_numpy",
    "merge_sorted_numpy",
    "floyd_rivest_select",
    "median_of_medians_select",
    "median_of_medians_pivot",
    "multiselect",
    "regular_sample_ranks",
    "partition_three_way",
    "partition_counts",
    "kway_merge",
    "merge_two",
    "merge_two_with_payload",
    "is_sorted",
    "SelectionStrategy",
    "SortStrategy",
    "NumpyPartitionStrategy",
    "MedianOfMediansStrategy",
    "FloydRivestStrategy",
    "get_strategy",
    "STRATEGY_NAMES",
]
