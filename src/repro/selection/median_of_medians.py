"""Deterministic linear-time selection (Blum, Floyd, Pratt, Rivest, Tarjan 1972).

The paper cites this algorithm ([ea72] in its bibliography) as the
deterministic way to find the ``s`` regular sample points of a run in
``O(m log s)`` worst-case time.  This module implements the classic
median-of-medians scheme:

1. split the array into groups of five and take each group's median;
2. recursively select the median of those medians as the pivot;
3. three-way partition around the pivot and recurse into the side that
   contains the requested rank.

The group-of-five medians are computed with one vectorised sort of a
``(g, 5)`` matrix, so the Python-level recursion depth is ``O(log m)`` while
all inner work is numpy — this keeps the deterministic algorithm usable at
the paper's run sizes (hundreds of thousands of elements).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.selection.partition import partition_three_way

__all__ = ["median_of_medians_select", "median_of_medians_pivot"]

# Below this size it is faster (and exactly as correct) to sort outright.
_SMALL = 32


def median_of_medians_pivot(values: np.ndarray) -> float:
    """Return the median-of-medians pivot of ``values``.

    The returned value is guaranteed to have at least ~30% of the elements on
    either side, which is what gives selection its linear worst case.
    """
    if values.size <= _SMALL:
        # Base case bounded by _SMALL, not run-sized.
        return float(np.sort(values)[values.size // 2])  # opaq: ignore[one-pass-sort]
    n_full_groups = values.size // 5
    head = values[: n_full_groups * 5].reshape(n_full_groups, 5)
    # Row-wise sort of 5-element groups: O(m), the algorithm's own step 1.
    medians = np.sort(head, axis=1)[:, 2]  # opaq: ignore[one-pass-sort]
    tail = values[n_full_groups * 5 :]
    if tail.size:
        # The tail group has at most 4 elements.
        medians = np.append(
            medians, np.sort(tail)[tail.size // 2]  # opaq: ignore[one-pass-sort]
        )
    return median_of_medians_select(medians, medians.size // 2)


def median_of_medians_select(values: np.ndarray, rank: int) -> float:
    """Select the element of 0-based ``rank`` in ``values`` deterministically.

    Equivalent to ``np.sort(values)[rank]`` but runs in worst-case linear
    time.  Raises :class:`~repro.errors.EstimationError` if ``rank`` is out
    of range.
    """
    if not 0 <= rank < values.size:
        raise EstimationError(
            f"rank {rank} out of range for array of size {values.size}"
        )
    current = np.asarray(values)
    while True:
        if current.size <= _SMALL:
            # Base case bounded by _SMALL, not run-sized.
            return float(np.sort(current)[rank])  # opaq: ignore[one-pass-sort]
        pivot = median_of_medians_pivot(current)
        less, n_equal, greater = partition_three_way(current, pivot)
        if rank < less.size:
            current = less
        elif rank < less.size + n_equal:
            return float(pivot)
        else:
            rank -= less.size + n_equal
            current = greater
