"""Vectorised numpy kernels for the two sample-phase hot paths.

The paper's per-run cost is dominated by exactly two operations: extracting
the ``s`` regular samples of a run (section 2.1's multiselect) and merging
the ``r`` sorted per-run sample lists (the r-way merge).  Both have
pure-python reference implementations in this package —
:func:`repro.selection.multiselect.multiselect` driven by a single-rank
selector, and the heap-based loop in
:func:`repro.selection.kway_merge.kway_merge` — which serve as the *oracle*:
slow, simple, and the thing every kernel is property-tested against.

This module holds the vectorised counterparts, selected by the
``kernel="python" | "numpy"`` switch on :class:`repro.core.OPAQConfig`:

- :func:`multiselect_numpy` — one ``numpy.partition`` call over the unique
  ranks (introselect in C; the same ``O(m log s)`` asymptotics, a far
  smaller constant);
- :func:`merge_sorted_numpy` — concatenate-then-stable-argsort.  The heap
  merge is ``O(N log r)`` and the argsort ``O(N log N)``, but the argsort
  runs entirely in C and wins for every realistic ``r``; bit-identical
  output order is guaranteed because the heap breaks ties by list index
  and a stable sort of the lists concatenated in index order does too.

Both kernels are *value-deterministic*: order statistics and stable merges
are functions of the input multiset and list order only, so switching
kernels never changes a sample list, a payload row, or a bound.  The
equivalence is pinned by ``tests/selection/test_kernels.py`` over ragged
run sizes, duplicate-heavy data, and mixed-sign zeros.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError, EstimationError

__all__ = ["KERNEL_NAMES", "validate_kernel", "multiselect_numpy", "merge_sorted_numpy"]

#: The two kernel implementations every hot path must support.
KERNEL_NAMES = ("python", "numpy")


def validate_kernel(name: str) -> str:
    """Return ``name`` if it is a known kernel, else raise ConfigError."""
    if name not in KERNEL_NAMES:
        raise ConfigError(
            f"unknown kernel {name!r}; choose from {KERNEL_NAMES}"
        )
    return name


#: Above this many distinct ranks, a full ``numpy.sort`` beats the
#: multi-pivot introselect that ``numpy.partition`` runs for a kth
#: *array*: measured on 12.5k–1M doubles, partition wins ~3× for one or
#: two pivots but is 5–10× *slower* than sort from ~8 pivots on (the
#: recursive per-pivot passes are not vectorised, the sort is).  Both
#: paths return the exact order statistics, so the choice is invisible.
_MULTISELECT_SORT_CUTOFF = 2


def multiselect_numpy(
    values: np.ndarray, ranks: Sequence[int] | np.ndarray
) -> np.ndarray:
    """The elements of ``values`` at the given sorted 0-based ranks, in C.

    Sparse rank sets (≤ :data:`_MULTISELECT_SORT_CUTOFF` distinct ranks)
    use one ``numpy.partition`` — the paper's multiselect, O(m) per
    pivot.  Dense rank sets — every run in the sample phase, where
    ``s`` ranks are extracted per run — sort the run outright and gather,
    which is empirically far faster (see the cutoff note) and returns
    byte-identical order statistics.  Duplicated ranks are permitted,
    matching the reference.
    """
    rank_arr = np.asarray(ranks, dtype=np.int64)
    if rank_arr.size == 0:
        return np.empty(0, dtype=np.float64)
    if np.any(np.diff(rank_arr) < 0):
        raise EstimationError("ranks must be non-decreasing")
    if rank_arr[0] < 0 or rank_arr[-1] >= values.size:
        raise EstimationError(
            f"ranks must lie in [0, {values.size}); got "
            f"[{int(rank_arr[0])}, {int(rank_arr[-1])}]"
        )
    unique = np.unique(rank_arr)
    if unique.size > _MULTISELECT_SORT_CUTOFF:
        parted = np.sort(np.asarray(values))  # opaq: ignore[one-pass-sort] sorting ONE in-memory run during the sample phase, not the dataset; O(m log m) on a single run
    else:
        parted = np.partition(np.asarray(values), unique)
    return parted[rank_arr].astype(np.float64)


def merge_sorted_numpy(
    lists: Sequence[np.ndarray],
    payloads: Sequence[np.ndarray] | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Merge ``r`` sorted arrays by stable argsort of their concatenation.

    Ties order exactly as the reference heap merge does: by list index
    first (lists are concatenated in index order), by position within a
    list second (the sort is stable).  With ``payloads`` (one row array
    per list) each key carries its payload row and the pair
    ``(merged_keys, merged_payloads)`` is returned.
    """
    arrays = [np.asarray(lst) for lst in lists]
    if payloads is not None:
        if len(payloads) != len(arrays):
            raise ConfigError("payloads must match lists one-to-one")
        pays = [np.asarray(p) for p in payloads]
        if any(p.shape[0] != a.size for p, a in zip(pays, arrays)):
            raise ConfigError("each payload must have its list's length")
        pays = [p for p, a in zip(pays, arrays) if a.size]
    arrays = [a for a in arrays if a.size]

    if not arrays:
        empty = np.empty(0, dtype=np.float64)
        return (empty, empty.astype(np.int64)) if payloads is not None else empty
    if len(arrays) == 1:
        if payloads is not None:
            return arrays[0].astype(np.float64), pays[0].copy()
        return arrays[0].astype(np.float64)

    keys = np.concatenate([a.astype(np.float64, copy=False) for a in arrays])
    order = np.argsort(keys, kind="stable")  # opaq: ignore[one-pass-sort] merging r SORTED sample lists, not sorting a run; O(rs log rs) on samples only
    merged = keys[order]
    if payloads is None:
        return merged
    payload = np.concatenate(pays)
    return merged, payload[order]
