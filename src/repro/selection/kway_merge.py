"""Merging of sorted sample lists.

After the sample phase produces one sorted sample list per run, the paper
merges the ``r`` lists into a single sorted list of ``r*s`` samples in
``O(r*s*log r)`` time.  :func:`kway_merge` implements the textbook heap-based
r-way merge (and is what the complexity accounting in the parallel simulator
models); :func:`merge_two` is the binary merge used by the incremental
extension and by the simulated bitonic merge network.

The heap loop is the *reference kernel*; passing ``kernel="numpy"`` routes
the merge through :func:`repro.selection.kernels.merge_sorted_numpy`
(stable argsort of the concatenation, entirely in C) which is
bit-identical in output — ties break by list index either way — and much
faster for realistic ``r``.  See :mod:`repro.selection.kernels`.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.obs import current_tracer
from repro.selection.kernels import merge_sorted_numpy, validate_kernel

__all__ = ["kway_merge", "merge_two", "merge_two_with_payload", "is_sorted"]


def is_sorted(values: np.ndarray) -> bool:
    """True when ``values`` is non-decreasing."""
    return bool(np.all(values[1:] >= values[:-1])) if values.size else True


def merge_two(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays into one sorted array (stable, linear time)."""
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b, np.float64))
    # numpy has no public two-way merge; searchsorted gives each element of
    # ``b`` its final slot in linear-ish time and stays in C.
    positions = np.searchsorted(a, b, side="right") + np.arange(b.size)
    mask = np.zeros(out.size, dtype=bool)
    mask[positions] = True
    out[mask] = b
    out[~mask] = a
    return out


def merge_two_with_payload(
    a: np.ndarray,
    a_payload: np.ndarray,
    b: np.ndarray,
    b_payload: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted key arrays, carrying a payload row along each key.

    Used by the OPAQ summary, whose samples travel with their sub-run
    size and floor-value bookkeeping through every merge.  Payloads may be
    one-dimensional or row-per-key two-dimensional.
    """
    a_payload = np.asarray(a_payload)
    b_payload = np.asarray(b_payload)
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b, np.float64))
    pay = np.empty(
        (out.size,) + a_payload.shape[1:],
        dtype=np.result_type(a_payload, b_payload),
    )
    positions = np.searchsorted(a, b, side="right") + np.arange(b.size)
    mask = np.zeros(out.size, dtype=bool)
    mask[positions] = True
    out[mask] = b
    out[~mask] = a
    pay[mask] = b_payload
    pay[~mask] = a_payload
    return out, pay


def kway_merge(
    lists: Sequence[np.ndarray],
    payloads: Sequence[np.ndarray] | None = None,
    kernel: str = "python",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Merge ``r`` sorted arrays into one sorted array.

    Uses a heap of (head value, list index, cursor) triples — the classic
    ``O(N log r)`` algorithm the paper's cost analysis assumes — but drains
    runs of consecutive elements from the winning list in bulk so the Python
    overhead stays modest.  Falls back to :func:`merge_two` for two lists.
    ``kernel="numpy"`` swaps in the vectorised stable-argsort kernel
    (:func:`repro.selection.kernels.merge_sorted_numpy`), whose output is
    bit-identical to the heap's.

    When ``payloads`` is given (one array per list, same lengths), each key
    carries its payload row through the merge and the function returns the
    pair ``(merged_keys, merged_payloads)``.

    When tracing is active, the merge emits a ``phase.kway_merge`` span
    plus a ``merge.keys`` counter (total keys merged).
    """
    validate_kernel(kernel)
    merge = merge_sorted_numpy if kernel == "numpy" else _kway_merge
    tracer = current_tracer()
    if not tracer.enabled:
        return merge(lists, payloads)
    with tracer.span("phase.kway_merge", lists=len(lists), kernel=kernel):
        result = merge(lists, payloads)
    merged = result[0] if payloads is not None else result
    assert isinstance(merged, np.ndarray)
    tracer.count("merge.keys", int(merged.size), lists=len(lists))
    return result


def _kway_merge(
    lists: Sequence[np.ndarray],
    payloads: Sequence[np.ndarray] | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """The uninstrumented merge (see :func:`kway_merge`)."""
    arrays = [np.asarray(lst) for lst in lists]
    if payloads is not None:
        if len(payloads) != len(arrays):
            raise ConfigError("payloads must match lists one-to-one")
        pays = [np.asarray(p) for p in payloads]
        if any(p.shape[0] != a.size for p, a in zip(pays, arrays)):
            raise ConfigError("each payload must have its list's length")
        pays = [p for p, a in zip(pays, arrays) if a.size]
    arrays = [a for a in arrays if a.size]

    if not arrays:
        empty = np.empty(0, dtype=np.float64)
        return (empty, empty.astype(np.int64)) if payloads is not None else empty
    if len(arrays) == 1:
        if payloads is not None:
            return arrays[0].copy(), pays[0].copy()
        return arrays[0].copy()
    if len(arrays) == 2:
        if payloads is not None:
            return merge_two_with_payload(arrays[0], pays[0], arrays[1], pays[1])
        return merge_two(arrays[0], arrays[1])

    total = sum(lst.size for lst in arrays)
    out = np.empty(total, dtype=np.float64)
    out_pay = (
        np.empty((total,) + pays[0].shape[1:], dtype=np.result_type(*pays))
        if payloads is not None
        else None
    )
    heap = [(float(lst[0]), i, 0) for i, lst in enumerate(arrays)]
    heapq.heapify(heap)
    pos = 0
    while heap:
        value, i, cursor = heapq.heappop(heap)
        lst = arrays[i]
        # Bulk-drain from the winning list up to the next heap head.  A
        # key EQUAL to that head belongs to whichever list has the lower
        # index (the heap's tie order, which the stable argsort kernel
        # reproduces) — so the drain may swallow ties only when this
        # list's index is below the waiting head's.
        if heap:
            limit, j = heap[0][0], heap[0][1]
            side = "right" if i < j else "left"
        else:
            limit, side = np.inf, "right"
        end = int(np.searchsorted(lst, limit, side=side))
        if end <= cursor:
            end = cursor + 1  # always make progress
        chunk = lst[cursor:end]
        out[pos : pos + chunk.size] = chunk
        if out_pay is not None:
            out_pay[pos : pos + chunk.size] = pays[i][cursor:end]
        pos += chunk.size
        if end < lst.size:
            heapq.heappush(heap, (float(lst[end]), i, end))
    if out_pay is not None:
        return out, out_pay
    return out
