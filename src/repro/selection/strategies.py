"""Pluggable selection strategies for the sample phase.

The paper's sample phase needs one operation: given an in-memory run of
``m`` keys, extract the regular samples at ranks ``m/s, 2m/s, ..., m``.  It
discusses three ways to do it (deterministic selection, randomized
selection, or plain sorting); this module exposes all of them — plus a
vectorised ``numpy.partition`` engine, the pragmatic default — behind one
small interface so the estimator, the tests and the ablation benchmarks can
swap them freely.

Use :func:`get_strategy` to resolve a strategy by name::

    strategy = get_strategy("numpy")
    samples = strategy.multiselect(run, ranks)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import ConfigError, EstimationError
from repro.obs import current_tracer
from repro.selection.floyd_rivest import floyd_rivest_select
from repro.selection.kernels import multiselect_numpy
from repro.selection.median_of_medians import median_of_medians_select
from repro.selection.multiselect import multiselect


def _count_modelled_work(
    engine: str, size: int, rank_arr: np.ndarray, partitions: int
) -> None:
    """Emit the analytic ``O(m log s)`` work estimate for a vectorised engine.

    The C-level engines (``numpy.partition``, ``numpy.sort``) do not expose
    their comparison counts, so the tracer records the paper's cost-model
    figure instead — ``m * ceil(log2(s + 1))`` comparisons — tagged
    ``engine="modelled"`` to keep it distinguishable from the measured
    counters of the recursive multiselect.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return
    distinct = int(np.unique(rank_arr).size)
    log_s = max(1, int(np.ceil(np.log2(distinct + 1))))
    tracer.count("selection.comparisons", size * log_s, engine="modelled")
    tracer.count("selection.partitions", partitions, engine=engine)

__all__ = [
    "SelectionStrategy",
    "SortStrategy",
    "NumpyPartitionStrategy",
    "MedianOfMediansStrategy",
    "FloydRivestStrategy",
    "get_strategy",
    "STRATEGY_NAMES",
]


class SelectionStrategy(ABC):
    """Extracts order statistics from an in-memory run."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def select(self, values: np.ndarray, rank: int) -> float:
        """Return the element of 0-based ``rank`` of ``values``."""

    def multiselect(
        self, values: np.ndarray, ranks: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Return the elements at the given sorted 0-based ``ranks``.

        Default implementation: the paper's recursive median-splitting
        multiselect driven by :meth:`select` (``O(m log s)`` when
        :meth:`select` is linear).
        """
        return multiselect(values, ranks, self.select)


class SortStrategy(SelectionStrategy):
    """Sort the run and index it — the simple ``O(m log m)`` baseline."""

    name = "sort"

    def select(self, values: np.ndarray, rank: int) -> float:
        if not 0 <= rank < values.size:
            raise EstimationError(
                f"rank {rank} out of range for array of size {values.size}"
            )
        return float(np.sort(values)[rank])

    def multiselect(
        self, values: np.ndarray, ranks: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        rank_arr = np.asarray(ranks, dtype=np.int64)
        if rank_arr.size and (
            rank_arr.min() < 0 or rank_arr.max() >= values.size
        ):
            raise EstimationError("ranks out of range")
        tracer = current_tracer()
        with tracer.span(
            "phase.multiselect",
            engine=self.name,
            size=int(values.size),
            ranks=int(rank_arr.size),
        ):
            out = np.sort(values)[rank_arr].astype(np.float64)
        _count_modelled_work(self.name, int(values.size), rank_arr, 1)
        return out


class NumpyPartitionStrategy(SelectionStrategy):
    """Vectorised introselect via :func:`numpy.partition` — the fast default.

    ``numpy.partition`` with a list of kth ranks performs exactly the
    multiselect the paper needs, in C.  The asymptotics match the paper's
    ``O(m log s)``; only the constant differs.
    """

    name = "numpy"

    def select(self, values: np.ndarray, rank: int) -> float:
        if not 0 <= rank < values.size:
            raise EstimationError(
                f"rank {rank} out of range for array of size {values.size}"
            )
        return float(np.partition(values, rank)[rank])

    def multiselect(
        self, values: np.ndarray, ranks: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        rank_arr = np.asarray(ranks, dtype=np.int64)
        if rank_arr.size == 0:
            return np.empty(0, dtype=np.float64)
        tracer = current_tracer()
        with tracer.span(
            "phase.multiselect",
            engine=self.name,
            size=int(values.size),
            ranks=int(rank_arr.size),
        ):
            out = multiselect_numpy(values, rank_arr)
        _count_modelled_work(self.name, int(values.size), rank_arr, 1)
        return out


class MedianOfMediansStrategy(SelectionStrategy):
    """Deterministic worst-case-linear selection ([Blum et al. 72])."""

    name = "median_of_medians"

    def select(self, values: np.ndarray, rank: int) -> float:
        return median_of_medians_select(values, rank)


class FloydRivestStrategy(SelectionStrategy):
    """Randomized expected-linear selection ([FR75]).

    Deterministic given a seed: the generator is re-derived from the seed
    for every :meth:`select` call so multiselect results do not depend on
    call order.
    """

    name = "floyd_rivest"

    def __init__(self, seed: int = 0x0F2A) -> None:
        self._seed = seed

    def select(self, values: np.ndarray, rank: int) -> float:
        rng = np.random.default_rng((self._seed, values.size, rank))
        return floyd_rivest_select(values, rank, rng)


_REGISTRY = {
    SortStrategy.name: SortStrategy,
    NumpyPartitionStrategy.name: NumpyPartitionStrategy,
    MedianOfMediansStrategy.name: MedianOfMediansStrategy,
    FloydRivestStrategy.name: FloydRivestStrategy,
}

STRATEGY_NAMES = tuple(sorted(_REGISTRY))


def get_strategy(name: str | SelectionStrategy) -> SelectionStrategy:
    """Resolve a strategy by name (or pass an instance through unchanged)."""
    if isinstance(name, SelectionStrategy):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigError(
            f"unknown selection strategy {name!r}; choose from {STRATEGY_NAMES}"
        ) from None
