"""Randomized expected-linear-time selection (Floyd & Rivest 1975).

The paper cites [FR75] as the *practically efficient* selection routine for
the sample phase: expected ``O(m)`` time with a small constant, worst case
``O(m^2)``.  The algorithm draws a small random sample, picks two order
statistics of the sample that bracket the target rank with high probability,
and partitions the array into three bands; with overwhelming probability the
target lands in the narrow middle band, which is then solved recursively (or
directly by sorting once it is small).

This implementation follows the original recipe for the bracketing offsets
(``SELECT``'s ``z^{2/3}`` sample and ``sqrt``-sized safety margins) but works
on immutable numpy arrays with three-way partitioning rather than in-place
swaps, which is both simpler and faster in Python.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EstimationError
from repro.selection.partition import partition_three_way

__all__ = ["floyd_rivest_select"]

_SMALL = 600  # below this, sorting beats the sampling machinery

# Default pivot-sample seed: randomness here only affects *which* pivots
# bracket the target, never the returned value, so a fixed default keeps
# the routine reproducible (determinism discipline) at zero cost.
_DEFAULT_SEED = 0x0F2A


def _bracket(sorted_sample: np.ndarray, k: int, n: int) -> tuple[float, float]:
    """Choose pivots ``(u, v)`` from a sorted sample bracketing rank ``k``."""
    ssize = sorted_sample.size
    # Position of the target rank within the sample, with sqrt-sized margins
    # as in the original SELECT algorithm.
    ratio = k / max(n, 1)
    margin = 0.5 * math.sqrt(ssize * ratio * (1.0 - ratio)) + 1.0
    lo = max(0, int(math.floor(ssize * ratio - margin)))
    hi = min(ssize - 1, int(math.ceil(ssize * ratio + margin)))
    return float(sorted_sample[lo]), float(sorted_sample[hi])


def floyd_rivest_select(
    values: np.ndarray, rank: int, rng: np.random.Generator | None = None
) -> float:
    """Select the element of 0-based ``rank`` in expected linear time.

    Parameters
    ----------
    values:
        One-dimensional array of keys; not modified.
    rank:
        0-based order statistic to return.
    rng:
        Source of randomness for the pivot sample.  When omitted, a
        generator seeded from a fixed constant is used, so repeated calls
        are reproducible by default (only the *pivot choice* is random;
        the selected value is exact either way).  Pass your own generator
        to control the stream.
    """
    if not 0 <= rank < values.size:
        raise EstimationError(
            f"rank {rank} out of range for array of size {values.size}"
        )
    if rng is None:
        rng = np.random.default_rng(_DEFAULT_SEED)
    current = np.asarray(values)
    k = rank
    while True:
        n = current.size
        if n <= _SMALL:
            # Base case bounded by _SMALL, not run-sized.
            return float(np.sort(current)[k])  # opaq: ignore[one-pass-sort]
        sample_size = max(16, int(n ** (2.0 / 3.0)))
        # Sorting the o(m) pivot sample, not the run.
        sample = np.sort(  # opaq: ignore[one-pass-sort]
            rng.choice(current, size=min(sample_size, n), replace=False)
        )
        u, v = _bracket(sample, k, n)
        less_u, n_eq_u, rest = partition_three_way(current, u)
        if k < less_u.size:
            current = less_u
            continue
        if k < less_u.size + n_eq_u:
            return float(u)
        # Target is above u: narrow to the middle band (u, v].
        k -= less_u.size + n_eq_u
        mid, n_eq_v, greater_v = partition_three_way(rest, v)
        if k < mid.size:
            current = mid
            continue
        if k < mid.size + n_eq_v:
            return float(v)
        k -= mid.size + n_eq_v
        current = greater_v
