"""Three-way partitioning primitives used by the selection algorithms.

Both deterministic (median-of-medians) and randomized (Floyd-Rivest)
selection, as well as the paper's recursive multiselect, reduce to repeated
*three-way* partitioning of an array around a pivot value.  Three-way (rather
than two-way) partitioning is essential for the duplicate-heavy data sets the
paper evaluates on (``n/10`` duplicates): with two-way partitioning a run of
equal keys can defeat the linear-time guarantee.

These helpers operate on numpy arrays and return new arrays; the selection
algorithms in this package never mutate caller-owned data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["partition_three_way", "partition_counts"]


def partition_three_way(
    values: np.ndarray, pivot: float
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Split ``values`` around ``pivot``.

    Parameters
    ----------
    values:
        One-dimensional array of keys.
    pivot:
        The pivot value; it does not have to occur in ``values``.

    Returns
    -------
    tuple
        ``(less, n_equal, greater)`` where ``less`` holds every element
        strictly below the pivot, ``n_equal`` counts the elements equal to
        the pivot, and ``greater`` holds every element strictly above it.
        The equal elements themselves are never needed by the selection
        algorithms, only their count, so they are not materialised.
    """
    less_mask = values < pivot
    greater_mask = values > pivot
    less = values[less_mask]
    greater = values[greater_mask]
    n_equal = values.size - less.size - greater.size
    return less, n_equal, greater


def partition_counts(values: np.ndarray, pivot: float) -> Tuple[int, int, int]:
    """Return only the sizes ``(n_less, n_equal, n_greater)`` of a 3-way split.

    Cheaper than :func:`partition_three_way` when the caller needs ranks but
    not the partitioned data (for example when probing whether a pivot
    brackets a target rank).
    """
    n_less = int(np.count_nonzero(values < pivot))
    n_greater = int(np.count_nonzero(values > pivot))
    return n_less, values.size - n_less - n_greater, n_greater
