"""OPAQ: one-pass quantile estimation for disk-resident data.

A full reproduction of Alsabti, Ranka & Singh, *"A One-Pass Algorithm for
Accurately Estimating Quantiles for Disk-Resident Data"*, VLDB 1997 — the
OPAQ algorithm, its parallel formulation (simulated), the baselines it is
compared against, and every experiment of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import OPAQ

    data = np.random.default_rng(0).uniform(size=1_000_000)
    [median] = OPAQ.quantiles(data, [0.5], sample_size=1000)
    print(median.lower, median.upper, median.max_between)  # <= 2n/s apart

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — OPAQ itself (sample phase, quantile phase, exact/
  rank/incremental extensions).
- :mod:`repro.selection` — selection substrate (median-of-medians,
  Floyd-Rivest, multiselect, k-way merge).
- :mod:`repro.storage` — disk-resident datasets, single-pass run reading,
  memory model.
- :mod:`repro.workloads` — the paper's synthetic data (uniform,
  Zipf(0.86), n/10 duplicates) and extra stress distributions.
- :mod:`repro.metrics` — ground truth and the RERA/RERL/RERN error rates.
- :mod:`repro.baselines` — the estimators OPAQ is compared against.
- :mod:`repro.parallel` — the simulated SP-2: cost model, bitonic and
  sample merges, parallel OPAQ.
- :mod:`repro.apps` — equi-depth histograms, external sort, load
  balancing.
- :mod:`repro.experiments` — the table/figure reproduction harness.
- :mod:`repro.service` — the sharded quantile-serving subsystem
  (``opaq serve``; see docs/service.md).
"""

from repro.core import (
    OPAQ,
    DataSource,
    IncrementalOPAQ,
    OPAQConfig,
    OPAQSummary,
    QuantileBounds,
    QuantileEstimator,
    RankBounds,
    estimate_quantiles,
    estimate_rank,
    exact_quantiles,
)
from repro.errors import (
    ConfigError,
    DataError,
    EstimationError,
    ParallelError,
    ReproError,
    ServiceError,
    SinglePassViolation,
)
from repro.storage import DatasetWriter, DiskDataset, MemoryModel, RunReader

__version__ = "1.0.0"

__all__ = [
    "OPAQ",
    "OPAQConfig",
    "OPAQSummary",
    "QuantileBounds",
    "QuantileEstimator",
    "DataSource",
    "RankBounds",
    "IncrementalOPAQ",
    "estimate_quantiles",
    "estimate_rank",
    "exact_quantiles",
    "DiskDataset",
    "DatasetWriter",
    "RunReader",
    "MemoryModel",
    "ReproError",
    "ConfigError",
    "DataError",
    "EstimationError",
    "ParallelError",
    "ServiceError",
    "SinglePassViolation",
    "__version__",
]
