"""Bitonic merge of ``p`` distributed sorted lists (paper section 3).

The paper's first option for the global merge is a bitonic merge — "a
variation of the Bitonic sort [Bat68]; the only difference ... is that the
initial sorting step is not required because the local lists are already
sorted."

Blocks are merged with the classic block-wise bitonic network: each
compare-exchange of the element network becomes a *compare-split* between
two processors (exchange whole blocks, merge locally, one keeps the lower
half, the other the upper half).  A network over ``p`` blocks performs
``log p (log p + 1)/2`` compare-split supersteps, giving the paper's cost

    ``O(rs (1+log p) log p · µ + (1+log p) log p (τ + rs·β))``.

The data movement is genuine (the returned blocks really are the globally
sorted sequence); the clocks advance per the machine model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.parallel.machine import SimulatedMachine
from repro.selection import is_sorted, merge_two_with_payload

__all__ = ["bitonic_merge"]


def _compare_split(
    blocks: list[np.ndarray],
    payloads: list[np.ndarray],
    i: int,
    j: int,
    ascending: bool,
    machine: SimulatedMachine,
    phase: str,
) -> None:
    """Processors ``i`` and ``j`` exchange blocks; ``i`` keeps the low half
    (when ascending) of the merged pair, ``j`` the high half."""
    lo, hi = (i, j) if ascending else (j, i)
    a, b = blocks[lo], blocks[hi]
    keep_low = blocks[lo].size
    merged, merged_pay = merge_two_with_payload(
        a, payloads[lo], b, payloads[hi]
    )
    # Exchange of both blocks, then a linear merge on each side.
    machine.exchange(i, j, max(a.size, b.size), phase)
    machine.charge_compute(i, merged.size, phase)
    machine.charge_compute(j, merged.size, phase)
    blocks[lo], payloads[lo] = merged[:keep_low], merged_pay[:keep_low]
    blocks[hi], payloads[hi] = merged[keep_low:], merged_pay[keep_low:]


def bitonic_merge(
    blocks: list[np.ndarray],
    machine: SimulatedMachine,
    payloads: list[np.ndarray] | None = None,
    phase: str = "global_merge",
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Globally sort ``p`` locally sorted blocks with a bitonic network.

    Parameters
    ----------
    blocks:
        One sorted array per processor (``p`` must be a power of two, as
        on the paper's SP-2 configurations).
    machine:
        The simulated machine whose clocks to charge.
    payloads:
        Optional per-key payload arrays riding along (the OPAQ gap
        counters).

    Returns
    -------
    (blocks, payloads):
        The block-distributed globally sorted sequence: concatenating the
        returned blocks in processor order yields the fully sorted data.
    """
    p = len(blocks)
    if p != machine.p:
        raise ConfigError(f"{p} blocks for a {machine.p}-processor machine")
    if p & (p - 1):
        raise ConfigError("bitonic merge requires a power-of-two p")
    blocks = [np.asarray(b, dtype=np.float64) for b in blocks]
    for b in blocks:
        if not is_sorted(b):
            raise ConfigError("every input block must be locally sorted")
    if payloads is None:
        payloads = [np.zeros(b.size, dtype=np.int64) for b in blocks]
    else:
        payloads = [np.asarray(q) for q in payloads]
        if any(q.shape[0] != b.size for q, b in zip(payloads, blocks)):
            raise ConfigError("payloads must align with blocks")

    # Classic iterative bitonic network over p block-slots.
    k = 2
    while k <= p:
        j = k // 2
        while j >= 1:
            for i in range(p):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    _compare_split(
                        blocks, payloads, i, partner, ascending, machine, phase
                    )
            j //= 2
        k *= 2
    return blocks, payloads
