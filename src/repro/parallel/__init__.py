"""The simulated parallel machine and the parallel OPAQ formulation.

Implements the paper's section 3: the two-level cost model of the IBM SP-2
(:class:`MachineModel`, :class:`SimulatedMachine`), the two global merge
algorithms (:func:`bitonic_merge`, :func:`sample_merge`), the parallel
driver (:class:`ParallelOPAQ`), and the scalability metric helpers — plus
the real execution backends (:mod:`repro.parallel.backends`) that run the
same SPMD program on this machine's threads or processes instead of the
simulated clocks (``ParallelOPAQ(..., backend="process")``).
"""

from repro.parallel.backends import (
    BACKEND_NAMES,
    Comm,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerReport,
    get_backend,
)
from repro.parallel.bitonic import bitonic_merge
from repro.parallel.machine import MachineModel, PhaseBreakdown, SimulatedMachine
from repro.parallel.perf_metrics import (
    ScalingSeries,
    scaleup_series,
    sizeup_series,
    speedup_series,
)
from repro.parallel.popaq import (
    PHASE_GLOBAL_MERGE,
    PHASE_IO,
    PHASE_LOCAL_MERGE,
    PHASE_QUANTILE,
    PHASE_SAMPLING,
    ParallelOPAQ,
    ParallelResult,
    predict_merge_time,
)
from repro.parallel.sample_merge import sample_merge

__all__ = [
    "MachineModel",
    "SimulatedMachine",
    "PhaseBreakdown",
    "ExecutionBackend",
    "Comm",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "WorkerReport",
    "get_backend",
    "BACKEND_NAMES",
    "bitonic_merge",
    "sample_merge",
    "ParallelOPAQ",
    "ParallelResult",
    "predict_merge_time",
    "speedup_series",
    "scaleup_series",
    "sizeup_series",
    "ScalingSeries",
    "PHASE_IO",
    "PHASE_SAMPLING",
    "PHASE_LOCAL_MERGE",
    "PHASE_GLOBAL_MERGE",
    "PHASE_QUANTILE",
]
