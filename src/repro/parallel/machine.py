"""The two-level parallel machine model (paper section 3).

The paper analyses its parallel algorithm under a deliberately simple
model: "a unit computation local to a processor has a cost of µ.
Communication between processors has a start-up overhead of τ, while the
data transfer rate is 1/β.  ...  This permits us to use the two-level
model and view the underlying interconnection network as a virtual
crossbar network connecting the processors.  It closely models the
interconnection network on the IBM SP-2."

:class:`MachineModel` holds the constants (plus a per-key disk-read cost,
which the paper measures but does not name); :class:`SimulatedMachine`
executes SPMD programs against per-processor clocks, attributing every
charge to a named phase so the evaluation can reproduce the paper's
I/O-fraction and phase-breakdown tables.

The default constants are calibrated to the paper's own measured ratios on
the SP-2 (Tables 11 and 12): I/O ≈ 52 % of total time, sampling ≈ 45 %,
merges small.  Absolute values are arbitrary (the simulation reports
"seconds" of a 1997 machine); every reproduced *shape* — crossover,
scale-up, speed-up — is invariant to rescaling all four constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["MachineModel", "SimulatedMachine", "PhaseBreakdown", "CommStats"]


@dataclass(frozen=True)
class MachineModel:
    """Cost constants of the two-level model.

    Parameters
    ----------
    mu:
        Seconds per unit of local computation (one comparison/move).
    tau:
        Message start-up overhead in seconds.
    beta:
        Seconds per key transferred (1/bandwidth).
    io_per_key:
        Seconds to read one key from the local disk.
    """

    mu: float = 1.5e-7
    tau: float = 4.0e-5
    beta: float = 2.3e-7
    io_per_key: float = 1.7e-6

    def __post_init__(self) -> None:
        if min(self.mu, self.tau, self.beta, self.io_per_key) <= 0:
            raise ConfigError("all machine constants must be positive")

    @classmethod
    def sp2(cls) -> "MachineModel":
        """The default calibration (IBM SP-2, RS/6000-390 nodes)."""
        return cls()

    # Convenience cost formulas ----------------------------------------

    def read_cost(self, keys: int) -> float:
        """Sequential disk read of ``keys`` keys."""
        return keys * self.io_per_key

    def compute_cost(self, ops: float) -> float:
        """``ops`` units of local computation."""
        return ops * self.mu

    def message_cost(self, keys: int) -> float:
        """One point-to-point message carrying ``keys`` keys."""
        return self.tau + keys * self.beta


@dataclass
class CommStats:
    """Deterministic message-traffic counters for one simulated execution.

    ``messages`` counts message *endpoints paid for*: a point-to-point send
    is one message, a pairwise exchange is two (one each way), and an
    all-to-all charges ``p`` start-ups per processor exactly as the paper's
    cost accounting does.  ``keys`` is the total key volume moved and
    ``seconds`` the summed per-endpoint communication cost — all integers
    or exact float sums of model constants, so they are reproducible
    bit-for-bit across runs with the same configuration.
    """

    messages: int = 0
    keys: int = 0
    seconds: float = 0.0


@dataclass
class PhaseBreakdown:
    """Per-phase time accumulated on one processor."""

    times: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.times[phase] = self.times.get(phase, 0.0) + seconds

    def total(self) -> float:
        return sum(self.times.values())

    def fraction(self, phase: str) -> float:
        total = self.total()
        return self.times.get(phase, 0.0) / total if total else 0.0


class SimulatedMachine:
    """``p`` processors, per-processor clocks, charged SPMD execution.

    The *data* flows through real numpy arrays — algorithms executed on
    this machine produce genuine results — while the *time* is modelled:
    every local step and message advances the relevant clocks by the
    two-level model's cost.
    """

    def __init__(self, num_procs: int, model: MachineModel | None = None) -> None:
        if num_procs < 1:
            raise ConfigError("need at least one processor")
        self.p = num_procs
        self.model = model or MachineModel.sp2()
        self._clock = np.zeros(num_procs, dtype=np.float64)
        self._phases = [PhaseBreakdown() for _ in range(num_procs)]
        self.comm = CommStats()

    # ------------------------------------------------------------------
    # Charging primitives
    # ------------------------------------------------------------------

    def _check(self, proc: int) -> None:
        if not 0 <= proc < self.p:
            raise ConfigError(f"processor {proc} out of range (p={self.p})")

    def charge(self, proc: int, seconds: float, phase: str) -> None:
        """Advance one processor's clock by a local cost."""
        self._check(proc)
        if seconds < 0:
            raise ConfigError("cannot charge negative time")
        self._clock[proc] += seconds
        self._phases[proc].add(phase, seconds)

    def charge_io(self, proc: int, keys: int, phase: str = "io") -> None:
        """Charge a sequential disk read."""
        self.charge(proc, self.model.read_cost(keys), phase)

    def charge_compute(self, proc: int, ops: float, phase: str) -> None:
        """Charge local computation."""
        self.charge(proc, self.model.compute_cost(ops), phase)

    def charge_overlapped(self, proc: int, costs: dict[str, float]) -> None:
        """Concurrent local operations (the paper's future-work item:
        "overlapping part of the computational time with the I/O time").

        The clock advances by the *longest* of the operations; each phase
        still records its own busy time, so the phase breakdown keeps
        reporting resource utilisation while the wall clock reflects the
        overlap.  (With overlap the per-phase busy times can sum to more
        than the elapsed time — that is the point.)
        """
        self._check(proc)
        if not costs:
            return
        if min(costs.values()) < 0:
            raise ConfigError("cannot charge negative time")
        self._clock[proc] += max(costs.values())
        for phase, seconds in costs.items():
            self._phases[proc].add(phase, seconds)

    def send(self, src: int, dst: int, keys: int, phase: str) -> None:
        """Point-to-point message: both endpoints pay ``tau + keys*beta``
        and the receiver cannot proceed before the sender's clock."""
        self._check(src)
        self._check(dst)
        cost = self.model.message_cost(keys)
        self._clock[src] += cost
        self._clock[dst] = max(self._clock[dst], self._clock[src] - cost) + cost
        self._phases[src].add(phase, cost)
        self._phases[dst].add(phase, cost)
        self.comm.messages += 1
        self.comm.keys += keys
        self.comm.seconds += 2 * cost

    def exchange(self, a: int, b: int, keys_each_way: int, phase: str) -> None:
        """Synchronous pairwise exchange (both directions overlap)."""
        self._check(a)
        self._check(b)
        cost = self.model.message_cost(keys_each_way)
        t = max(self._clock[a], self._clock[b]) + cost
        self._clock[a] = t
        self._clock[b] = t
        self._phases[a].add(phase, cost)
        self._phases[b].add(phase, cost)
        self.comm.messages += 2
        self.comm.keys += 2 * keys_each_way
        self.comm.seconds += 2 * cost

    def alltoall(self, out_sizes: np.ndarray, phase: str) -> None:
        """All-to-all personalised exchange (crossbar collective).

        ``out_sizes[i, j]`` is the number of keys processor ``i`` sends to
        processor ``j``.  Per the paper's cost accounting for the sample
        merge, each processor pays ``p`` message start-ups plus ``beta``
        per key sent and received — ``2(p·τ + rs·β)`` in the balanced case
        — after synchronising with every partner (the collective starts at
        the latest participant's clock).
        """
        out_sizes = np.asarray(out_sizes)
        if out_sizes.shape != (self.p, self.p):
            raise ConfigError("out_sizes must be a p x p matrix")
        start = float(self._clock.max())
        sent = out_sizes.sum(axis=1) - np.diag(out_sizes)
        received = out_sizes.sum(axis=0) - np.diag(out_sizes)
        for proc in range(self.p):
            cost = self.p * self.model.tau + float(
                (sent[proc] + received[proc]) * self.model.beta
            )
            wait = start - self._clock[proc]
            if wait > 0:
                self._phases[proc].add(phase, wait)
            self._clock[proc] = start + cost
            self._phases[proc].add(phase, cost)
            self.comm.seconds += cost
        self.comm.messages += self.p * self.p
        self.comm.keys += int(sent.sum())

    def barrier(self, phase: str = "barrier") -> None:
        """Synchronise all clocks to the maximum (no extra cost charged)."""
        t = float(self._clock.max())
        for proc in range(self.p):
            wait = t - self._clock[proc]
            if wait > 0:
                self._phases[proc].add(phase, wait)
        self._clock[:] = t

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------

    def clock(self, proc: int) -> float:
        """Current simulated time of one processor."""
        self._check(proc)
        return float(self._clock[proc])

    def elapsed(self) -> float:
        """Simulated wall-clock: the slowest processor's clock."""
        return float(self._clock.max())

    def phases(self, proc: int) -> PhaseBreakdown:
        """Per-phase breakdown for one processor."""
        self._check(proc)
        return self._phases[proc]

    def phase_totals(self) -> dict[str, float]:
        """Phase -> time, averaged over processors (the paper reports
        per-phase fractions of the total on representative nodes)."""
        acc: dict[str, float] = {}
        for br in self._phases:
            for phase, t in br.times.items():
                acc[phase] = acc.get(phase, 0.0) + t
        return {phase: t / self.p for phase, t in acc.items()}

    def phase_fractions(self) -> dict[str, float]:
        """Phase -> fraction of the mean total time."""
        totals = self.phase_totals()
        denom = sum(totals.values())
        if denom == 0:
            return {}
        return {phase: t / denom for phase, t in totals.items()}
