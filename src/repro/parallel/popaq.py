"""Parallel OPAQ on the simulated machine (paper section 3).

Each of the ``p`` processors owns ``n/p`` elements, runs the sequential
sample phase on its own disk (``r = (n/p)/m`` runs), and the ``p`` local
sorted sample lists are merged globally with either the bitonic merge or
the sample merge.  The quantile phase is unchanged except that the total
number of runs is ``r·p`` — the identical index arithmetic applies, so the
parallel algorithm inherits Lemmas 1–3 verbatim (the paper notes this
explicitly).

The returned :class:`ParallelResult` carries both the *real* global
summary (bounds computed from it are genuinely correct for the input data)
and the *simulated* clock/phase breakdown for the timing experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import OPAQConfig
from repro.core.quantile_phase import bounds_for
from repro.core.sample_phase import sample_run, scaled_sample_count
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError
from repro.obs import current_tracer
from repro.parallel.backends import (
    WorkerReport,
    get_backend,
    popaq_worker,
    validate_backend,
)
from repro.parallel.bitonic import bitonic_merge
from repro.parallel.machine import MachineModel, SimulatedMachine
from repro.parallel.sample_merge import sample_merge
from repro.selection import kway_merge
from repro.storage import DiskDataset, RunReader

__all__ = ["ParallelOPAQ", "ParallelResult", "predict_merge_time"]

PHASE_IO = "io"
PHASE_SAMPLING = "sampling"
PHASE_LOCAL_MERGE = "local_merge"
PHASE_GLOBAL_MERGE = "global_merge"
PHASE_QUANTILE = "quantile"


@dataclass
class ParallelResult:
    """Everything one parallel OPAQ execution produced.

    ``machine`` always carries the *modelled* timings: for a simulated
    execution they are the execution; for a real backend they are the
    cost-model replay of the same run layout, so
    :meth:`phase_fractions` (modelled) and
    :meth:`measured_phase_fractions` (wall-clock) line up phase by phase —
    the real-vs-modelled comparison of the backend benchmark.
    """

    summary: OPAQSummary
    machine: SimulatedMachine
    num_procs: int
    merge_method: str
    bucket_expansion: float = 1.0
    backend: str = "simulated"
    worker_reports: list[WorkerReport] | None = None

    @property
    def total_time(self) -> float:
        """Simulated wall-clock (slowest processor)."""
        return self.machine.elapsed()

    def phase_fractions(self) -> dict[str, float]:
        """Phase -> fraction of mean total time (paper Tables 11/12)."""
        return self.machine.phase_fractions()

    def measured_phase_totals(self) -> dict[str, float] | None:
        """Phase -> mean measured seconds per worker (real backends only).

        ``None`` for simulated executions, which measure nothing.  The
        global-merge phase runs on rank 0 alone but is averaged over all
        workers, mirroring :meth:`SimulatedMachine.phase_totals`.
        """
        if self.worker_reports is None:
            return None
        acc: dict[str, float] = {}
        for report in self.worker_reports:
            for phase, seconds in report.phase_seconds.items():
                acc[phase] = acc.get(phase, 0.0) + seconds
        return {phase: t / self.num_procs for phase, t in sorted(acc.items())}

    def measured_phase_fractions(self) -> dict[str, float] | None:
        """Phase -> fraction of measured time (real backends only)."""
        totals = self.measured_phase_totals()
        if totals is None:
            return None
        denom = sum(totals.values())
        if denom == 0:
            return {}
        return {phase: t / denom for phase, t in totals.items()}

    def measured_elapsed(self) -> float | None:
        """Slowest worker's summed measured phase seconds (real backends
        only) — the wall-clock analogue of :attr:`total_time`."""
        if self.worker_reports is None:
            return None
        return max(
            sum(report.phase_seconds.values())
            for report in self.worker_reports
        )

    def io_fraction(self) -> float:
        """The paper's Table 11 number."""
        return self.phase_fractions().get(PHASE_IO, 0.0)

    def bounds(self, phis) -> list:
        """Quantile bounds from the global summary."""
        return bounds_for(self.summary, phis)


def predict_merge_time(
    p: int,
    list_size: int,
    model: MachineModel,
    method: str,
    oversample: int | None = None,
) -> float:
    """Analytic merge time from the paper's Table 8 formulas.

    ``list_size`` is ``r·s``, the per-processor sorted sample list size.
    Used by the Table 8 benchmark and cross-checked against the simulated
    execution in the tests.
    """
    if p < 2:
        return 0.0
    log_p = math.ceil(math.log2(p))
    rs = list_size
    if method == "bitonic":
        steps = log_p * (log_p + 1) / 2
        compute = 2 * rs * steps * model.mu
        comm = steps * (model.tau + rs * model.beta)
        return compute + comm
    if method == "sample":
        s_prime = oversample or p
        compute = (
            s_prime + (p - 1) * math.log2(max(2, rs)) + rs * log_p
        ) * model.mu
        gather_bcast = 2 * log_p * (model.tau + s_prime * model.beta)
        all_to_all = 2 * (p * model.tau + rs * model.beta)
        return compute + gather_bcast + all_to_all
    raise ConfigError(f"unknown merge method {method!r}")


class ParallelOPAQ:
    """The parallel formulation of OPAQ over a simulated machine."""

    def __init__(
        self,
        num_procs: int,
        config: OPAQConfig,
        model: MachineModel | None = None,
        merge_method: str = "sample",
        oversample: int | None = None,
        overlap_io: bool = False,
        backend: str = "simulated",
    ) -> None:
        """``overlap_io`` enables the paper's future-work optimisation:
        reading the next run proceeds concurrently with sampling the
        current one, so each run costs ``max(io, sampling)`` instead of
        their sum.  Accuracy is unaffected (the same bytes are read).

        ``backend`` selects the execution substrate: ``"simulated"`` (the
        default) runs on the cost model's per-processor clocks, while
        ``"serial"``, ``"thread"`` and ``"process"`` run the same SPMD
        program on real workers (see :mod:`repro.parallel.backends`) and
        *replay* the run layout through the cost model, so the result
        carries measured and modelled timings side by side."""
        if num_procs < 1:
            raise ConfigError("need at least one processor")
        if merge_method not in ("sample", "bitonic"):
            raise ConfigError("merge_method must be 'sample' or 'bitonic'")
        if merge_method == "bitonic" and num_procs & (num_procs - 1):
            raise ConfigError("bitonic merge requires a power-of-two p")
        validate_backend(backend)
        self.p = num_procs
        self.config = config
        self.model = model or MachineModel.sp2()
        self.merge_method = merge_method
        self.oversample = oversample
        self.overlap_io = overlap_io
        self.backend = backend

    # ------------------------------------------------------------------

    def _partition_runs(self, partition):
        """Iterate one processor's data as runs."""
        m = self.config.run_size
        if isinstance(partition, DiskDataset):
            # RunReader emits the io.* trace events itself.
            return RunReader(partition, run_size=m)
        arr = np.asarray(partition, dtype=np.float64)
        return self._array_runs(arr, m)

    @staticmethod
    def _array_runs(arr, m):
        """Yield in-memory runs, charging the same io.* trace counters a
        :class:`RunReader` would for the equivalent disk-resident data."""
        tracer = current_tracer()
        if not tracer.enabled:
            yield from (arr[i : i + m] for i in range(0, arr.size, m))
            return
        element_size = arr.dtype.itemsize
        for index, start in enumerate(range(0, arr.size, m)):
            run = arr[start : start + m]
            tracer.count("io.elements", int(run.size), run=index)
            tracer.count("io.bytes", int(run.size) * element_size, run=index)
            yield run

    def _emit_spmd_counters(self, machine: SimulatedMachine) -> None:
        """Record the execution's SPMD traffic and simulated time.

        All values are deterministic functions of the input and config
        (simulated, not measured), so they participate in the trace-stream
        determinism contract and double as cost-model oracles.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return
        tracer.count("spmd.procs", self.p, merge=self.merge_method)
        tracer.count("spmd.messages", machine.comm.messages)
        tracer.count("spmd.keys", machine.comm.keys)
        tracer.count("spmd.comm_seconds", machine.comm.seconds)
        tracer.count("spmd.elapsed_seconds", machine.elapsed())
        for phase, seconds in sorted(machine.phase_totals().items()):
            tracer.count("spmd.phase_seconds", seconds, phase=phase)

    def scatter(self, data) -> list[np.ndarray]:
        """Block-partition a dataset/array across the processors."""
        if isinstance(data, DiskDataset):
            data = data.read_all()
        arr = np.asarray(data, dtype=np.float64)
        return [part for part in np.array_split(arr, self.p)]

    def run(self, partitions, phis=None) -> ParallelResult:
        """Execute parallel OPAQ.

        Parameters
        ----------
        partitions:
            One data source per processor (list of arrays/datasets), or a
            single array to be block-partitioned by :meth:`scatter`.
        phis:
            Optional fractions; when given, the quantile phase is charged
            and the bounds are computed (and discarded — call
            :meth:`ParallelResult.bounds` for the values, it is free).
        """
        if isinstance(partitions, (np.ndarray, DiskDataset)):
            partitions = self.scatter(partitions)
        if len(partitions) != self.p:
            raise ConfigError(
                f"{len(partitions)} partitions for {self.p} processors"
            )
        if self.backend != "simulated":
            return self._run_real(partitions, phis)
        machine = SimulatedMachine(self.p, self.model)
        strategy = self.config.selection_strategy()
        s_nominal = self.config.sample_size
        m_nominal = self.config.run_size

        local_lists: list[np.ndarray] = []
        local_payloads: list[np.ndarray] = []
        total_count = 0
        total_runs = 0
        minimum = np.inf
        maximum = -np.inf
        for proc, partition in enumerate(partitions):
            sample_lists: list[np.ndarray] = []
            payload_lists: list[np.ndarray] = []
            runs_here = 0
            count_here = 0
            for run in self._partition_runs(partition):
                run = np.asarray(run, dtype=np.float64)
                if run.size == 0:
                    continue
                s_k = scaled_sample_count(run.size, m_nominal, s_nominal)
                samples, gaps, floors = sample_run(
                    run, s_k, strategy, kernel=self.config.kernel
                )
                sampling_ops = run.size * max(1.0, math.log2(max(2, s_k)))
                if self.overlap_io:
                    machine.charge_overlapped(
                        proc,
                        {
                            PHASE_IO: self.model.read_cost(run.size),
                            PHASE_SAMPLING: self.model.compute_cost(sampling_ops),
                        },
                    )
                else:
                    machine.charge_io(proc, run.size, PHASE_IO)
                    machine.charge_compute(proc, sampling_ops, PHASE_SAMPLING)
                sample_lists.append(samples)
                payload_lists.append(
                    np.column_stack([gaps.astype(np.float64), floors])
                )
                runs_here += 1
                count_here += run.size
                minimum = min(minimum, float(run.min()))
                maximum = max(maximum, float(run.max()))
            if not runs_here:
                raise ConfigError(f"processor {proc} received no data")
            merged, merged_payload = kway_merge(
                sample_lists, payloads=payload_lists,
                kernel=self.config.kernel,
            )
            machine.charge_compute(
                proc,
                merged.size * max(1.0, math.log2(max(2, runs_here))),
                PHASE_LOCAL_MERGE,
            )
            local_lists.append(merged)
            local_payloads.append(merged_payload)
            total_count += count_here
            total_runs += runs_here

        # Global merge of the p local sample lists.
        expansion = 1.0
        if self.p == 1:
            global_samples, global_payload = local_lists[0], local_payloads[0]
        elif self.merge_method == "bitonic":
            blocks, pays = bitonic_merge(
                local_lists, machine, payloads=local_payloads, phase=PHASE_GLOBAL_MERGE
            )
            global_samples = np.concatenate(blocks)
            global_payload = np.concatenate(pays)
        else:
            blocks, pays, expansion = sample_merge(
                local_lists,
                machine,
                payloads=local_payloads,
                oversample=self.oversample,
                phase=PHASE_GLOBAL_MERGE,
            )
            global_samples = np.concatenate(blocks)
            global_payload = np.concatenate(pays)
        machine.barrier(PHASE_GLOBAL_MERGE)

        summary = OPAQSummary(
            samples=global_samples,
            gaps=global_payload[:, 0].astype(np.int64),
            floors=global_payload[:, 1],
            num_runs=total_runs,
            count=total_count,
            minimum=minimum,
            maximum=maximum,
        )
        if phis is not None:
            # Constant work per quantile on the coordinating processor.
            ops = len(list(phis)) * max(1.0, math.log2(max(2, summary.num_samples)))
            machine.charge_compute(0, ops, PHASE_QUANTILE)
        self._emit_spmd_counters(machine)
        return ParallelResult(
            summary=summary,
            machine=machine,
            num_procs=self.p,
            merge_method=self.merge_method,
            bucket_expansion=expansion,
        )

    # ------------------------------------------------------------------
    # Real execution backends
    # ------------------------------------------------------------------

    def _run_real(self, partitions, phis) -> ParallelResult:
        """Execute the SPMD program on a real backend (see ``backend=``).

        The data-path result is the workers' own: the global sample list
        is gathered to rank 0 and r-way merged there (an order-preserving
        merge of the same per-partition lists the simulated merge networks
        move, so the merged *values* are identical).  The cost model is
        then replayed over the measured run layout, giving the modelled
        timings that sit next to the workers' measured phase seconds.
        """
        backend = get_backend(self.backend)
        results = backend.run(
            popaq_worker, [(part, self.config) for part in partitions]
        )
        reports: list[WorkerReport] = [res["report"] for res in results]
        root = results[0]
        summary = OPAQSummary(
            samples=root["samples"],
            gaps=root["payload"][:, 0].astype(np.int64),
            floors=root["payload"][:, 1],
            num_runs=sum(r.num_runs for r in reports),
            count=sum(r.count for r in reports),
            minimum=min(r.minimum for r in reports),
            maximum=max(r.maximum for r in reports),
        )
        machine = self._replay_model(reports)
        if phis is not None:
            ops = len(list(phis)) * max(1.0, math.log2(max(2, summary.num_samples)))
            machine.charge_compute(0, ops, PHASE_QUANTILE)
        self._emit_spmd_counters(machine)
        self._emit_worker_timings(backend.name, reports)
        return ParallelResult(
            summary=summary,
            machine=machine,
            num_procs=self.p,
            merge_method=self.merge_method,
            backend=backend.name,
            worker_reports=reports,
        )

    def _replay_model(self, reports: list[WorkerReport]) -> SimulatedMachine:
        """Charge a fresh simulated machine for the run layout a real
        execution reported — the modelled half of real-vs-modelled.

        Per-run I/O, sampling and the local merge replay exactly as the
        simulated execution charges them; the global merge is charged from
        the paper's Table 8 closed forms (:func:`predict_merge_time`)
        because the real gather-merge has no simulated network to walk.
        """
        machine = SimulatedMachine(self.p, self.model)
        for proc, report in enumerate(reports):
            for run_size, s_k in report.run_layout:
                sampling_ops = run_size * max(1.0, math.log2(max(2, s_k)))
                if self.overlap_io:
                    machine.charge_overlapped(
                        proc,
                        {
                            PHASE_IO: self.model.read_cost(run_size),
                            PHASE_SAMPLING: self.model.compute_cost(sampling_ops),
                        },
                    )
                else:
                    machine.charge_io(proc, run_size, PHASE_IO)
                    machine.charge_compute(proc, sampling_ops, PHASE_SAMPLING)
            list_len = sum(s for _, s in report.run_layout)
            machine.charge_compute(
                proc,
                list_len * max(1.0, math.log2(max(2, report.num_runs))),
                PHASE_LOCAL_MERGE,
            )
        if self.p > 1:
            lengths = [sum(s for _, s in r.run_layout) for r in reports]
            list_size = round(sum(lengths) / len(lengths))
            merge_time = predict_merge_time(
                self.p, list_size, self.model, self.merge_method, self.oversample
            )
            for proc in range(self.p):
                machine.charge(proc, merge_time, PHASE_GLOBAL_MERGE)
        machine.barrier(PHASE_GLOBAL_MERGE)
        return machine

    def _emit_worker_timings(
        self, backend_name: str, reports: list[WorkerReport]
    ) -> None:
        """Record each worker's measured phase seconds as obs spans.

        The durations were measured inside the workers (possibly in other
        processes), so they are recorded after the fact; the attributes
        stay deterministic, the duration is — as for every span — the
        sanctioned nondeterministic field.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return
        for report in reports:
            for phase, seconds in sorted(report.phase_seconds.items()):
                tracer.record_span(
                    "backend.phase",
                    seconds,
                    backend=backend_name,
                    rank=report.rank,
                    phase=phase,
                )
