"""Sample merge of ``p`` distributed sorted lists (paper section 3).

The paper's second option for the global merge is a *sample merge* — "a
variation of ... sample sort [LLS+93]; the initial sorting step is not
required because the local lists are already sorted".  This is parallel
sorting by regular sampling (PSRS) minus the local sort:

1. each processor draws ``s'`` regular samples from its sorted list
   (constant-time indexing, the lists are sorted);
2. the samples are gathered on processor 0, merged, and ``p-1`` pivots are
   chosen at regular positions;
3. the pivots are broadcast; every processor splits its list into ``p``
   buckets with binary searches;
4. an all-to-all exchange routes bucket ``i`` to processor ``i``;
5. each processor merges the ``p`` sorted pieces it received.

Cost (paper Table 8):
``O((s' + (p-1)·log(rs) + rs·log p)µ + (1+log p) log p (τ + s'β) + 2(pτ + rs·β))``
with the *bucket expansion* ``δ ≤ 3/2`` bounding how far the largest
bucket can exceed the ideal ``rs`` ([LLS+93]'s regular-sampling theorem).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError
from repro.parallel.machine import SimulatedMachine
from repro.selection import is_sorted, kway_merge

__all__ = ["sample_merge"]


def sample_merge(
    blocks: list[np.ndarray],
    machine: SimulatedMachine,
    payloads: list[np.ndarray] | None = None,
    oversample: int | None = None,
    phase: str = "global_merge",
) -> tuple[list[np.ndarray], list[np.ndarray], float]:
    """Globally sort ``p`` locally sorted blocks by regular sampling.

    Parameters
    ----------
    blocks:
        One sorted array per processor (any ``p >= 1``, any sizes).
    machine:
        The simulated machine whose clocks to charge.
    payloads:
        Optional per-key payload arrays riding along.
    oversample:
        ``s'`` — samples drawn per processor for pivot selection.
        Defaults to ``p`` (PSRS's classic choice; larger values tighten
        the bucket expansion).

    Returns
    -------
    (blocks, payloads, expansion):
        The block-distributed globally sorted sequence and the realised
        bucket expansion ``max bucket / mean bucket`` (theory: ``< 2`` for
        PSRS oversampling, ``<= 3/2`` asymptotically).
    """
    p = len(blocks)
    if p != machine.p:
        raise ConfigError(f"{p} blocks for a {machine.p}-processor machine")
    blocks = [np.asarray(b, dtype=np.float64) for b in blocks]
    for b in blocks:
        if not is_sorted(b):
            raise ConfigError("every input block must be locally sorted")
    if payloads is None:
        payloads = [np.zeros(b.size, dtype=np.int64) for b in blocks]
    else:
        payloads = [np.asarray(q) for q in payloads]
        if any(q.shape[0] != b.size for q, b in zip(payloads, blocks)):
            raise ConfigError("payloads must align with blocks")
    if p == 1:
        return [blocks[0].copy()], [payloads[0].copy()], 1.0

    s_prime = oversample or p
    log_p = max(1, math.ceil(math.log2(p)))

    # 1. Regular samples of each sorted block: pure indexing.
    local_samples = []
    for i, b in enumerate(blocks):
        if b.size:
            idx = np.linspace(0, b.size - 1, num=min(s_prime, b.size)).astype(np.int64)
            local_samples.append(b[idx])
        else:
            local_samples.append(np.empty(0))
        machine.charge_compute(i, s_prime, phase)

    # 2. Gather on processor 0 (binary tree: log p rounds) and merge.
    for round_ in range(log_p):
        stride = 1 << round_
        for i in range(0, p, 2 * stride):
            j = i + stride
            if j < p:
                machine.send(j, i, s_prime * stride, phase)
    gathered = kway_merge(local_samples)
    machine.charge_compute(0, max(1, gathered.size) * log_p, phase)

    # 3. p-1 pivots at regular positions, broadcast down the same tree.
    if gathered.size >= p:
        pivot_idx = (np.arange(1, p) * gathered.size) // p
        pivots = gathered[pivot_idx]
    else:
        pivots = np.repeat(gathered[-1] if gathered.size else 0.0, p - 1)
    for round_ in reversed(range(log_p)):
        stride = 1 << round_
        for i in range(0, p, 2 * stride):
            j = i + stride
            if j < p:
                machine.send(i, j, p - 1, phase)

    # 4. Partition every block by the pivots (binary searches) and
    #    exchange buckets all-to-all (a single crossbar collective, as the
    #    paper's 2(p·τ + rs·β) term models).
    splits = []
    for i, b in enumerate(blocks):
        cut = np.searchsorted(b, pivots, side="right")
        splits.append(np.concatenate([[0], cut, [b.size]]))
        machine.charge_compute(i, (p - 1) * max(1, math.log2(b.size + 1)), phase)
    out_sizes = np.zeros((p, p), dtype=np.int64)
    for src in range(p):
        for dst in range(p):
            out_sizes[src, dst] = splits[src][dst + 1] - splits[src][dst]
    machine.alltoall(out_sizes, phase)
    out_blocks: list[np.ndarray] = []
    out_payloads: list[np.ndarray] = []
    for dst in range(p):
        pieces = []
        pay_pieces = []
        for src in range(p):
            lo, hi = splits[src][dst], splits[src][dst + 1]
            pieces.append(blocks[src][lo:hi])
            pay_pieces.append(payloads[src][lo:hi])
        merged, merged_pay = kway_merge(pieces, payloads=pay_pieces)
        out_blocks.append(merged)
        out_payloads.append(merged_pay)
        # 5. Local p-way merge of the received pieces.
        machine.charge_compute(dst, max(1, merged.size) * log_p, phase)

    sizes = np.array([b.size for b in out_blocks], dtype=np.float64)
    total = sizes.sum()
    expansion = float(sizes.max() / (total / p)) if total else 1.0
    return out_blocks, out_payloads, expansion
