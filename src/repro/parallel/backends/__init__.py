"""Pluggable execution backends: the same SPMD program on real cores.

The simulated machine answers "what would the paper's SP-2 do?"; the
backends answer "what do this machine's cores do?".  Both execute the same
program shape — per-rank sample phase, gather, global merge — so results
are cross-checked for bit-identical sample lists and bounds (see
``docs/parallel.md`` and the conformance suite in
``tests/parallel/test_backends.py``).

========== ============ ==========================================
name       execution    use it for
========== ============ ==========================================
serial     this thread  the reference semantics; debugging
thread     ``p`` threads concurrency where numpy releases the GIL
process    ``p`` processes real multi-core runs, shared-memory I/O
========== ============ ==========================================

Resolve by name with :func:`get_backend`; configure via
``ParallelOPAQ(..., backend="process")``, ``OPAQ.quantiles(...,
backend=...)`` or ``ServiceConfig(backend=...)``.
"""

from repro.parallel.backends.base import (
    Comm,
    ExecutionBackend,
    WorkerFn,
    backend_names,
    get_backend,
    validate_backend,
)
from repro.parallel.backends.process import ProcessBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.backends.spmd import WorkerReport, popaq_worker
from repro.parallel.backends.threads import ThreadBackend

#: The registered real-backend names (``"simulated"`` is not one of them:
#: it names the cost-model execution built into ParallelOPAQ).
BACKEND_NAMES = backend_names()

__all__ = [
    "Comm",
    "ExecutionBackend",
    "WorkerFn",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "WorkerReport",
    "popaq_worker",
    "get_backend",
    "validate_backend",
    "backend_names",
    "BACKEND_NAMES",
]
