"""The POPAQ SPMD program the real backends execute.

This is the same program the simulated machine charges (paper section 3),
written against the :class:`~repro.parallel.backends.base.Comm` interface:
each rank reads its partition run by run, extracts the regular samples,
merges its per-run sample lists locally, and the ``p`` local sorted lists
are gathered to rank 0 for the global r-way merge.

Determinism contract: rank 0 receives **in rank order** (``1, 2, ..., p-1``)
— never "whichever worker finishes first" — so the merged sample list is a
pure function of the partitions and the configuration, identical across
the serial, thread and process backends and bit-identical (as a value
array) to the simulated execution's global merge of the same partitions.

Workers measure their own phase seconds with ``time.perf_counter`` (the
sanctioned reporting timer; see OPQ301) and *return* them: a worker may be
running in a forked process whose tracer cannot reach the caller's sink,
so the driver — :meth:`repro.parallel.ParallelOPAQ.run` — emits the
spans from the reports instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.core.config import OPAQConfig
from repro.core.sample_phase import sample_run, scaled_sample_count
from repro.errors import ConfigError
from repro.parallel.backends.base import Comm
from repro.selection import kway_merge
from repro.storage import DiskDataset, RunReader

__all__ = ["WorkerReport", "popaq_worker"]


@dataclass
class WorkerReport:
    """What one rank measured and touched — the modelled replay's input.

    ``run_layout`` holds ``(run size, sample count)`` per run, exactly the
    quantities the simulated machine charges for; the driver replays them
    through a :class:`~repro.parallel.machine.SimulatedMachine` to produce
    the modelled timings that sit next to the measured ``phase_seconds``.
    """

    rank: int
    num_runs: int
    count: int
    minimum: float
    maximum: float
    run_layout: list[tuple[int, int]]
    phase_seconds: dict[str, float]


def _iter_runs(partition: Any, run_size: int) -> Iterator[np.ndarray]:
    """One rank's partition as runs: a real disk reader for disk-resident
    data, plain slicing for in-memory (or shared-memory) arrays."""
    if isinstance(partition, DiskDataset):
        return iter(RunReader(partition, run_size=run_size))
    arr = np.asarray(partition, dtype=np.float64)
    return (arr[i : i + run_size] for i in range(0, arr.size, run_size))


def popaq_worker(
    comm: Comm, partition: Any, config: OPAQConfig
) -> dict[str, Any]:
    """One rank of POPAQ (see module docstring).

    Rank 0 returns ``{"samples", "payload", "report"}`` — the globally
    merged sample list with its (gap, floor) payload rows; every other
    rank returns just ``{"report"}``.
    """
    strategy = config.selection_strategy()
    phase = {"io": 0.0, "sampling": 0.0, "local_merge": 0.0}
    sample_lists: list[np.ndarray] = []
    payload_lists: list[np.ndarray] = []
    run_layout: list[tuple[int, int]] = []
    count = 0
    minimum = np.inf
    maximum = -np.inf
    runs = _iter_runs(partition, config.run_size)
    while True:
        t0 = time.perf_counter()
        run = next(runs, None)  # the read (for disk partitions) is the io phase
        phase["io"] += time.perf_counter() - t0
        if run is None:
            break
        run = np.asarray(run, dtype=np.float64)
        if run.size == 0:
            continue
        t0 = time.perf_counter()
        s_k = scaled_sample_count(
            run.size, config.run_size, config.sample_size
        )
        samples, gaps, floors = sample_run(
            run, s_k, strategy, kernel=config.kernel
        )
        phase["sampling"] += time.perf_counter() - t0
        sample_lists.append(samples)
        payload_lists.append(
            np.column_stack([gaps.astype(np.float64), floors])
        )
        run_layout.append((int(run.size), int(s_k)))
        count += int(run.size)
        minimum = min(minimum, float(run.min()))
        maximum = max(maximum, float(run.max()))
    if not sample_lists:
        raise ConfigError(f"processor {comm.rank} received no data")
    t0 = time.perf_counter()
    merged, merged_payload = kway_merge(
        sample_lists, payloads=payload_lists, kernel=config.kernel
    )
    phase["local_merge"] += time.perf_counter() - t0
    report = WorkerReport(
        rank=comm.rank,
        num_runs=len(run_layout),
        count=count,
        minimum=minimum,
        maximum=maximum,
        run_layout=run_layout,
        phase_seconds=phase,
    )
    if comm.rank != 0:
        comm.send(0, (merged, merged_payload))
        comm.barrier()
        return {"report": report}
    lists = [merged]
    payloads = [merged_payload]
    for src in range(1, comm.size):
        # Rank-order receives ARE the determinism contract: arrival order
        # must never influence the merged list (cf. lint rule OPQ403 on
        # the simulated machine's send sequences).
        peer_samples, peer_payload = comm.recv(src)
        lists.append(peer_samples)
        payloads.append(peer_payload)
    t0 = time.perf_counter()
    global_samples, global_payload = kway_merge(
        lists, payloads=payloads, kernel=config.kernel
    )
    phase["global_merge"] = time.perf_counter() - t0
    comm.barrier()
    return {
        "samples": global_samples,
        "payload": global_payload,
        "report": report,
    }
