"""The process backend: real cores via multiprocessing + shared memory.

One worker process per rank, communicating through per-pair queues and a
shared barrier.  Numpy arrays crossing a process boundary — run data going
out to workers, sample lists coming back — travel through
``multiprocessing.shared_memory`` segments instead of pickle streams: the
sender copies the array into a segment once and ships a tiny descriptor;
the single consumer copies it out, closes and unlinks the segment.  For
the megabyte-scale partitions and sample lists POPAQ moves, this removes
the double serialisation cost that makes naive queue-of-arrays designs
slower than serial execution.

Failure handling (the backend's hard contract):

- A worker that raises catches everything, aborts the shared barrier and
  reports ``(rank, exception type, traceback)`` on the result queue; the
  parent re-raises it as :class:`~repro.errors.ParallelError` with the
  worker traceback in the message — never a bare multiprocessing dump.
- A worker that *dies* without reporting (``os._exit``, a segfault, the
  OOM killer) is detected by polling liveness while draining the result
  queue; its exit code lands in the :class:`~repro.errors.ParallelError`.
- Every blocking call — queue gets, barrier waits, joins — carries a
  timeout; on any failure the parent terminates surviving workers before
  raising, so no execution path hangs.

The start method defaults to ``fork`` where available (cheap, inherits
the loaded numpy) and falls back to the platform default otherwise; the
worker entry point and all shipped objects are picklable, so ``spawn``
works too.  Tracing inside workers is detached: a forked child must not
write to the parent's sink, so workers measure their phase seconds with
``time.perf_counter`` and return them for the parent to report.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.parallel.backends.base import (
    Comm,
    ExecutionBackend,
    WorkerFn,
    register_backend,
)

__all__ = ["ProcessBackend"]


# ----------------------------------------------------------------------
# Shared-memory transport for numpy arrays
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ShmArray:
    """Descriptor of an array parked in a shared-memory segment.

    The producer has already copied the data in and detached; exactly one
    consumer calls :func:`_unpack`, which copies the data out and unlinks
    the segment.  Single-consumer is a structural property here: payloads
    are point-to-point messages, worker args and per-rank results.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str


def _unlink_quietly(segment: shared_memory.SharedMemory) -> None:
    """Unlink ``segment``, tolerating a racing unlink.

    Split out so the release is *summarised*: callers passing a segment
    here provably release it (the analysis sees ``unlink`` through the
    call edge), and the FileNotFoundError tolerance lives in one place.
    """
    try:
        segment.unlink()  # also unregisters from the resource tracker
    except FileNotFoundError:
        pass


def _pack(obj: Any, threshold: int) -> Any:
    """Recursively park large arrays in shared memory, returning descriptors."""
    if (
        isinstance(obj, np.ndarray)
        and obj.dtype != object
        and obj.nbytes >= threshold
    ):
        segment = shared_memory.SharedMemory(create=True, size=max(1, obj.nbytes))
        try:
            view: np.ndarray = np.ndarray(
                obj.shape, dtype=obj.dtype, buffer=segment.buf
            )
            view[...] = obj
            # Shipping the segment *name* is the ownership transfer:
            # exactly one consumer attaches and unlinks (see _ShmArray).
            handle = _ShmArray(  # opaq: transfer[segment] consumer unlinks
                segment.name, tuple(obj.shape), obj.dtype.str
            )
        except BaseException:  # noqa: B036  # opaq: ignore[exception-broad-except] re-raised: segment cleanup must cover every failure
            # A mid-copy failure must not strand a named segment: unlink
            # here, before the exception leaves the only frame that still
            # knows the name.
            segment.close()
            segment.unlink()
            raise
        segment.close()
        return handle
    if isinstance(obj, tuple):
        return tuple(_pack(item, threshold) for item in obj)
    if isinstance(obj, list):
        return [_pack(item, threshold) for item in obj]
    if isinstance(obj, dict):
        return {key: _pack(value, threshold) for key, value in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    """Resolve descriptors back to arrays, unlinking each segment."""
    if isinstance(obj, _ShmArray):
        try:
            segment = shared_memory.SharedMemory(name=obj.name)
        except FileNotFoundError:
            raise ParallelError(
                f"shared-memory segment {obj.name!r} vanished before its "
                "consumer read it (was the producer terminated?)"
            ) from None
        try:
            arr = np.ndarray(
                obj.shape, dtype=np.dtype(obj.dtype), buffer=segment.buf
            ).copy()
        except BaseException:  # noqa: B036  # opaq: ignore[exception-broad-except] re-raised: segment cleanup must cover every failure
            # The consumer owns the segment from attach onward; a failed
            # copy-out must still detach and unlink it.
            segment.close()
            _unlink_quietly(segment)
            raise
        segment.close()
        _unlink_quietly(segment)
        return arr
    if isinstance(obj, tuple):
        return tuple(_unpack(item) for item in obj)
    if isinstance(obj, list):
        return [_unpack(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _unpack(value) for key, value in obj.items()}
    return obj


# ----------------------------------------------------------------------
# The communicator and worker entry point
# ----------------------------------------------------------------------


class _ProcessComm(Comm):
    """Per-pair ``multiprocessing.Queue`` mailboxes plus a shared barrier."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: dict[tuple[int, int], Any],
        barrier: Any,
        timeout: float,
        shm_threshold: int,
    ) -> None:
        super().__init__(rank, size)
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._timeout = timeout
        self._shm_threshold = shm_threshold

    def send(self, dst: int, payload: Any) -> None:
        self._check_peer(dst, "send to")
        self._mailboxes[(self.rank, dst)].put(
            _pack(payload, self._shm_threshold)
        )

    def recv(self, src: int) -> Any:
        self._check_peer(src, "receive from")
        try:
            packed = self._mailboxes[(src, self.rank)].get(
                timeout=self._timeout
            )
        except queue.Empty:
            raise ParallelError(
                f"rank {self.rank} timed out after {self._timeout}s waiting "
                f"for a message from rank {src}"
            ) from None
        return _unpack(packed)

    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            # Raised on abort by a failing peer AND on wait timeout (the
            # timeout breaks the barrier); both become ParallelError.
            raise ParallelError(
                f"barrier broken while rank {self.rank} was waiting: a peer "
                "worker failed or timed out"
            ) from None


def _worker_main(
    fn: WorkerFn,
    rank: int,
    size: int,
    packed_arg: tuple[Any, ...],
    mailboxes: dict[tuple[int, int], Any],
    barrier: Any,
    results: Any,
    timeout: float,
    shm_threshold: int,
) -> None:
    """Module-level worker entry point (picklable, so spawn works too)."""
    from repro.obs.trace import _reset_to_disabled

    # A child must never write to the parent's trace sink: a forked
    # JsonlSink would interleave half-lines from p processes.  Workers
    # measure and *return* their timings instead.
    _reset_to_disabled()
    try:
        arg = _unpack(packed_arg)
        comm = _ProcessComm(rank, size, mailboxes, barrier, timeout, shm_threshold)
        result = fn(comm, *arg)
        results.put((rank, "ok", _pack(result, shm_threshold)))
    except BaseException as exc:  # noqa: B036  # opaq: ignore[exception-broad-except] isolation boundary: every worker failure must become a typed report
        try:
            barrier.abort()
        except Exception:  # opaq: ignore[exception-broad-except] best-effort peer unblocking on a failure path
            pass
        try:
            results.put(
                (rank, "error", type(exc).__name__, str(exc), traceback.format_exc())
            )
        except Exception:  # opaq: ignore[exception-broad-except] the parent detects a silent death by exit code
            pass


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------


@register_backend
class ProcessBackend(ExecutionBackend):
    """One process per rank, shared-memory array transport.

    Parameters
    ----------
    timeout:
        Seconds any single blocking step (receive, barrier, result wait)
        may take before the execution is declared failed.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    shm_threshold:
        Arrays at least this many bytes travel via shared memory; smaller
        ones ride the queue pickle stream (a segment per tiny array would
        cost more than it saves).
    """

    name = "process"

    def __init__(
        self,
        timeout: float = 120.0,
        start_method: str | None = None,
        shm_threshold: int = 1 << 14,
    ) -> None:
        self.timeout = timeout
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.shm_threshold = shm_threshold

    def run(self, fn: WorkerFn, args: Sequence[tuple[Any, ...]]) -> list[Any]:
        if not args:
            raise ParallelError("an SPMD program needs at least one worker")
        p = len(args)
        ctx = mp.get_context(self.start_method)
        mailboxes = {
            (src, dst): ctx.Queue()
            for src in range(p)
            for dst in range(p)
            if src != dst
        }
        barrier = ctx.Barrier(p)
        results: Any = ctx.Queue()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    fn,
                    rank,
                    p,
                    _pack(tuple(args[rank]), self.shm_threshold),
                    mailboxes,
                    barrier,
                    results,
                    self.timeout,
                    self.shm_threshold,
                ),
                name=f"opaq-spmd-{rank}",
                daemon=True,
            )
            for rank in range(p)
        ]
        for worker in workers:
            worker.start()
        try:
            outcomes = self._collect(workers, results, p)
        except BaseException:  # noqa: B036  # opaq: ignore[exception-broad-except] re-raised: terminate-then-raise must cover every failure
            self._terminate(workers)
            raise
        for worker in workers:
            worker.join(timeout=self.timeout)
        self._terminate(workers)  # reap any post-report stragglers
        return [_unpack(outcomes[rank][2]) for rank in range(p)]

    # ------------------------------------------------------------------

    def _collect(
        self, workers: list[Any], results: Any, p: int
    ) -> dict[int, tuple[Any, ...]]:
        """Drain ``p`` worker reports, watching for deaths and timeouts.

        On the first error report the drain keeps going for a short
        grace window instead of raising immediately: the first report to
        arrive is often a *knock-on* failure (a peer's broken barrier),
        and the raise should carry the root cause — the worker's own
        exception — when it lands within the window.
        """
        outcomes: dict[int, tuple[Any, ...]] = {}
        deadline = time.perf_counter() + self.timeout
        grace_end: float | None = None
        while len(outcomes) < p:
            if grace_end is not None and time.perf_counter() > grace_end:
                break
            try:
                outcome = results.get(timeout=0.2)
            except queue.Empty:
                outcome = None
            if outcome is not None:
                outcomes[outcome[0]] = outcome
                if outcome[1] == "error" and grace_end is None:
                    grace_end = time.perf_counter() + min(2.0, self.timeout)
                deadline = time.perf_counter() + self.timeout
                continue
            for rank, worker in enumerate(workers):
                if rank not in outcomes and not worker.is_alive():
                    # One last non-blocking drain: the report may have been
                    # queued in the instant before the liveness check.
                    try:
                        late = results.get_nowait()
                        outcomes[late[0]] = late
                        continue
                    except queue.Empty:
                        pass
                    if grace_end is not None:
                        # A peer already failed; record the death as a
                        # knock-on so the root cause still wins below.
                        outcomes[rank] = (
                            rank,
                            "error",
                            "ParallelError",
                            f"worker process rank {rank} died with exit "
                            f"code {worker.exitcode}",
                            "",
                        )
                        continue
                    raise ParallelError(
                        f"worker process rank {rank} died with exit code "
                        f"{worker.exitcode} before reporting a result"
                    )
            if time.perf_counter() > deadline:
                pending = sorted(set(range(p)) - set(outcomes))
                raise ParallelError(
                    f"timed out after {self.timeout}s waiting for worker "
                    f"results (pending ranks {pending})"
                )
        self._raise_root_cause(outcomes)
        return outcomes

    @staticmethod
    def _raise_root_cause(outcomes: dict[int, tuple[Any, ...]]) -> None:
        errors = [o for o in outcomes.values() if o[1] == "error"]
        if not errors:
            return
        primary = next(
            (o for o in errors if o[2] != "ParallelError"), errors[0]
        )
        rank, _, etype, message, tb = primary
        raise ParallelError(
            f"worker process rank {rank} raised {etype}: {message}\n{tb}"
        )

    @staticmethod
    def _terminate(workers: list[Any]) -> None:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
