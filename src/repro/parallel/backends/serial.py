"""The serial reference backend: demand-driven SPMD in one thread.

Runs every rank to completion in this thread, scheduling on demand: when a
running worker receives from a rank that has not produced the message yet,
that rank's worker is executed (recursively) until the message exists.
This executes any *acyclic* communication pattern — gathers, scatters,
pipelines — without threads or processes, which makes it the oracle the
concurrent backends are conformance-tested against: its output is what
"the program, minus all scheduling freedom" computes.

A genuinely cyclic pattern (rank 0 receives from rank 1 while rank 1
receives from rank 0) cannot be serialised; the cycle is detected — the
needed rank is already on the execution stack — and surfaces as
:class:`~repro.errors.ParallelError` instead of a hang.  ``barrier()`` is
a no-op: with run-to-completion scheduling every rank observes all program
order it could ever observe.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.errors import ParallelError
from repro.parallel.backends.base import (
    Comm,
    ExecutionBackend,
    WorkerFn,
    register_backend,
)

__all__ = ["SerialBackend"]

_NEW, _RUNNING, _DONE = "new", "running", "done"


class _SerialState:
    """Shared mailboxes and scheduler for one serial execution."""

    def __init__(self, fn: WorkerFn, args: Sequence[tuple[Any, ...]]) -> None:
        self.fn = fn
        self.args = list(args)
        self.p = len(self.args)
        self.mail: dict[tuple[int, int], deque[Any]] = {}
        self.status = [_NEW] * self.p
        self.results: list[Any] = [None] * self.p

    def ensure_done(self, rank: int) -> None:
        """Run ``rank``'s worker to completion (no-op if it already ran)."""
        if self.status[rank] == _DONE:
            return
        if self.status[rank] == _RUNNING:
            raise ParallelError(
                f"serial backend deadlock: rank {rank} is needed to make "
                "progress but is itself blocked on a receive — the program's "
                "communication pattern is cyclic"
            )
        self.status[rank] = _RUNNING
        try:
            self.results[rank] = self.fn(
                _SerialComm(rank, self), *self.args[rank]
            )
        except ParallelError:
            raise
        except BaseException as exc:  # noqa: B036  # opaq: ignore[exception-broad-except] isolation boundary: rewrapped as ParallelError below
            raise ParallelError(
                f"worker rank {rank} raised {type(exc).__name__}: {exc}"
            ) from exc
        self.status[rank] = _DONE


class _SerialComm(Comm):
    """Mailbox communicator backed by the demand-driven scheduler."""

    def __init__(self, rank: int, state: _SerialState) -> None:
        super().__init__(rank, state.p)
        self._state = state

    def send(self, dst: int, payload: Any) -> None:
        self._check_peer(dst, "send to")
        self._state.mail.setdefault((self.rank, dst), deque()).append(payload)

    def recv(self, src: int) -> Any:
        self._check_peer(src, "receive from")
        box = self._state.mail.setdefault((src, self.rank), deque())
        if not box:
            # Demand-driven: produce the message by running the sender now.
            self._state.ensure_done(src)
        if not box:
            raise ParallelError(
                f"rank {src} finished without sending the message rank "
                f"{self.rank} is waiting for"
            )
        return box.popleft()

    def barrier(self) -> None:
        """No-op: run-to-completion scheduling already serialises ranks."""


@register_backend
class SerialBackend(ExecutionBackend):
    """The single-threaded reference executor (see module docstring)."""

    name = "serial"

    def run(self, fn: WorkerFn, args: Sequence[tuple[Any, ...]]) -> list[Any]:
        if not args:
            raise ParallelError("an SPMD program needs at least one worker")
        state = _SerialState(fn, args)
        for rank in range(state.p):
            state.ensure_done(rank)
        return state.results
