"""The execution-backend protocol: SPMD programs on real cores.

The simulated machine (:mod:`repro.parallel.machine`) *models* the paper's
16-node SP-2; an :class:`ExecutionBackend` *executes* the same SPMD
program on this machine's cores.  The contract is deliberately tiny so the
identical program text runs everywhere:

- A program is a plain function ``fn(comm, *args)``.  The backend runs one
  copy per rank and returns the per-rank return values, ordered by rank.
- Each copy talks through a :class:`Comm` — ``send(dst, payload)``,
  ``recv(src)``, ``barrier()`` — the same point-to-point + barrier
  vocabulary :class:`~repro.parallel.machine.SimulatedMachine` charges for.
- Message order is per ``(src, dst)`` pair FIFO on every backend, and a
  program that receives in a fixed rank order (as
  :func:`repro.parallel.backends.spmd.popaq_worker` does) is therefore
  deterministic on every backend: the result is a pure function of the
  inputs, never of scheduling.

Every failure path — a worker raising, a worker process dying, a receive
or join exceeding its timeout — converges to
:class:`repro.errors.ParallelError`; no backend surfaces a bare
``multiprocessing`` traceback or hangs on worker death.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from repro.errors import ConfigError

__all__ = [
    "Comm",
    "ExecutionBackend",
    "WorkerFn",
    "get_backend",
    "backend_names",
    "validate_backend",
]

#: An SPMD program: called once per rank as ``fn(comm, *args[rank])``.
WorkerFn = Callable[..., Any]


class Comm(ABC):
    """One rank's view of the SPMD communicator.

    Mirrors the vocabulary the simulated machine charges for: point-to-point
    sends with per-pair FIFO ordering, matching receives, and a full
    barrier.  Self-sends are rejected (the same invariant lint rule OPQ401
    enforces statically for the simulated machine).
    """

    def __init__(self, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise ConfigError(f"rank {rank} out of range for {size} workers")
        self.rank = rank
        self.size = size

    def _check_peer(self, peer: int, verb: str) -> None:
        if not 0 <= peer < self.size:
            raise ConfigError(
                f"cannot {verb} rank {peer}: only ranks 0..{self.size - 1} exist"
            )
        if peer == self.rank:
            raise ConfigError(
                f"rank {self.rank} cannot {verb} itself (self-messages are "
                "banned, exactly as OPQ401 bans them on the simulated machine)"
            )

    @abstractmethod
    def send(self, dst: int, payload: Any) -> None:
        """Deliver ``payload`` to ``dst``'s mailbox (non-blocking)."""

    @abstractmethod
    def recv(self, src: int) -> Any:
        """Next payload sent by ``src`` to this rank (per-pair FIFO)."""

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has reached the barrier."""


class ExecutionBackend(ABC):
    """Runs an SPMD program on ``p`` workers and collects the results."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def run(self, fn: WorkerFn, args: Sequence[tuple[Any, ...]]) -> list[Any]:
        """Execute ``fn(comm, *args[rank])`` for each rank.

        ``len(args)`` determines the number of workers ``p``.  Returns the
        per-rank return values ordered by rank.  Raises
        :class:`repro.errors.ParallelError` if any worker fails.
        """


_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator adding a backend to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """The registered real-backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str | ExecutionBackend) -> ExecutionBackend:
    """Resolve a backend by name (or pass an instance through unchanged)."""
    if isinstance(name, ExecutionBackend):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigError(
            f"unknown execution backend {name!r}; choose from "
            f"{backend_names()} (or 'simulated' where the cost model is "
            "accepted)"
        ) from None


def validate_backend(
    name: str | ExecutionBackend, allow_simulated: bool = True
) -> str | ExecutionBackend:
    """Return ``name`` if it names a backend, else raise ConfigError.

    ``"simulated"`` — the cost-model execution inside
    :class:`~repro.parallel.popaq.ParallelOPAQ` — is accepted by default
    because every consumer that takes a ``backend=`` knob also supports it.
    """
    if isinstance(name, ExecutionBackend):
        return name
    if allow_simulated and name == "simulated":
        return name
    get_backend(name)
    return name
