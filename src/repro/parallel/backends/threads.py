"""The thread backend: one OS thread per rank, queue mailboxes.

Python threads share one interpreter, so pure-Python sections serialise on
the GIL — but the hot paths this repo cares about (``numpy.partition``,
stable argsort, array copies) release it, so the thread backend sees real
concurrency exactly where the ``kernel="numpy"`` switch puts the work.
It is also the cheapest way to exercise the concurrent code paths (real
barriers, real mailbox blocking) without process start-up cost.

Failure handling: a worker that raises aborts the shared barrier (so peers
blocked in ``barrier()`` fail fast instead of timing out), every blocking
primitive carries a timeout, and all failures surface as
:class:`~repro.errors.ParallelError` — never a hung join.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Any, Sequence

from repro.errors import ParallelError
from repro.parallel.backends.base import (
    Comm,
    ExecutionBackend,
    WorkerFn,
    register_backend,
)

__all__ = ["ThreadBackend"]


class _ThreadComm(Comm):
    """Per-pair ``queue.Queue`` mailboxes plus a shared barrier."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: dict[tuple[int, int], "queue.Queue[Any]"],
        barrier: threading.Barrier,
        timeout: float,
    ) -> None:
        super().__init__(rank, size)
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._timeout = timeout

    def send(self, dst: int, payload: Any) -> None:
        self._check_peer(dst, "send to")
        self._mailboxes[(self.rank, dst)].put(payload)

    def recv(self, src: int) -> Any:
        self._check_peer(src, "receive from")
        try:
            return self._mailboxes[(src, self.rank)].get(timeout=self._timeout)
        except queue.Empty:
            raise ParallelError(
                f"rank {self.rank} timed out after {self._timeout}s waiting "
                f"for a message from rank {src}"
            ) from None

    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise ParallelError(
                f"barrier broken while rank {self.rank} was waiting: a peer "
                "worker failed or timed out"
            ) from None


@register_backend
class ThreadBackend(ExecutionBackend):
    """One thread per rank (see module docstring).

    Parameters
    ----------
    timeout:
        Seconds any single blocking step (receive, barrier, join) may
        take before the execution is declared failed.  Generous by
        default; it exists to convert scheduling bugs into
        :class:`~repro.errors.ParallelError` instead of hangs.
    """

    name = "thread"

    def __init__(self, timeout: float = 120.0) -> None:
        self.timeout = timeout

    def run(self, fn: WorkerFn, args: Sequence[tuple[Any, ...]]) -> list[Any]:
        if not args:
            raise ParallelError("an SPMD program needs at least one worker")
        p = len(args)
        mailboxes: dict[tuple[int, int], "queue.Queue[Any]"] = {
            (src, dst): queue.Queue()
            for src in range(p)
            for dst in range(p)
            if src != dst
        }
        barrier = threading.Barrier(p)
        outcomes: list[tuple[Any, ...] | None] = [None] * p

        def _target(rank: int) -> None:
            comm = _ThreadComm(rank, p, mailboxes, barrier, self.timeout)
            try:
                outcomes[rank] = ("ok", fn(comm, *args[rank]))
            except BaseException as exc:  # noqa: B036  # opaq: ignore[exception-broad-except] isolation boundary: every worker failure must become a typed outcome
                outcomes[rank] = (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
                # Fail peers fast: anyone blocked in barrier() unblocks now.
                barrier.abort()

        threads = [
            threading.Thread(
                target=_target, args=(rank,), name=f"opaq-spmd-{rank}"
            )
            for rank in range(p)
        ]
        for thread in threads:
            thread.start()
        stuck: list[int] = []
        for rank, thread in enumerate(threads):
            thread.join(timeout=self.timeout)
            if thread.is_alive():
                stuck.append(rank)
                barrier.abort()
        if stuck:
            # The abort above unblocks barrier waiters; give them a moment
            # to record their outcome, then report the hang.
            for rank in stuck:
                threads[rank].join(timeout=1.0)
            still = [r for r in stuck if threads[r].is_alive()]
            if still:
                raise ParallelError(
                    f"worker threads {still} did not finish within "
                    f"{self.timeout}s"
                )
        self._raise_on_error(outcomes)
        return [outcome[1] for outcome in outcomes]  # type: ignore[index]

    @staticmethod
    def _raise_on_error(outcomes: list[tuple[Any, ...] | None]) -> None:
        errors = [
            (rank, o) for rank, o in enumerate(outcomes)
            if o is None or o[0] == "error"
        ]
        if not errors:
            return
        # Prefer the root cause: a worker's own exception, not the
        # knock-on ParallelError timeouts/broken barriers of its peers.
        primary = next(
            (
                (rank, o)
                for rank, o in errors
                if o is not None and o[1] != "ParallelError"
            ),
            errors[0],
        )
        rank, outcome = primary
        if outcome is None:
            raise ParallelError(f"worker rank {rank} produced no result")
        _, etype, message, tb = outcome
        raise ParallelError(
            f"worker rank {rank} raised {etype}: {message}\n{tb}"
        )
