"""Scalability metrics: speed-up, scale-up and size-up (paper Figures 4-6).

Thin, well-defined arithmetic over (configuration -> simulated time) maps:

* **speed-up** (Figure 6): fixed total problem size, time(1)/time(p);
* **scale-up** (Figure 4): fixed per-processor size, time as p grows
  (flat is perfect);
* **size-up** (Figure 5): fixed p, time as the per-processor size grows
  (linear is perfect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["speedup_series", "scaleup_series", "sizeup_series", "ScalingSeries"]


@dataclass(frozen=True)
class ScalingSeries:
    """One curve of a scalability figure."""

    xs: np.ndarray
    values: np.ndarray
    label: str

    def as_rows(self) -> list[tuple[float, float]]:
        return list(zip(self.xs.tolist(), self.values.tolist()))


def speedup_series(times_by_p: dict[int, float], label: str = "speed-up") -> ScalingSeries:
    """``speedup(p) = time(1) / time(p)`` for a fixed total size."""
    if 1 not in times_by_p:
        raise ConfigError("speed-up needs the single-processor time")
    ps = np.array(sorted(times_by_p), dtype=np.int64)
    base = times_by_p[1]
    if base <= 0:
        raise ConfigError("single-processor time must be positive")
    values = np.array([base / times_by_p[int(p)] for p in ps])
    return ScalingSeries(xs=ps.astype(np.float64), values=values, label=label)


def scaleup_series(
    times_by_p: dict[int, float], label: str = "scale-up"
) -> ScalingSeries:
    """Total time versus p at fixed per-processor size (flat = perfect)."""
    ps = np.array(sorted(times_by_p), dtype=np.int64)
    values = np.array([times_by_p[int(p)] for p in ps])
    return ScalingSeries(xs=ps.astype(np.float64), values=values, label=label)


def sizeup_series(
    times_by_size: dict[int, float], label: str = "size-up"
) -> ScalingSeries:
    """Total time versus per-processor size at fixed p (linear = perfect)."""
    sizes = np.array(sorted(times_by_size), dtype=np.int64)
    values = np.array([times_by_size[int(s)] for s in sizes])
    return ScalingSeries(xs=sizes.astype(np.float64), values=values, label=label)
