"""SARIF 2.1.0 output for lint results.

SARIF is the interchange format CI forges ingest natively (GitHub code
scanning, Azure DevOps, VS Code's SARIF viewer): emitting it means the
deep findings land as review annotations instead of a log to grep.  The
emitted document is deliberately minimal but schema-faithful:

- one ``run`` with an ``opaqlint`` driver,
- every registered rule in ``tool.driver.rules`` (so ``ruleIndex`` is
  stable across runs regardless of which rules fired),
- one ``result`` per finding with a single physical location; SARIF
  columns are 1-based while findings carry 0-based AST columns, so the
  reporter shifts by one.

``ruleId`` is the OPQ code (the stable public identifier); the
kebab-case ``rule_id`` becomes the rule's ``name``.
"""

from __future__ import annotations

import json

from repro.analysis.registry import all_rules
from repro.analysis.runner import LintResult

__all__ = ["render_sarif", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_sarif(result: LintResult) -> str:
    """Render one lint run as a SARIF 2.1.0 document."""
    rules = all_rules()
    rule_index = {rule.code: index for index, rule in enumerate(rules)}
    driver = {
        "name": "opaqlint",
        "version": _tool_version(),
        "informationUri": "https://example.invalid/opaqlint",
        "rules": [
            {
                "id": rule.code,
                "name": rule.rule_id,
                "shortDescription": {"text": rule.description or rule.rule_id},
                "help": {"text": rule.paper_ref or rule.description},
            }
            for rule in rules
        ],
    }
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index.get(finding.code, -1),
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _tool_version() -> str:
    from repro import __version__

    return __version__
