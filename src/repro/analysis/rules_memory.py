"""Rule family 2 (OPQ2xx): the memory discipline.

The paper's memory constraint is ``r*s + m <= M`` (section 2.2): at any
instant the algorithm holds one run buffer plus the retained sample lists.
Materialising the whole dataset — reading it all into one array, or
collecting every run of an iterator into a list — satisfies every unit
test on small inputs and silently abandons the claim that makes the
algorithm usable on disk-resident data.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = ["MaterializeRule"]

#: Aggregators that build one array/list out of everything they are fed.
_AGGREGATORS = {
    "np.concatenate",
    "np.hstack",
    "np.vstack",
    "np.stack",
    "numpy.concatenate",
    "numpy.hstack",
    "numpy.vstack",
    "numpy.stack",
    "list",
    "tuple",
}

#: Conventional names of objects that iterate the whole dataset as runs.
_RUN_ITERABLE_NAMES = {
    "runs",
    "reader",
    "run_reader",
    "run_iter",
    "run_iterable",
    "all_runs",
    "partitions",
}


def _is_run_iterable(node: ast.expr) -> bool:
    """A bare run-iterable name, or a ``<x>.runs()`` call."""
    if isinstance(node, ast.Name):
        return node.id in _RUN_ITERABLE_NAMES
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.rsplit(".", 1)[-1] == "runs"
    return False


@register
class MaterializeRule(Rule):
    """No whole-dataset materialisation inside the one-pass code paths."""

    rule_id = "memory-materialize"
    code = "OPQ201"
    description = (
        "whole-dataset materialisation (read_all / concatenating all "
        "runs) in a one-pass code path; memory must stay r*s + m <= M"
    )
    paper_ref = "section 2.2 (memory constraint r*s + m <= M)"
    scope_prefixes = ("core/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if "." in name and name.rsplit(".", 1)[1] == "read_all":
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() reads the entire dataset into memory; "
                    "iterate it as runs through a RunReader instead",
                )
                continue
            if name in _AGGREGATORS and any(
                _is_run_iterable(arg) for arg in node.args
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}(...) collects every run into memory at once; "
                    "process runs one at a time and retain only samples",
                )
