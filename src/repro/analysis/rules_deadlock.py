"""Rule family OPQ75x: global lock-order acyclicity and blocking holds.

The OPQ7xx family proves *which* lock guards each cross-thread field;
this family proves the locks compose: the machine model's SPMD exchange
deadlocks silently when two roles take the same locks in opposite
orders, so the discipline is a **global lock-order graph with no
cycles**.

The graph joins two sources, both semantic rather than syntactic:

- intraprocedural: :class:`~repro.analysis.dataflow.LockTracker`'s
  must-held fact at every ``with <lock>:`` — holding ``A`` while
  acquiring ``B`` adds the edge ``A -> B`` with the acquisition site as
  witness;
- interprocedural: at every call executed with locks held, the callee's
  (transitive) :attr:`~repro.analysis.summaries.FunctionSummary.acquires_locks`
  adds edges through the call — the caller never spells the callee's
  locks, the summary does.

Lock names are qualified by :func:`~repro.analysis.summaries.qualified_lock`
(``self._lock`` in a ``Snapshotter`` method is the node
``Snapshotter._lock``), so two functions naming the same lock object
meet at one node.

OPQ751 reports each elementary cycle once, with a witness site for every
edge.  OPQ752 upgrades OPQ404 from syntactic to semantic: an *unbounded*
blocking call (``get``/``wait``/``join``/``acquire`` with no timeout —
directly, or anywhere in the callee per its summary) made while the
must-held lock set is non-empty can stall every other holder of those
locks forever.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.dataflow import LockTracker, iter_ops_with_facts, lock_names_of
from repro.analysis.framework import Finding, ModuleContext, ProjectRule, dotted_name
from repro.analysis.project import FunctionInfo, ProjectContext
from repro.analysis.registry import register
from repro.analysis.summaries import (
    SummaryIndex,
    qualified_lock,
    unbounded_blocking_attr,
)

__all__ = [
    "LockSite",
    "LockOrderGraph",
    "build_lock_order_graph",
    "LockOrderCycleRule",
    "BlockingWhileHoldingRule",
]

_SCOPE = ("service/", "parallel/")


@dataclass(frozen=True)
class LockSite:
    """One witness for a lock-order edge."""

    fn_qualname: str
    path: str
    line: int
    detail: str  # "acquired directly" | "via call to <callee>"


@dataclass
class LockOrderGraph:
    """Directed lock-order graph: edge ``A -> B`` = B acquired under A."""

    #: ``(held, acquired) -> witness sites`` in discovery order.
    edges: dict[tuple[str, str], list[LockSite]] = field(default_factory=dict)

    def add(self, held: str, acquired: str, site: LockSite) -> None:
        if held == acquired:
            # Re-acquisition of the held lock is reentrancy, not order;
            # the OPQ7xx family owns that judgement.
            return
        self.edges.setdefault((held, acquired), []).append(site)

    def nodes(self) -> set[str]:
        return {name for edge in self.edges for name in edge}

    def successors(self, node: str) -> list[str]:
        return sorted(b for (a, b) in self.edges if a == node)

    def cycles(self) -> list[tuple[str, ...]]:
        """Every elementary cycle, canonicalised and sorted.

        The graph is tiny (one node per lock object in the project), so
        a DFS with an explicit path stack is plenty; each cycle is
        rotated to start at its smallest node so the same cycle found
        from two entry points reports once.
        """
        found: set[tuple[str, ...]] = set()

        def walk(node: str, path: list[str], on_path: set[str]) -> None:
            for succ in self.successors(node):
                if succ in on_path:
                    cycle = tuple(path[path.index(succ) :])
                    pivot = cycle.index(min(cycle))
                    found.add(cycle[pivot:] + cycle[:pivot])
                    continue
                path.append(succ)
                on_path.add(succ)
                walk(succ, path, on_path)
                on_path.discard(succ)
                path.pop()

        for start in sorted(self.nodes()):
            walk(start, [start], {start})
        return sorted(found)

    def witness(self, held: str, acquired: str) -> LockSite:
        """The first-discovered site of one edge (for cycle reports)."""
        return self.edges[(held, acquired)][0]


def _held_qualified(fact: frozenset[str], fn: FunctionInfo) -> list[str]:
    return sorted(qualified_lock(name, fn) for name in fact)


def build_lock_order_graph(
    project: ProjectContext,
    in_scope: Callable[[ModuleContext], bool] | None = None,
) -> LockOrderGraph:
    """The global lock-order graph over (scoped) project functions."""
    graph = LockOrderGraph()
    index = project.summaries()
    for fn in project.iter_functions():
        if in_scope is not None and not in_scope(fn.module):
            continue
        cfg = project.cfg(fn)
        for op, fact in iter_ops_with_facts(cfg, LockTracker()):
            held = _held_qualified(fact, fn)
            if op.kind == "with-enter" and isinstance(
                op.node, (ast.With, ast.AsyncWith)
            ):
                acquired = [
                    qualified_lock(name, fn) for name in lock_names_of(op.node)
                ]
                site = LockSite(
                    fn_qualname=fn.qualname,
                    path=str(fn.module.path),
                    line=op.node.lineno,
                    detail="acquired directly",
                )
                for h in held:
                    for a in acquired:
                        graph.add(h, a, site)
                # One `with a, b:` acquires left-to-right: a -> b.
                for i, first in enumerate(acquired):
                    for second in acquired[i + 1 :]:
                        graph.add(first, second, site)
            if not held:
                continue
            for root in op.expr_roots():
                for sub in ast.walk(root):
                    if not isinstance(sub, ast.Call):
                        continue
                    callee = dotted_name(sub.func)
                    if callee is None:
                        continue
                    for candidate in index.resolve(fn, callee):
                        summary = index.summary_of(candidate)
                        site = LockSite(
                            fn_qualname=fn.qualname,
                            path=str(fn.module.path),
                            line=sub.lineno,
                            detail=f"via call to {callee} "
                            f"({candidate.qualname})",
                        )
                        for h in held:
                            for a in sorted(summary.acquires_locks):
                                graph.add(h, a, site)
    return graph


class _DeadlockRule(ProjectRule):
    scope_prefixes = _SCOPE


@register
class LockOrderCycleRule(_DeadlockRule):
    """A cycle in the global lock-order graph (OPQ751)."""

    rule_id = "lock-order-cycle"
    code = "OPQ751"
    description = (
        "two execution paths acquire the same locks in opposite orders "
        "(judged over must-held dataflow facts joined with callee "
        "summaries); a cycle in the lock-order graph is a potential "
        "deadlock"
    )
    paper_ref = "section 5 (SPMD exchange deadlocks are silent)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = build_lock_order_graph(project, self.in_scope)
        for cycle in graph.cycles():
            closed = cycle + (cycle[0],)
            witnesses = [
                graph.witness(closed[i], closed[i + 1])
                for i in range(len(cycle))
            ]
            order = " -> ".join(closed)
            paths = "; ".join(
                f"{closed[i]} -> {closed[i + 1]} at "
                f"{w.path}:{w.line} in {w.fn_qualname} ({w.detail})"
                for i, w in enumerate(witnesses)
            )
            anchor = witnesses[0]
            yield Finding(
                rule_id=self.rule_id,
                code=self.code,
                path=anchor.path,
                line=anchor.line,
                col=0,
                message=(
                    f"lock-order cycle {order}: {paths} — two threads "
                    "interleaving these paths deadlock; pick one global "
                    "order and acquire in it everywhere"
                ),
            )


@register
class BlockingWhileHoldingRule(_DeadlockRule):
    """An unbounded blocking call under a held lock (OPQ752)."""

    rule_id = "blocking-while-holding-lock"
    code = "OPQ752"
    description = (
        "an unbounded blocking call (get/wait/join/acquire with no "
        "timeout, directly or through a callee per its summary) executes "
        "while a lock is provably held; every other thread needing that "
        "lock can stall forever"
    )
    paper_ref = "section 5 (SPMD exchange deadlocks are silent)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.summaries()
        for fn in project.iter_functions():
            if not self.in_scope(fn.module):
                continue
            cfg = project.cfg(fn)
            for op, fact in iter_ops_with_facts(cfg, LockTracker()):
                if not fact:
                    continue
                held = ", ".join(_held_qualified(fact, fn))
                lock_exprs = (
                    set(lock_names_of(op.node))
                    if op.kind == "with-enter"
                    and isinstance(op.node, (ast.With, ast.AsyncWith))
                    else set()
                )
                for root in op.expr_roots():
                    for sub in ast.walk(root):
                        if not isinstance(sub, ast.Call):
                            continue
                        yield from self._judge_call(
                            index, fn, sub, held, lock_exprs
                        )

    def _judge_call(
        self,
        index: SummaryIndex,
        fn: FunctionInfo,
        call: ast.Call,
        held: str,
        lock_exprs: set[str],
    ) -> Iterator[Finding]:
        attr = unbounded_blocking_attr(call)
        callee = dotted_name(call.func)
        if attr is not None:
            receiver = (callee or attr).rsplit(".", 1)[0]
            # A nested lock acquisition is an *ordering* event; OPQ751
            # judges it against the global graph instead.
            if receiver not in lock_exprs:
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"unbounded {callee or attr}() while holding "
                        f"{held} in {fn.qualname}: the call can block "
                        "forever with the lock held — pass a timeout or "
                        "move it outside the critical section"
                    ),
                )
            return
        if callee is None:
            return
        for candidate in index.resolve(fn, callee):
            blocking = sorted(index.summary_of(candidate).blocking_calls)
            if blocking:
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"call to {callee} while holding {held} in "
                        f"{fn.qualname} reaches an unbounded blocking "
                        f"call ({blocking[0]}); the lock stays held for "
                        "as long as it blocks — pass a timeout or move "
                        "the call outside the critical section"
                    ),
                )
                return
