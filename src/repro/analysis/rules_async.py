"""Rule family 77x (OPQ77x): asyncio-aware concurrency discipline.

PR 7 moved the serving hot path onto an asyncio server
(``service/aio.py``); the thread family (OPQ70x) cannot see its two
failure modes, because neither involves a second thread:

* **A blocked event loop.**  One coroutine calling into synchronous code
  that sleeps, does file I/O, or takes a contended lock stalls *every*
  connection, not just its own — the loop cannot run other tasks until
  the call returns.  ``docs/service.md`` promises the loop only ever
  executes lock-free snapshot reads inline; everything else crosses to a
  worker thread via ``asyncio.wait_for(run_in_executor(...))``.
* **A lock held across a suspension.**  ``await`` hands control to the
  loop, which may run arbitrary other tasks; a ``threading.Lock`` still
  held at that point blocks any of them (or any real thread) that
  contends for it — and unlike a plain critical section, the hold time
  is unbounded because it spans foreign work.

The model mirrors the thread family's shape, with coroutines as the
seed:

1. **Coroutine roles.**  Every ``async def`` (and every sync function it
   calls directly — not through a stored callback or a lambda) runs in
   the ``event-loop`` role.  ``threading.Thread(target=...)`` targets
   and callables handed to ``asyncio.to_thread``/``run_in_executor`` —
   directly or through a callee whose summary *offloads* the parameter,
   like ``AsyncServiceServer._blocking`` — run in the ``thread`` role.
   The offload boundary is exactly where a call chain stops being the
   loop's problem.
2. **Judgement.**  OPQ771 flags calls a coroutine makes into blocking
   synchronous code; OPQ772 runs the sync-lock must-analysis over the
   new suspension-point ops; OPQ773 catches the classic dropped
   coroutine object; OPQ774 is the asyncio half of OPQ701 — state
   written by both roles needs a loop-safe handoff.

Call resolution here carries a precision bit: receivers whose type is
known (``self.m``, ``self.f.m`` with a recorded field type, annotated
parameters) resolve *precisely* — an empty result then means "external
code, out of judgement".  Unknown receivers fall back to every scoped
method with the bare name, and a finding is only issued when **all**
such candidates agree it would block — the conservative-may bias of the
thread rules would drown this family in false positives (every
``writer.close()`` resolving to every ``close`` in the service).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow import ThreadLockTracker, iter_ops_with_facts
from repro.analysis.framework import Finding, ProjectRule, dotted_name
from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ProjectContext,
    annotation_type,
)
from repro.analysis.registry import register
from repro.analysis.rules_threads import (
    _CONSTRUCTION_METHODS,
    _HANDLER_BASES,
    ClassThreadModel,
    FieldAccess,
    _accesses_of_op,
    _thread_target,
)
from repro.analysis.summaries import offload_callable, param_names

__all__ = [
    "AsyncModel",
    "build_async_model",
    "BlockingCallInCoroutineRule",
    "LockAcrossAwaitRule",
    "UnawaitedCoroutineRule",
    "CrossRoleWriteRule",
    "ROLE_EVENT_LOOP",
    "ROLE_THREAD",
]

#: Code reached from a coroutine without crossing an offload boundary.
ROLE_EVENT_LOOP = "event-loop"
#: Code reached from a thread target or an offloaded callable.
ROLE_THREAD = "thread"

#: Dotted names that block the calling thread outright.
_SLEEP_CALLS = {"time.sleep"}


def _is_coroutine_fn(fn: FunctionInfo) -> bool:
    return isinstance(fn.node, ast.AsyncFunctionDef)


def _direct_call_ids(fn: FunctionInfo) -> set[int]:
    """ids of call nodes executed *by this function's own body*.

    Calls inside a nested ``def`` or a ``lambda`` are excluded: defining
    a callback does not run it, and the loop-role judgement must not
    charge the loop for work that executes elsewhere (the lambdas handed
    to ``self._blocking`` run on the executor).
    """
    nested: set[int] = set()
    for node in ast.walk(fn.node):
        if node is fn.node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    nested.add(id(sub))
    return {id(site.node) for site in fn.calls} - nested


def _awaited_call_ids(fn: FunctionInfo) -> set[int]:
    """ids of call nodes that are the direct operand of an ``await``."""
    return {
        id(node.value)
        for node in ast.walk(fn.node)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    }


class _Resolver:
    """Scoped call resolution with a precision verdict.

    ``resolve`` returns ``(candidates, precise)``.  ``precise`` means the
    receiver's type was known (own class, recorded field type, annotated
    parameter) — an empty candidate list is then a *positive* statement
    that the target lives outside the analysed scope.  Imprecise results
    are bare-name guesses over every scoped method; callers must demand
    unanimity before judging on them.
    """

    def __init__(self, project: ProjectContext, classes: list[ClassInfo]) -> None:
        self.project = project
        self.by_class: dict[str, ClassInfo] = {c.name: c for c in classes}
        self.scoped_methods: dict[str, list[FunctionInfo]] = {}
        self.scoped_functions: dict[str, list[FunctionInfo]] = {}
        scoped_modules = {id(c.module) for c in classes}
        for cls in classes:
            for name, method in cls.methods.items():
                self.scoped_methods.setdefault(name, []).append(method)
        for fn in project.functions:
            if id(fn.module) in scoped_modules:
                self.scoped_functions.setdefault(fn.name, []).append(fn)

    def resolve(
        self, caller: FunctionInfo, name: str
    ) -> tuple[list[FunctionInfo], bool]:
        parts = name.split(".")
        if len(parts) == 1:
            return list(self.scoped_functions.get(parts[0], [])), True
        attr = parts[-1]
        if parts[0] == "self" and caller.class_name is not None:
            cls = self.by_class.get(caller.class_name)
            if cls is not None:
                if len(parts) == 2:
                    method = cls.methods.get(attr)
                    return ([method] if method is not None else []), True
                if len(parts) == 3:
                    declared = cls.field_types.get(parts[1])
                    if declared is not None:
                        return self._methods_of_type(declared, attr), True
        if len(parts) == 2:
            declared = self._param_annotation(caller, parts[0])
            if declared is not None:
                return self._methods_of_type(declared, attr), True
        return list(self.scoped_methods.get(attr, [])), False

    def _methods_of_type(self, declared: str, attr: str) -> list[FunctionInfo]:
        cls = self.by_class.get(declared.rsplit(".", 1)[-1])
        if cls is None:
            return []
        method = cls.methods.get(attr)
        return [method] if method is not None else []

    @staticmethod
    def _param_annotation(caller: FunctionInfo, name: str) -> str | None:
        args = caller.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return annotation_type(arg.annotation)
        return None


@dataclass(eq=False)
class AsyncModel:
    """The project's derived coroutine/thread role model."""

    #: class name -> per-class model (roles are async roles here:
    #: subsets of {event-loop, thread}, possibly empty for code neither
    #: side reaches).
    classes: dict[str, ClassThreadModel] = field(default_factory=dict)
    #: every scoped coroutine definition.
    coroutines: list[FunctionInfo] = field(default_factory=list)
    #: function -> async roles (identity-keyed via FunctionInfo).
    roles: dict[FunctionInfo, frozenset[str]] = field(default_factory=dict)

    def roles_of(self, fn: FunctionInfo) -> frozenset[str]:
        return self.roles.get(fn, frozenset())


class _AsyncRoleInference:
    """Seeds and propagates event-loop/thread roles over call edges."""

    def __init__(
        self,
        project: ProjectContext,
        classes: list[ClassInfo],
        resolver: _Resolver,
    ) -> None:
        self.project = project
        self.classes = classes
        self.resolver = resolver
        self.roles: dict[FunctionInfo, set[str]] = {}
        scoped_modules = {id(c.module) for c in classes}
        self.scoped_fns: list[FunctionInfo] = [
            fn
            for fn in project.iter_functions()
            if id(fn.module) in scoped_modules
        ]

    def infer(self) -> None:
        summaries = self.project.summaries()
        worklist: list[tuple[FunctionInfo, str]] = []

        def seed(fn: FunctionInfo, role: str) -> None:
            if role not in self.roles.setdefault(fn, set()):
                self.roles[fn].add(role)
                worklist.append((fn, role))

        for fn in self.scoped_fns:
            if _is_coroutine_fn(fn):
                seed(fn, ROLE_EVENT_LOOP)
            for site in fn.calls:
                target = _thread_target(site.node)
                if target is not None:
                    self._seed_callable(fn, target, seed)
                for expr in self._offloaded_args(fn, site, summaries):
                    self._seed_callable(fn, expr, seed)

        while worklist:
            fn, role = worklist.pop()
            sites = (
                _direct_call_ids(fn)
                if role == ROLE_EVENT_LOOP
                else {id(site.node) for site in fn.calls}
            )
            for site in fn.calls:
                if id(site.node) not in sites:
                    continue
                for callee in self.resolver.resolve(fn, site.callee)[0]:
                    if callee.name in _CONSTRUCTION_METHODS:
                        continue
                    seed(callee, role)

    def _offloaded_args(self, fn, site, summaries) -> list[ast.expr]:
        """Argument expressions of ``site`` that will run on a thread."""
        direct = offload_callable(site.node)
        out = [direct] if direct is not None else []
        for candidate in summaries.resolve(fn, site.callee):
            offloads = summaries.summary_of(candidate).offloads_params
            if not offloads:
                continue
            params = param_names(candidate)
            for index, arg in enumerate(site.node.args):
                if index < len(params) and params[index] in offloads:
                    out.append(arg)
            for kw in site.node.keywords:
                if kw.arg in offloads:
                    out.append(kw.value)
        return out

    def _seed_callable(self, fn, expr, seed) -> None:
        """Give ``expr`` (a callable reference or lambda) the thread role."""
        if isinstance(expr, ast.Lambda):
            for sub in ast.walk(expr.body):
                if isinstance(sub, ast.Call):
                    callee = dotted_name(sub.func)
                    if callee is None:
                        continue
                    for target in self.resolver.resolve(fn, callee)[0]:
                        if target.name not in _CONSTRUCTION_METHODS:
                            seed(target, ROLE_THREAD)
            return
        name = dotted_name(expr)
        if name is None:
            return
        for target in self.resolver.resolve(fn, name)[0]:
            if target.name not in _CONSTRUCTION_METHODS:
                seed(target, ROLE_THREAD)


def build_async_model(
    project: ProjectContext, classes: list[ClassInfo] | None = None
) -> AsyncModel:
    """Derive coroutine roles and per-class field accesses for ``classes``."""
    chosen = list(project.classes) if classes is None else classes
    resolver = _Resolver(project, chosen)
    inference = _AsyncRoleInference(project, chosen, resolver)
    inference.infer()
    model = AsyncModel()
    for fn in inference.scoped_fns:
        model.roles[fn] = frozenset(inference.roles.get(fn, set()))
        if _is_coroutine_fn(fn):
            model.coroutines.append(fn)
    for cls in chosen:
        cls_model = ClassThreadModel(info=cls)
        cls_model.per_thread_instances = bool(
            cls.base_names() & _HANDLER_BASES
        )
        for name, method in cls.methods.items():
            roles = model.roles.get(method, frozenset())
            cls_model.roles[name] = roles
            if name in _CONSTRUCTION_METHODS:
                continue
            cfg = project.cfg(method)
            for op, locks in iter_ops_with_facts(cfg, ThreadLockTracker()):
                for access in _accesses_of_op(op):
                    field_name, kind, rmw, node = access
                    cls_model.accesses.setdefault(field_name, []).append(
                        FieldAccess(
                            field=field_name,
                            kind=kind,
                            rmw=rmw,
                            node=node,
                            method=name,
                            roles=roles,
                            locks=locks,
                        )
                    )
        model.classes[cls.name] = cls_model
    return model


def _scoped_items(
    rule: ProjectRule, project: ProjectContext
) -> tuple[list[ClassInfo], list[FunctionInfo], _Resolver]:
    classes = [c for c in project.classes if rule.in_scope(c.module)]
    scoped_modules = {id(c.module) for c in classes}
    functions = [
        fn
        for fn in project.iter_functions()
        if id(fn.module) in scoped_modules
    ]
    return classes, functions, _Resolver(project, classes)


def blocking_reasons(
    project: ProjectContext,
    resolver: _Resolver,
    fn: FunctionInfo,
) -> Iterator[tuple[ast.Call, str]]:
    """(call, why) for each way coroutine ``fn`` can block the loop.

    Shared between OPQ771 and the async-model test suite, so "the event
    loop never blocks" can be asserted as a derived fact.
    """
    summaries = project.summaries()
    direct = _direct_call_ids(fn)
    awaited = _awaited_call_ids(fn)
    for site in fn.calls:
        call = site.node
        if id(call) not in direct or id(call) in awaited:
            continue
        if site.callee in _SLEEP_CALLS:
            yield call, (
                f"{site.callee}() parks the event loop for its full "
                "duration; use await asyncio.sleep()"
            )
            continue
        if site.callee == "open":
            yield call, (
                "synchronous file I/O on the event loop; run it in a "
                "worker via run_in_executor"
            )
            continue
        shape = _blocking_shape(call)
        if shape is not None:
            yield call, shape
            continue
        candidates, precise = resolver.resolve(fn, site.callee)
        if any(_is_coroutine_fn(c) for c in candidates):
            # A coroutine candidate means this un-awaited call is (at
            # least possibly) constructing a coroutine object — OPQ773's
            # department, and constructing one never blocks.
            continue
        hazards = [
            (c, summaries.summary_of(c))
            for c in candidates
            if summaries.summary_of(c).blocking_calls
            or summaries.summary_of(c).acquires_locks
        ]
        if not hazards:
            continue
        if not precise and len(hazards) < len(candidates):
            # Bare-name guess without unanimity: stay silent rather
            # than charge the loop for a callee it may never run.
            continue
        target, summary = hazards[0]
        if summary.blocking_calls:
            detail = (
                "can block without bound "
                f"({sorted(summary.blocking_calls)[0]})"
            )
        else:
            locks = ", ".join(sorted(summary.acquires_locks))
            detail = f"may acquire lock(s) {locks}"
        yield call, (
            f"call into synchronous {target.qualname} {detail}; "
            "offload it (await asyncio.to_thread/run_in_executor) "
            "or keep the loop-side path lock-free"
        )


def _blocking_shape(call: ast.Call) -> str | None:
    """Why a bare ``get``/``wait``/``join``/``acquire`` blocks the loop."""
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ("get", "wait", "join", "acquire")
        and not call.args
    ):
        return None
    name = dotted_name(call.func) or call.func.attr
    if any(kw.arg == "timeout" for kw in call.keywords):
        return (
            f"{name}(timeout=...) still parks the event loop until the "
            "timeout; use the asyncio primitive or offload the call"
        )
    return (
        f"{name}() blocks the event loop (and with it every connection) "
        "until the peer acts; use the asyncio primitive or offload"
    )


@register
class BlockingCallInCoroutineRule(ProjectRule):
    """Coroutines must not call into blocking synchronous code."""

    rule_id = "async-blocking-call"
    code = "OPQ771"
    description = (
        "a coroutine calls blocking synchronous code (sleep, file I/O, "
        "bare blocking primitive, or a callee whose summary blocks or "
        "takes locks) inline; one stalled task wedges every connection"
    )
    paper_ref = "docs/service.md (the event loop never blocks)"
    scope_prefixes = ("service/",)
    # Summaries absorb effects through project-wide call edges, so any
    # file can change this rule's verdicts.
    deep_dependencies = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes, functions, resolver = _scoped_items(self, project)
        for fn in functions:
            if not _is_coroutine_fn(fn):
                continue
            for call, why in blocking_reasons(project, resolver, fn):
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=call.lineno,
                    col=call.col_offset,
                    message=f"in coroutine {fn.qualname}: {why}",
                )


@register
class LockAcrossAwaitRule(ProjectRule):
    """No ``threading.Lock`` may be held across a suspension point."""

    rule_id = "async-lock-across-await"
    code = "OPQ772"
    description = (
        "a threading lock is held across an await/async-for/async-with "
        "suspension; the loop may run arbitrary tasks (or block a real "
        "thread) while the lock is pinned"
    )
    paper_ref = "docs/service.md (no lock spans a suspension)"
    scope_prefixes = ("service/",)
    # Purely per-function: the CFG and the lock facts never leave the
    # file being judged.
    deep_dependencies = "scope"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes, functions, _ = _scoped_items(self, project)
        for fn in functions:
            if not _is_coroutine_fn(fn):
                continue
            seen: set[tuple[int, frozenset[str]]] = set()
            cfg = project.cfg(fn)
            for op, held in iter_ops_with_facts(cfg, ThreadLockTracker()):
                if not (op.suspends and held):
                    continue
                line = getattr(op.node, "lineno", fn.node.lineno)
                key = (line, held)
                if key in seen:
                    continue
                seen.add(key)
                locks = ", ".join(sorted(held))
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=line,
                    col=getattr(op.node, "col_offset", 0),
                    message=(
                        f"coroutine {fn.qualname} holds threading "
                        f"lock(s) {locks} across a suspension point; "
                        "release before awaiting, or use asyncio.Lock"
                    ),
                )


@register
class UnawaitedCoroutineRule(ProjectRule):
    """A coroutine call whose result is discarded never runs."""

    rule_id = "async-unawaited-coroutine"
    code = "OPQ773"
    description = (
        "a call that resolves only to coroutine functions is used as a "
        "bare statement; the coroutine object is discarded unawaited "
        "and its body never executes"
    )
    paper_ref = "asyncio contract (coroutines run only when awaited)"
    scope_prefixes = ("service/",)
    # Resolution is restricted to scoped classes/functions, and the
    # coroutine kind of a scoped function is a fact of its own file.
    deep_dependencies = "scope"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes, functions, resolver = _scoped_items(self, project)
        for fn in functions:
            direct = _direct_call_ids(fn)
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and id(node.value) in direct
                ):
                    continue
                callee = dotted_name(node.value.func)
                if callee is None:
                    continue
                candidates, _ = resolver.resolve(fn, callee)
                if not candidates or not all(
                    _is_coroutine_fn(c) for c in candidates
                ):
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=node.value.lineno,
                    col=node.value.col_offset,
                    message=(
                        f"{callee}() is a coroutine but the call is "
                        "neither awaited nor scheduled; the coroutine "
                        "object is discarded — await it or wrap it in "
                        "asyncio.create_task()"
                    ),
                )


@register
class CrossRoleWriteRule(ProjectRule):
    """Loop-side state shared with threads needs a loop-safe handoff."""

    rule_id = "async-cross-role-write"
    code = "OPQ774"
    description = (
        "a field is written by event-loop-role code and by thread-role "
        "code without a common lock or thread-safe container; the loop "
        "reads torn state unless writes cross via call_soon_threadsafe "
        "or a shared guard"
    )
    paper_ref = "docs/service.md (loop-confined vs offloaded state)"
    scope_prefixes = ("service/",)
    # Role seeds flow through offload summaries, which are project-wide.
    deep_dependencies = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes = [c for c in project.classes if self.in_scope(c.module)]
        model = build_async_model(project, classes)
        for cls_model in model.classes.values():
            if cls_model.per_thread_instances:
                continue
            yield from self._check_class(cls_model)

    def _check_class(self, cls_model: ClassThreadModel) -> Iterator[Finding]:
        cls = cls_model.info
        for field_name in sorted(cls_model.accesses):
            if cls_model.field_is_thread_safe(field_name):
                continue
            writes = cls_model.writes(field_name)
            loop_writes = [w for w in writes if ROLE_EVENT_LOOP in w.roles]
            thread_writes = [w for w in writes if ROLE_THREAD in w.roles]
            # Demand two distinct writing methods: a single method seen
            # from both roles (a thread hosting its own event loop) is
            # one execution context, not a race.
            if not loop_writes or not thread_writes:
                continue
            if not (
                {w.method for w in loop_writes}
                - {w.method for w in thread_writes}
            ) and not (
                {w.method for w in thread_writes}
                - {w.method for w in loop_writes}
            ):
                continue
            guard = cls_model.guard_of(field_name)
            for access in writes:
                if guard is not None and guard in access.locks:
                    continue
                if guard is None:
                    detail = "and no common lock guards it"
                else:
                    detail = (
                        f"without holding {guard}, which guards it "
                        "elsewhere"
                    )
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(cls.module.path),
                    line=getattr(access.node, "lineno", cls.node.lineno),
                    col=getattr(access.node, "col_offset", 0),
                    message=(
                        f"{cls.name}.{field_name} is written from both "
                        "the event-loop and thread roles; this write in "
                        f"{access.method}() lands {detail} — hand it "
                        "across with loop.call_soon_threadsafe or guard "
                        "both sides"
                    ),
                )
