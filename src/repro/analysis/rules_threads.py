"""Rule family 7 (OPQ7xx): lock discipline across thread roles.

The serving subsystem's concurrency story rests on three invariants that
``docs/service.md`` states in prose: each shard worker thread *sole-owns*
its ``IncrementalOPAQ``, the served snapshot reference is swapped only
under the swap lock, and readers are lock-free because every shared slot
is either sole-owned or published by a locked writer.  PR 1's OPQ602
could only pattern-match "assignment to an attribute literally named
``_snapshot`` outside a ``with``"; this family *derives* the invariants:

1. **Thread roles.**  ``threading.Thread(target=self._loop)`` makes
   ``_loop`` (and everything it reaches through the project call graph) a
   worker role; every method of a ``BaseHTTPRequestHandler`` subclass
   (and everything *it* reaches — ``self.service.ingest`` crosses modules)
   runs in the concurrent ``http-handler`` role; public methods carry the
   ambient ``main`` role of whatever thread embeds the library.
2. **Guard inference.**  A must-dataflow over each function's CFG tracks
   which lock names are held at every op, so the family learns which
   ``with self._lock:`` blocks dominate which ``self._*`` accesses — no
   attribute-name allowlist.
3. **Judgement.**  A field written from two or more roles must have every
   write dominated by the inferred guard (OPQ701).  A read-modify-write
   from a concurrent role needs a lock even when it is the only writer,
   because the role races with itself (OPQ702).  Reads stay lock-free —
   that is the documented design, sound for CPython reference reads when
   the writes are disciplined.

:func:`build_thread_model` exposes the derived facts (roles per method,
accesses per field, inferred guards); ``tests/analysis`` asserts the
documented ``repro.service`` invariants *as those facts*.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.cfg import Op
from repro.analysis.dataflow import LockTracker, iter_ops_with_facts
from repro.analysis.framework import Finding, ProjectRule, dotted_name
from repro.analysis.project import ClassInfo, FunctionInfo, ProjectContext
from repro.analysis.registry import register

__all__ = [
    "FieldAccess",
    "ClassThreadModel",
    "ThreadModel",
    "build_thread_model",
    "UnguardedSharedWriteRule",
    "ConcurrentReadModifyWriteRule",
    "ROLE_MAIN",
    "ROLE_HTTP_HANDLER",
]

#: The ambient role: whatever thread the embedding application calls
#: public methods from.
ROLE_MAIN = "main"
#: The thread-per-request role of ``ThreadingHTTPServer`` handlers —
#: concurrent with itself by construction.
ROLE_HTTP_HANDLER = "http-handler"

#: Base-class name suffixes that mark a class as an HTTP handler.
_HANDLER_BASES = {
    "BaseHTTPRequestHandler",
    "SimpleHTTPRequestHandler",
    "StreamRequestHandler",
    "BaseRequestHandler",
}

#: Constructors whose instances synchronise internally; method calls on
#: such fields are not races.
_THREAD_SAFE_CTORS = {
    "Queue",
    "LifoQueue",
    "PriorityQueue",
    "SimpleQueue",
    "JoinableQueue",
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "local",
    "deque",
}

#: Method names that mutate their receiver in place; calling one on a
#: shared non-thread-safe field is a write to that field's object.
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "update",
    "setdefault",
    "sort",
    "reverse",
    "write",
}

#: Methods whose ``self.<field>`` writes are construction, not sharing.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__"}


@dataclass(frozen=True)
class FieldAccess:
    """One access of ``self.<field>`` with the facts holding there."""

    field: str
    kind: str  # "write" | "mutate" | "read"
    rmw: bool  # read-modify-write (augmented assignment)
    node: ast.AST
    method: str
    roles: frozenset[str]
    locks: frozenset[str]

    @property
    def is_write(self) -> bool:
        return self.kind in ("write", "mutate")


@dataclass(eq=False)
class ClassThreadModel:
    """Derived concurrency facts of one class."""

    info: ClassInfo
    #: method name -> roles that may execute it.
    roles: dict[str, frozenset[str]] = field(default_factory=dict)
    #: roles that run on more than one thread at once.
    concurrent_roles: set[str] = field(default_factory=set)
    #: field -> accesses outside construction methods.
    accesses: dict[str, list[FieldAccess]] = field(default_factory=dict)
    #: True for classes instantiated once per thread (request handlers):
    #: their ``self`` state is thread-confined, so intra-instance field
    #: accesses cannot race — only what their methods reach on *shared*
    #: objects (the service, the snapshotter) is judged.
    per_thread_instances: bool = False

    def writes(self, field_name: str) -> list[FieldAccess]:
        return [a for a in self.accesses.get(field_name, []) if a.is_write]

    def writing_roles(self, field_name: str) -> frozenset[str]:
        roles: set[str] = set()
        for access in self.writes(field_name):
            roles |= access.roles
        return frozenset(roles)

    def guard_of(self, field_name: str) -> str | None:
        """The lock most often held across this field's accesses, if any."""
        counts: Counter[str] = Counter()
        for access in self.accesses.get(field_name, []):
            counts.update(access.locks)
        if not counts:
            return None
        best = max(counts.items(), key=lambda item: (item[1], item[0]))
        return best[0]

    def field_is_thread_safe(self, field_name: str) -> bool:
        ctor = self.info.field_types.get(field_name)
        return (
            ctor is not None
            and ctor.rsplit(".", 1)[-1] in _THREAD_SAFE_CTORS
        )


@dataclass(eq=False)
class ThreadModel:
    """The project's derived thread/lock model, class by class."""

    classes: dict[str, ClassThreadModel] = field(default_factory=dict)

    def for_class(self, name: str) -> ClassThreadModel | None:
        return self.classes.get(name)


def _thread_target(call: ast.Call) -> ast.expr | None:
    """The ``target=`` expression of a ``threading.Thread(...)`` call."""
    callee = dotted_name(call.func)
    if callee is None or callee.rsplit(".", 1)[-1] != "Thread":
        return None
    for keyword in call.keywords:
        if keyword.arg == "target":
            return keyword.value
    return None


def _call_inside_loop(fn: FunctionInfo, call: ast.Call) -> bool:
    """True when ``call`` sits inside a loop body of ``fn``."""
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            if any(sub is call for sub in ast.walk(node)):
                return True
    return False


class _RoleInference:
    """Seeds and propagates thread roles across the project call graph."""

    def __init__(self, project: ProjectContext, classes: list[ClassInfo]) -> None:
        self.project = project
        self.classes = classes
        self.scoped_methods: dict[str, list[FunctionInfo]] = {}
        self.scoped_functions: dict[str, list[FunctionInfo]] = {}
        self.by_class: dict[str, ClassInfo] = {c.name: c for c in classes}
        scoped_modules = {id(c.module) for c in classes}
        for cls in classes:
            for name, method in cls.methods.items():
                self.scoped_methods.setdefault(name, []).append(method)
        for fn in project.functions:
            if id(fn.module) in scoped_modules:
                self.scoped_functions.setdefault(fn.name, []).append(fn)
        self.roles: dict[FunctionInfo, set[str]] = {}
        self.concurrent: set[str] = set()

    def infer(self) -> None:
        worklist: list[tuple[FunctionInfo, str]] = []

        def seed(fn: FunctionInfo, role: str) -> None:
            if role not in self.roles.setdefault(fn, set()):
                self.roles[fn].add(role)
                worklist.append((fn, role))

        # Worker roles: Thread(target=...) constructions.
        for cls in self.classes:
            for method in cls.methods.values():
                for site in method.calls:
                    target = _thread_target(site.node)
                    if target is None:
                        continue
                    role = None
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in cls.methods
                    ):
                        role = f"worker:{cls.name}.{target.attr}"
                        seed(cls.methods[target.attr], role)
                    elif isinstance(target, ast.Name):
                        for fn in self.scoped_functions.get(target.id, []):
                            role = f"worker:{target.id}"
                            seed(fn, role)
                    if role is not None and _call_inside_loop(method, site.node):
                        # A thread spawned per loop iteration runs many
                        # instances of the same role at once.
                        self.concurrent.add(role)

        # HTTP handler roles: thread-per-request, concurrent with itself.
        self.concurrent.add(ROLE_HTTP_HANDLER)
        for cls in self.classes:
            if cls.base_names() & _HANDLER_BASES:
                for method in cls.methods.values():
                    if method.name not in _CONSTRUCTION_METHODS:
                        seed(method, ROLE_HTTP_HANDLER)

        # Ambient role: public entry points run on the embedder's thread.
        for cls in self.classes:
            for method in cls.methods.values():
                if method.name in _CONSTRUCTION_METHODS:
                    continue
                if not method.name.startswith("_") or (
                    method.name.startswith("__") and method.name.endswith("__")
                ):
                    seed(method, ROLE_MAIN)
        for fns in self.scoped_functions.values():
            for fn in fns:
                if not fn.name.startswith("_"):
                    seed(fn, ROLE_MAIN)

        # Propagate every role along call edges to a fixpoint.
        while worklist:
            fn, role = worklist.pop()
            for site in fn.calls:
                for callee in self._resolve(fn, site.callee):
                    if callee.name in _CONSTRUCTION_METHODS:
                        continue
                    seed(callee, role)

        # Anything still roleless is reachable only through paths the
        # index cannot see (dict dispatch, getattr); assume the ambient
        # role rather than exempting it.
        for cls in self.classes:
            for method in cls.methods.values():
                if method.name in _CONSTRUCTION_METHODS:
                    continue
                if not self.roles.get(method):
                    self.roles.setdefault(method, set()).add(ROLE_MAIN)

    def _resolve(self, caller: FunctionInfo, callee: str) -> list[FunctionInfo]:
        """Candidate targets of one call edge, conservatively by name."""
        parts = callee.split(".")
        if len(parts) == 1:
            return list(self.scoped_functions.get(parts[0], []))
        attr = parts[-1]
        if parts[0] == "self" and len(parts) == 2 and caller.class_name:
            cls = self.by_class.get(caller.class_name)
            if cls is not None and attr in cls.methods:
                return [cls.methods[attr]]
            return []
        # obj.method(...) / a.b.method(...): any scoped class method with
        # this bare name may be the target.
        return list(self.scoped_methods.get(attr, []))


def _self_field_of(node: ast.expr) -> str | None:
    """The field name when ``node`` is exactly ``self.<field>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_accesses(
    project: ProjectContext,
    model: ClassThreadModel,
    method: FunctionInfo,
    roles: frozenset[str],
) -> None:
    """Record every ``self.<field>`` access of one method with its facts."""
    cfg = project.cfg(method)
    for op, locks in iter_ops_with_facts(cfg, LockTracker()):
        for access in _accesses_of_op(op):
            field_name, kind, rmw, node = access
            model.accesses.setdefault(field_name, []).append(
                FieldAccess(
                    field=field_name,
                    kind=kind,
                    rmw=rmw,
                    node=node,
                    method=method.name,
                    roles=roles,
                    locks=locks,
                )
            )


def _accesses_of_op(op: Op) -> Iterator[tuple[str, str, bool, ast.AST]]:
    """``(field, kind, rmw, node)`` for each self-field access in one op."""
    node = op.node
    if op.kind not in ("stmt", "branch", "for-iter", "with-enter"):
        return
    written: set[int] = set()
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        rmw = isinstance(node, ast.AugAssign)
        for target in targets:
            field_name = _self_field_of(target)
            if field_name is not None:
                written.add(id(target))
                yield field_name, "write", rmw, node
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                inner = _self_field_of(target.value)
                if inner is not None:
                    written.add(id(target.value))
                    yield inner, "mutate", rmw, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            field_name = _self_field_of(target)
            if field_name is not None:
                written.add(id(target))
                yield field_name, "write", False, node
    # Mutating method calls and plain reads in the expressions this op
    # evaluates.  Compound ops (branch/for-iter/with-enter) carry the
    # whole statement as their node but only evaluate the test/iterable/
    # context expressions — body accesses belong to the body ops, with
    # the facts holding *there* (e.g. inside the just-entered ``with``).
    for root in op.expr_roots():
        for sub in ast.walk(root):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ):
                receiver = _self_field_of(sub.func.value)
                if receiver is not None and sub.func.attr in _MUTATING_METHODS:
                    written.add(id(sub.func.value))
                    yield receiver, "mutate", False, sub
            field_name = (
                _self_field_of(sub) if isinstance(sub, ast.expr) else None
            )
            if field_name is not None and id(sub) not in written:
                yield field_name, "read", False, sub


def build_thread_model(
    project: ProjectContext, classes: list[ClassInfo] | None = None
) -> ThreadModel:
    """Derive roles, field accesses and guards for ``classes``.

    With ``classes=None`` every indexed class is analysed; the rules pass
    the subset whose modules are in scope.
    """
    chosen = list(project.classes) if classes is None else classes
    inference = _RoleInference(project, chosen)
    inference.infer()
    model = ThreadModel()
    for cls in chosen:
        cls_model = ClassThreadModel(info=cls)
        cls_model.per_thread_instances = bool(
            cls.base_names() & _HANDLER_BASES
        )
        cls_model.concurrent_roles = set(inference.concurrent)
        for name, method in cls.methods.items():
            roles = frozenset(inference.roles.get(method, {ROLE_MAIN}))
            cls_model.roles[name] = roles
            if name in _CONSTRUCTION_METHODS:
                continue  # construction precedes sharing
            _collect_accesses(project, cls_model, method, roles)
        model.classes[cls.name] = cls_model
    return model


@register
class UnguardedSharedWriteRule(ProjectRule):
    """Cross-role writes must be dominated by the field's guard lock."""

    rule_id = "thread-unguarded-write"
    code = "OPQ701"
    description = (
        "a field written from two or more inferred thread roles has a "
        "write not dominated by its guarding lock; lock-free readers "
        "require every writer to publish under the guard"
    )
    paper_ref = "docs/service.md (locked writers, lock-free readers)"
    scope_prefixes = ("service/",)
    # Sound: _RoleInference restricts method/function resolution to the
    # scoped modules, so no out-of-scope file can change these findings.
    deep_dependencies = "scope"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes = [c for c in project.classes if self.in_scope(c.module)]
        model = build_thread_model(project, classes)
        for cls_model in model.classes.values():
            yield from self._check_class(cls_model)

    def _check_class(self, cls_model: ClassThreadModel) -> Iterator[Finding]:
        if cls_model.per_thread_instances:
            return  # self-state is thread-confined; see ClassThreadModel
        cls = cls_model.info
        for field_name in sorted(cls_model.accesses):
            if cls_model.field_is_thread_safe(field_name):
                continue
            writes = cls_model.writes(field_name)
            roles = cls_model.writing_roles(field_name)
            if len(roles) < 2:
                continue
            guard = cls_model.guard_of(field_name)
            for access in writes:
                if guard is not None and guard in access.locks:
                    continue
                role_list = ", ".join(sorted(access.roles))
                if guard is None:
                    detail = "and no lock guards any access to it"
                else:
                    detail = f"without holding {guard}, which guards it elsewhere"
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(cls.module.path),
                    line=getattr(access.node, "lineno", cls.node.lineno),
                    col=getattr(access.node, "col_offset", 0),
                    message=(
                        f"{cls.name}.{field_name} is written from roles "
                        f"{{{', '.join(sorted(roles))}}}; this write in "
                        f"{access.method}() runs as {{{role_list}}} {detail}"
                    ),
                )


@register
class ConcurrentReadModifyWriteRule(ProjectRule):
    """Read-modify-writes from a concurrent role need a lock."""

    rule_id = "thread-concurrent-rmw"
    code = "OPQ702"
    description = (
        "an augmented assignment to a shared field from a concurrent "
        "role (thread-per-request handlers, per-iteration workers) "
        "without a lock; the role races with itself even as sole writer"
    )
    paper_ref = "docs/service.md (ingest counters under the state lock)"
    scope_prefixes = ("service/",)
    # Sound for the same reason as OPQ701: role inference never resolves
    # outside the scoped modules.
    deep_dependencies = "scope"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes = [c for c in project.classes if self.in_scope(c.module)]
        model = build_thread_model(project, classes)
        for cls_model in model.classes.values():
            if cls_model.per_thread_instances:
                continue  # self-state is thread-confined
            cls = cls_model.info
            for field_name in sorted(cls_model.accesses):
                if cls_model.field_is_thread_safe(field_name):
                    continue
                for access in cls_model.writes(field_name):
                    if not access.rmw or access.locks:
                        continue
                    concurrent = access.roles & cls_model.concurrent_roles
                    if not concurrent:
                        continue
                    yield Finding(
                        rule_id=self.rule_id,
                        code=self.code,
                        path=str(cls.module.path),
                        line=getattr(access.node, "lineno", cls.node.lineno),
                        col=getattr(access.node, "col_offset", 0),
                        message=(
                            f"{cls.name}.{field_name} is updated in place "
                            f"in {access.method}() from the concurrent role "
                            f"{{{', '.join(sorted(concurrent))}}} with no "
                            "lock held; the read-modify-write races with "
                            "itself"
                        ),
                    )
