"""Rule family 4 (OPQ4xx): SPMD communication safety.

The parallel algorithm (paper section 3) is SPMD: every processor runs the
same program, and point-to-point transfers appear in the source once per
endpoint role — the branch a sender executes contains ``send(me, partner)``
and the branch its partner executes must contain the mirrored
``send(partner, me)``.  On the :class:`repro.parallel.machine` API a
mismatch does not crash: clocks silently advance as if the transfer
happened, and every timing table built on top of them (Tables 8-12) becomes
fiction.  These rules are the static deadlock/race detector for that API:
they match sends to their mirrored receives per step, and flag
self-messages, unmatched sends, and mirror pairs issued in head-to-head
blocking order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = [
    "SelfMessageRule",
    "UnmatchedSendRule",
    "ReorderedSendRule",
    "UnboundedBlockingRule",
]

#: Point-to-point primitives: (attribute name, how many endpoint args).
_POINT_TO_POINT = {"send": 2, "exchange": 2}


def _comm_calls(root: ast.AST, attrs: tuple[str, ...]) -> list[ast.Call]:
    """Communication calls under ``root``, in source order."""
    calls = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in attrs
            and len(node.args) >= 2
        ):
            calls.append(node)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _endpoint_key(node: ast.expr) -> str:
    """Canonical form of an endpoint expression for matching."""
    return ast.dump(node)


@register
class SelfMessageRule(Rule):
    """A processor must not message itself."""

    rule_id = "spmd-self-message"
    code = "OPQ401"
    description = (
        "send/exchange whose source and destination are the same "
        "expression; a self-message is a deadlock on a blocking machine"
    )
    paper_ref = "section 3 (two-level machine model)"
    scope_prefixes = ("parallel/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in _comm_calls(ctx.tree, ("send", "exchange")):
            src, dst = call.args[0], call.args[1]
            if _endpoint_key(src) == _endpoint_key(dst):
                name = dotted_name(call.func) or "send"
                yield ctx.finding(
                    self,
                    call,
                    f"{name}() with identical endpoints "
                    f"({ast.unparse(src)}); a processor cannot message "
                    "itself",
                )


def _branch_sends(branch: list[ast.stmt]) -> list[ast.Call]:
    calls = []
    for stmt in branch:
        calls.extend(_comm_calls(stmt, ("send",)))
    return calls


def _mirror_index(
    send: ast.Call, candidates: list[ast.Call]
) -> int | None:
    """Index in ``candidates`` of the mirrored (dst, src) send, if any."""
    want = (_endpoint_key(send.args[1]), _endpoint_key(send.args[0]))
    for i, cand in enumerate(candidates):
        have = (_endpoint_key(cand.args[0]), _endpoint_key(cand.args[1]))
        if have == want:
            return i
    return None


def _role_branches(tree: ast.Module) -> Iterator[tuple[list[ast.stmt], list[ast.stmt]]]:
    """if/else pairs where both branches perform point-to-point sends.

    These are the SPMD role dispatches: one branch is executed by one
    endpoint of a transfer, the other branch by its partner, so their
    sends must mirror each other.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.If) or not node.orelse:
            continue
        if _branch_sends(node.body) and _branch_sends(node.orelse):
            yield node.body, node.orelse


@register
class UnmatchedSendRule(Rule):
    """Every send in a role branch needs a mirrored send in the sibling."""

    rule_id = "spmd-unmatched-send"
    code = "OPQ402"
    description = (
        "send with no mirrored send(dst, src) in the sibling SPMD role "
        "branch; the partner never completes the transfer"
    )
    paper_ref = "section 3 (matched communication per merge step)"
    scope_prefixes = ("parallel/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for body, orelse in _role_branches(ctx.tree):
            body_sends = _branch_sends(body)
            else_sends = _branch_sends(orelse)
            for sends, partners in ((body_sends, else_sends), (else_sends, body_sends)):
                for send in sends:
                    if _mirror_index(send, partners) is None:
                        yield ctx.finding(
                            self,
                            send,
                            f"send({ast.unparse(send.args[0])}, "
                            f"{ast.unparse(send.args[1])}) has no mirrored "
                            "send in the sibling branch; the partner side "
                            "of the transfer is missing",
                        )


@register
class ReorderedSendRule(Rule):
    """Mirrored send pairs must be issued in the same relative order."""

    rule_id = "spmd-reordered-send"
    code = "OPQ403"
    description = (
        "mirrored sends issued in opposite order across SPMD role "
        "branches; on a blocking machine both sides wait head-to-head"
    )
    paper_ref = "section 3 (bitonic/sample merge step ordering)"
    scope_prefixes = ("parallel/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for body, orelse in _role_branches(ctx.tree):
            else_sends = _branch_sends(orelse)
            matched = [
                (send, pos)
                for send in _branch_sends(body)
                if (pos := _mirror_index(send, else_sends)) is not None
            ]
            for (_, pos_a), (send_b, pos_b) in zip(matched, matched[1:]):
                if pos_b < pos_a:
                    yield ctx.finding(
                        self,
                        send_b,
                        "mirrored sends appear in opposite order in the "
                        "two role branches; reorder one side so partners "
                        "pair up first-to-first",
                    )
                    break


#: Blocking primitives that accept a ``timeout=`` keyword and block
#: forever without one: Queue.get, Barrier/Event/Condition.wait,
#: Thread/Process.join, Lock/Semaphore.acquire.
_BLOCKING_ATTRS = ("get", "wait", "join", "acquire")


@register
class UnboundedBlockingRule(Rule):
    """Real-backend blocking calls must carry a timeout.

    The backend contract (``repro.parallel.backends.base``) promises that
    a dead or wedged worker surfaces as a typed
    :class:`~repro.errors.ParallelError`, never a hang.  An unbounded
    ``queue.get()`` / ``barrier.wait()`` / ``worker.join()`` /
    ``lock.acquire()`` breaks that promise the moment a peer dies between
    the send and the receive.  Only zero-argument attribute calls are
    flagged: ``dict.get(key)``, ``str.join(parts)`` and ``worker.join(5.0)``
    all pass positional arguments and are out of scope.

    The asyncio wire layer (``service/aio.py``) makes the same promise —
    a stalled shard must surface as a typed error frame, never wedge the
    event loop — so it is in scope too; its blocking service calls run
    under ``asyncio.wait_for``.  So does the multi-tenant registry
    (``service/tenancy/``): its shard locks sit on the keyed request
    path, where an unbounded ``acquire()`` would wedge every tenant
    behind one stuck key.
    """

    rule_id = "spmd-unbounded-blocking"
    code = "OPQ404"
    description = (
        "blocking primitive (get/wait/join/acquire) called with no "
        "timeout in a real execution backend or the service wire layer; "
        "a dead peer turns the call into a hang instead of a typed error"
    )
    paper_ref = "backends contract (fail typed, never hang)"
    scope_prefixes = (
        "parallel/backends/",
        "service/aio.py",
        "service/http.py",
        "service/tenancy/",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        bounded = self._wait_for_bounded(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_ATTRS
            ):
                continue
            if node.args:  # dict.get(key), "".join(seq), join(5.0): bounded
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if id(node) in bounded:
                continue
            name = dotted_name(node.func) or node.func.attr
            yield ctx.finding(
                self,
                node,
                f"{name}() blocks forever if the peer died; pass "
                "timeout= and convert expiry into a ParallelError",
            )

    @staticmethod
    def _wait_for_bounded(tree: ast.AST) -> set[int]:
        """ids of calls bounded by an enclosing ``asyncio.wait_for``.

        ``await asyncio.wait_for(queue.get(), timeout=t)`` is the asyncio
        spelling of a bounded wait: the awaitable built by the inner call
        is cancelled when the deadline passes, so the inner primitive
        needs no timeout of its own.  A ``wait_for`` with no deadline
        argument bounds nothing.
        """
        bounded: set[int] = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, (ast.Attribute, ast.Name))
                and (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                == "wait_for"
            ):
                continue
            has_deadline = len(node.args) >= 2 or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if not has_deadline:
                continue
            for arg in node.args[:1]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call):
                        bounded.add(id(sub))
        return bounded
