"""Incremental analysis cache: content-hash keyed, byte-identical replay.

``opaq lint --deep`` re-parses and re-judges every file on every run;
fine at 100 files, but the cost grows with the repo while CI budgets do
not.  This cache makes warm runs cheap **without changing a single byte
of output**, which is the invariant everything here serves:

- **Per-file layer.**  For each parsed file the cache stores its content
  hash, package-relative path, suppression-directive table, and the
  *raw, pre-suppression* findings of every module rule.  A warm run with
  a matching hash replays those raw findings through the very same
  ``admit()`` pipeline a cold run uses — suppression marks, OPQ902
  staleness, baseline subtraction and the final sort are all recomputed
  live, so the output cannot drift from a cold run's.
- **Deep layer.**  Each :class:`~repro.analysis.framework.ProjectRule`'s
  findings are keyed by a digest over the content hashes of every file
  the rule can observe — all of them by default
  (``deep_dependencies = "project"``: summaries flow through arbitrary
  call edges), or only the rule's scoped files when the rule declares
  ``deep_dependencies = "scope"`` and its resolution provably never
  leaves that scope (the OPQ70x thread family).  Editing one service
  file therefore re-runs the service-scoped families and every
  project-wide family, but nothing else.

The cache **never** stores post-suppression results, never caches files
that failed to parse, and invalidates wholesale when the rule universe,
the select/ignore set, or the library version changes (the
:func:`cache_fingerprint`).  Corrupt or alien cache files are treated as
empty, never as errors — a cache must only ever be able to make a run
faster, not wrong.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import repro
from repro.analysis.framework import (
    Finding,
    ModuleContext,
    Rule,
    Suppressions,
)

__all__ = [
    "CACHE_VERSION",
    "AnalysisCache",
    "CacheStats",
    "CachedModule",
    "cache_fingerprint",
    "hash_bytes",
]

#: Bump when the cache layout or replay semantics change.
CACHE_VERSION = 1


def hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def cache_fingerprint(
    selected: set[str] | None,
    ignored: set[str],
    deep: bool,
    rules: Iterable[Rule],
) -> str:
    """Digest of everything that changes findings besides file content."""
    payload = json.dumps(
        {
            "version": repro.__version__,
            "cache_version": CACHE_VERSION,
            "rules": sorted(f"{rule.code}:{rule.rule_id}" for rule in rules),
            "selected": sorted(selected) if selected is not None else None,
            "ignored": sorted(ignored),
            "deep": deep,
        },
        sort_keys=True,
    )
    return hash_bytes(payload.encode("utf-8"))


@dataclass
class CacheStats:
    """What the cache did for one run (never rendered into reports)."""

    files_total: int = 0
    files_reused: int = 0
    deep_rules_total: int = 0
    deep_rules_reused: int = 0


@dataclass
class CachedModule:
    """A cache-hit file: enough to replay admits without re-parsing.

    Duck-typed against :class:`~repro.analysis.framework.ModuleContext`
    for the runner's suppression pipeline (``.path``, ``.package_rel``,
    ``.suppressions``); it has no AST — a deep-phase miss upgrades it to
    a real context by re-parsing.
    """

    path: Path
    package_rel: str | None
    suppressions: Suppressions
    findings: list[Finding] = field(default_factory=list)


def _finding_to_dict(finding: Finding) -> dict[str, object]:
    return {
        "rule_id": finding.rule_id,
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def _finding_from_dict(data: Mapping[str, object]) -> Finding:
    return Finding(
        rule_id=str(data["rule_id"]),
        code=str(data["code"]),
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data["col"]),  # type: ignore[arg-type]
        message=str(data["message"]),
    )


class AnalysisCache:
    """One on-disk cache file, loaded eagerly, saved explicitly."""

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._files: dict[str, dict[str, object]] = {}
        self._deep: dict[str, dict[str, object]] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # absent or corrupt: start cold
        if not isinstance(data, dict):
            return
        if data.get("fingerprint") != self.fingerprint:
            return  # different rules/options/version: everything stale
        files = data.get("files")
        deep = data.get("deep")
        if isinstance(files, dict):
            self._files = files
        if isinstance(deep, dict):
            self._deep = deep

    def save(self) -> None:
        payload = {
            "fingerprint": self.fingerprint,
            "files": self._files,
            "deep": self._deep,
        }
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- per-file layer -------------------------------------------------

    def lookup_file(self, key: str, digest: str) -> CachedModule | None:
        entry = self._files.get(key)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        try:
            raw = entry["findings"]
            table = entry["suppressions"]
            package_rel = entry["package_rel"]
            findings = [_finding_from_dict(f) for f in raw]  # type: ignore[union-attr]
            suppressions = Suppressions.from_table(table)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return None  # malformed entry: treat as a miss
        return CachedModule(
            path=Path(key),
            package_rel=package_rel if isinstance(package_rel, str) else None,
            suppressions=suppressions,
            findings=findings,
        )

    def store_file(
        self,
        key: str,
        digest: str,
        ctx: ModuleContext,
        findings: list[Finding],
    ) -> None:
        self._files[key] = {
            "hash": digest,
            "package_rel": ctx.package_rel,
            "suppressions": ctx.suppressions.to_table(),
            "findings": [_finding_to_dict(f) for f in findings],
        }

    def drop_stale_files(self, live_keys: set[str]) -> None:
        """Forget entries for files no longer walked (deleted/moved)."""
        for key in list(self._files):
            if key not in live_keys:
                del self._files[key]

    # -- deep layer -----------------------------------------------------

    @staticmethod
    def dep_digest(
        rule: Rule,
        file_hashes: Mapping[str, str],
        package_rels: Mapping[str, str | None],
    ) -> str:
        """Digest of every file that can influence ``rule``'s findings.

        A file missing from ``package_rels`` (it failed to parse, so it
        never joined the project index) still contributes its hash: when
        it starts parsing, the rules must re-run.
        """
        parts = []
        for key in sorted(file_hashes):
            if rule.deep_dependencies == "scope" and key in package_rels:
                rel = package_rels[key]
                if (
                    rel is not None
                    and rule.scope_prefixes
                    and not rel.startswith(rule.scope_prefixes)
                ):
                    continue
            parts.append(f"{key}:{file_hashes[key]}")
        return hash_bytes("\n".join(parts).encode("utf-8"))

    def lookup_deep(self, rule_id: str, dep: str) -> list[Finding] | None:
        entry = self._deep.get(rule_id)
        if not isinstance(entry, dict) or entry.get("dep") != dep:
            return None
        try:
            return [_finding_from_dict(f) for f in entry["findings"]]  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError):
            return None

    def store_deep(
        self, rule_id: str, dep: str, findings: list[Finding]
    ) -> None:
        self._deep[rule_id] = {
            "dep": dep,
            "findings": [_finding_to_dict(f) for f in findings],
        }
