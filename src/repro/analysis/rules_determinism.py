"""Rule family 3 (OPQ3xx): determinism.

OPAQ's bounds are *deterministic*: Lemmas 1-3 hold for every input and
every execution, which is the paper's headline advantage over randomized
sketches.  The reproduction extends the claim to the simulated SP-2
experiments — rerunning any experiment must produce bit-identical tables.
Three things quietly break that: wall-clock reads, unseeded random number
generators, and exact float comparisons (whose truth value flips with
summation order when an implementation detail changes).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = ["WallClockRule", "UnseededRngRule", "FloatEqualityRule"]

#: Wall-clock reads.  time.perf_counter is deliberately absent: it is the
#: sanctioned monotonic timer for *reporting* elapsed time, and results
#: must never depend on it anyway.
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: Attributes of the *global* numpy RNG (np.random.<fn> module calls).
_NP_GLOBAL_RNG = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "zipf",
    "beta",
    "gamma",
    "poisson",
}

#: Functions of the stdlib global ``random`` module.
_STDLIB_RNG = {
    "seed",
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
}

#: Generator constructors that must receive an explicit seed.
_RNG_CTORS = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
}


def _unseeded(call: ast.Call) -> bool:
    """True when a generator constructor got no seed (or a literal None)."""
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return any(
        kw.arg == "seed"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is None
        for kw in call.keywords
    )


@register
class WallClockRule(Rule):
    """No wall-clock reads in the deterministic layers."""

    rule_id = "determinism-wall-clock"
    code = "OPQ301"
    description = (
        "wall-clock read (time.time / datetime.now) in a deterministic "
        "layer; use time.perf_counter for reporting, SimulatedMachine "
        "clocks for modelled time"
    )
    paper_ref = "section 3 (the two-level model supplies all timing)"
    scope_prefixes = ("core/", "selection/", "parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCKS:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() reads the wall clock; results and modelled "
                    "timings must not depend on real time",
                )


@register
class UnseededRngRule(Rule):
    """All randomness flows through explicitly seeded generators."""

    rule_id = "determinism-unseeded-rng"
    code = "OPQ302"
    description = (
        "global or unseeded RNG (np.random.<fn>, random.<fn>, "
        "default_rng()); pass a seeded np.random.Generator"
    )
    paper_ref = "section 1 (deterministic guarantees for any input)"
    scope_prefixes = ("core/", "selection/", "parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _RNG_CTORS:
                if _unseeded(node):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() without a seed draws OS entropy; "
                        "pass an explicit seed",
                    )
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in _NP_GLOBAL_RNG
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() uses numpy's hidden global RNG; "
                    "thread a seeded np.random.Generator instead",
                )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RNG:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() uses the stdlib global RNG; "
                    "thread a seeded generator instead",
                )


@register
class FloatEqualityRule(Rule):
    """No exact equality against float literals."""

    rule_id = "determinism-float-equality"
    code = "OPQ303"
    description = (
        "== / != against a float literal; exact float equality flips "
        "with evaluation order — compare ranks, or use a tolerance"
    )
    paper_ref = "section 2.1.2 (guarantees are stated on ranks, not values)"
    scope_prefixes = ("core/", "selection/", "parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                            f"against float literal {side.value!r}; compare "
                            "ranks or use math.isclose",
                        )
                        break
