"""Function summaries: the interprocedural layer of opaqlint v3.

The PR-4 engine judged one function at a time; call edges were handled
by an ad-hoc oracle (OPQ802's "does the callee iterate its parameter?")
that deliberately looked one level deep.  This module replaces that with
a real bottom-up pass over the :class:`~repro.analysis.project.ProjectContext`
call graph: every function gets a :class:`FunctionSummary` describing
the effects a caller can observe through a call edge —

- ``consumes_params``: parameters the function exhausts as single-pass
  streams (directly or through its own callees),
- ``releases_params``: parameters it releases (``close``/``unlink``/
  ``__exit__``, directly or transitively),
- ``escapes_params``: parameters it stores into fields/containers,
  returns, or yields — ownership leaves the call,
- ``acquires_locks``: qualified lock names the function may acquire,
  including through callees (the deadlock family's edge source),
- ``blocking_calls``: unbounded blocking call sites (``get``/``wait``/
  ``join``/``acquire`` with no timeout) reachable from the function,
- ``offloads_params``: parameters handed to a worker thread via
  ``asyncio.to_thread``/``run_in_executor`` (the async family's role
  boundary), directly or transitively.

Summaries are computed by worklist fixpoint.  Every field is a set that
only ever grows and the universe (parameter names, lock names, call
sites in the program text) is finite, so the iteration is monotone and
converges even on call-graph cycles — mutual recursion terminates with
the least fixpoint instead of hanging, which the summary tests pin.

Call resolution is name-based and conservative like the rest of the
engine, with one precision upgrade over the old oracle: ``self.f.m(...)``
resolves through :attr:`~repro.analysis.project.ClassInfo.field_types`
when ``__init__`` recorded ``self.f = Ctor(...)``, so
``self._snapshotter.run_epoch()`` finds ``Snapshotter.run_epoch`` rather
than every ``run_epoch`` in the project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow import lock_names_of
from repro.analysis.framework import dotted_name
from repro.analysis.project import FunctionInfo, ProjectContext

__all__ = [
    "FunctionSummary",
    "SummaryIndex",
    "offload_callable",
    "param_names",
    "matched_param",
    "qualified_lock",
    "unbounded_blocking_attr",
    "RELEASE_METHODS",
    "EXHAUSTING_BUILTINS",
]

#: Method calls on a resource that end its lifetime from the caller's
#: point of view.
RELEASE_METHODS = frozenset({"close", "unlink", "__exit__", "shutdown"})

#: Builtins that exhaust an iterable argument (shared with the one-pass
#: family; kept here so the seed and the rule agree on the list).
EXHAUSTING_BUILTINS = frozenset(
    {
        "list",
        "tuple",
        "set",
        "frozenset",
        "sorted",
        "sum",
        "max",
        "min",
        "any",
        "all",
        "enumerate",
        "zip",
        "iter",
    }
)

#: Blocking primitives that accept ``timeout=`` and block forever
#: without one (the OPQ404/OPQ752 call shape).
_BLOCKING_ATTRS = frozenset({"get", "wait", "join", "acquire"})


def unbounded_blocking_attr(call: ast.Call) -> str | None:
    """The blocking attribute name when ``call`` blocks without a bound.

    Matches the OPQ404 shape: a zero-positional-argument attribute call
    on ``get``/``wait``/``join``/``acquire`` with no ``timeout=`` keyword.
    ``dict.get(key)``, ``"".join(seq)`` and ``worker.join(5.0)`` all pass
    positional arguments and return ``None`` here.
    """
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _BLOCKING_ATTRS
    ):
        return None
    if call.args:
        return None
    if any(kw.arg == "timeout" for kw in call.keywords):
        return None
    return call.func.attr


def offload_callable(call: ast.Call) -> ast.expr | None:
    """The callable ``call`` ships off the event loop, if it is one.

    Recognises the two asyncio thread-handoff primitives:
    ``asyncio.to_thread(fn, ...)`` (first positional argument) and
    ``loop.run_in_executor(executor, fn, ...)`` (second).  The returned
    expression runs in a worker thread — the role boundary of the
    OPQ77x coroutine model.
    """
    callee = dotted_name(call.func)
    if callee is None:
        return None
    last = callee.rsplit(".", 1)[-1]
    if last == "to_thread" and call.args:
        return call.args[0]
    if last == "run_in_executor" and len(call.args) >= 2:
        return call.args[1]
    return None


def param_names(fn: FunctionInfo) -> list[str]:
    """Positional parameter names of ``fn``, minus ``self``/``cls``."""
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if fn.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def matched_param(
    fn: FunctionInfo, name: str, call: ast.Call
) -> str | None:
    """The parameter of ``fn`` that ``name`` binds to at ``call``."""
    params = param_names(fn)
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and arg.id == name:
            if index < len(params):
                return params[index]
            return None
    for kw in call.keywords:
        if (
            kw.arg is not None
            and isinstance(kw.value, ast.Name)
            and kw.value.id == name
        ):
            return kw.arg if kw.arg in params else None
    return None


def qualified_lock(name: str, fn: FunctionInfo) -> str:
    """Project-unique spelling of a lock's dotted name.

    ``self._lock`` inside a method of ``Snapshotter`` becomes
    ``Snapshotter._lock`` — the *class* owns the lock object, so two
    methods naming ``self._lock`` acquire the same node of the lock-order
    graph.  Anything else is qualified by the defining module
    (``engine.py:_GLOBAL_LOCK``).
    """
    if name.startswith("self."):
        owner = fn.class_name or fn.module.path.stem
        return f"{owner}.{name[len('self.'):]}"
    return f"{fn.module.path.stem}.py:{name}"


@dataclass
class FunctionSummary:
    """Caller-observable effects of one function (grow-only sets)."""

    fn: FunctionInfo
    consumes_params: set[str] = field(default_factory=set)
    releases_params: set[str] = field(default_factory=set)
    #: Subset of interest to the resource family: parameters the function
    #: calls ``unlink()`` on (transitively).  A *created* SharedMemory
    #: segment is only released by ``unlink``; ``close`` merely detaches,
    #: so the kind-aware kill needs the distinction.
    unlinks_params: set[str] = field(default_factory=set)
    escapes_params: set[str] = field(default_factory=set)
    acquires_locks: set[str] = field(default_factory=set)
    #: Human-readable sites: ``"queue.get() at shard.py:92"``.
    blocking_calls: set[str] = field(default_factory=set)
    #: Parameters the function hands to a worker thread — directly via
    #: ``asyncio.to_thread``/``run_in_executor``, or by passing them on
    #: to a callee that does.  A callable argument bound to one of these
    #: runs in the thread role, not the caller's (the async family's
    #: role boundary: ``AsyncServiceServer._blocking`` offloads ``fn``).
    offloads_params: set[str] = field(default_factory=set)

    def snapshot(self) -> tuple[frozenset[str], ...]:
        """Immutable view used to detect fixpoint convergence."""
        return (
            frozenset(self.consumes_params),
            frozenset(self.releases_params),
            frozenset(self.unlinks_params),
            frozenset(self.escapes_params),
            frozenset(self.acquires_locks),
            frozenset(self.blocking_calls),
            frozenset(self.offloads_params),
        )


@dataclass(frozen=True)
class _Edge:
    """One resolved call edge with the caller-side argument bindings."""

    caller: FunctionInfo
    callee: FunctionInfo
    #: caller parameter name -> callee parameter name, for bare-name
    #: arguments that are themselves parameters of the caller.
    bindings: tuple[tuple[str, str], ...]


class SummaryIndex:
    """Bottom-up function summaries over one project's call graph."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self._summaries: dict[int, FunctionSummary] = {}
        self._functions: list[FunctionInfo] = list(project.iter_functions())
        self._resolve_cache: dict[tuple[int, str], tuple[FunctionInfo, ...]] = {}
        for fn in self._functions:
            self._summaries[id(fn.node)] = self._seed(fn)
        edges = self._build_edges()
        self._fixpoint(edges)

    # -- public queries ------------------------------------------------

    def summary_of(self, fn: FunctionInfo) -> FunctionSummary:
        """The summary of one indexed function."""
        return self._summaries[id(fn.node)]

    def resolve(
        self, caller: FunctionInfo | None, callee: str
    ) -> list[FunctionInfo]:
        """Candidate targets for a dotted callee name, conservatively.

        Bare names resolve to module-level functions; ``self.m`` to the
        caller's own class (falling back to every method named ``m``);
        ``self.f.m`` through the field's recorded constructor type;
        anything else to every method with the final name.
        """
        key = (id(caller.node) if caller is not None else 0, callee)
        if key not in self._resolve_cache:
            self._resolve_cache[key] = tuple(self._resolve(caller, callee))
        return list(self._resolve_cache[key])

    def consumption_verdict(
        self,
        caller: FunctionInfo | None,
        callee: str | None,
        name: str,
        call: ast.Call,
    ) -> tuple[bool | None, FunctionInfo | None]:
        """Does passing ``name`` into ``call`` consume the stream?

        ``(True, candidate)`` when a resolved candidate's matched
        parameter is in its (transitive) consume set; ``(False, None)``
        when every candidate resolved and none consumes; ``(None, None)``
        when the callee is unknown.
        """
        if callee is None:
            return None, None
        candidates = self.resolve(caller, callee)
        if not candidates:
            return None, None
        for candidate in candidates:
            param = matched_param(candidate, name, call)
            if (
                param is not None
                and param in self.summary_of(candidate).consumes_params
            ):
                return True, candidate
        return False, None

    def releases_argument(
        self,
        caller: FunctionInfo | None,
        callee: str | None,
        name: str,
        call: ast.Call,
    ) -> bool:
        """True when *every* resolved candidate releases the argument.

        Used as a kill fact by the resource family, so it must hold on
        all possible targets; an unknown callee keeps the resource live.
        """
        if callee is None:
            return False
        candidates = self.resolve(caller, callee)
        if not candidates:
            return False
        for candidate in candidates:
            param = matched_param(candidate, name, call)
            if (
                param is None
                or param not in self.summary_of(candidate).releases_params
            ):
                return False
        return True

    def escapes_argument(
        self,
        caller: FunctionInfo | None,
        callee: str | None,
        name: str,
        call: ast.Call,
    ) -> bool:
        """True when *some* resolved candidate lets the argument escape."""
        if callee is None:
            return False
        for candidate in self.resolve(caller, callee):
            param = matched_param(candidate, name, call)
            if (
                param is not None
                and param in self.summary_of(candidate).escapes_params
            ):
                return True
        return False

    # -- resolution ----------------------------------------------------

    def _resolve(
        self, caller: FunctionInfo | None, callee: str
    ) -> list[FunctionInfo]:
        parts = callee.split(".")
        if len(parts) == 1:
            return self.project.functions_named(parts[0])
        if parts[0] == "self" and caller is not None and caller.is_method:
            own = self._own_class_method(caller, parts)
            if own is not None:
                return own
        return self.project.methods_named(parts[-1])

    def _own_class_method(
        self, caller: FunctionInfo, parts: list[str]
    ) -> list[FunctionInfo] | None:
        """Resolve ``self.m`` / ``self.f.m`` inside the caller's class."""
        cls = next(
            (
                c
                for c in self.project.class_named(caller.class_name or "")
                if c.module is caller.module
            ),
            None,
        )
        if cls is None:
            return None
        if len(parts) == 2:
            method = cls.methods.get(parts[1])
            return [method] if method is not None else None
        if len(parts) == 3:
            ctor = cls.field_types.get(parts[1])
            if ctor is not None:
                targets = [
                    m
                    for owner in self.project.class_named(
                        ctor.rsplit(".", 1)[-1]
                    )
                    if (m := owner.methods.get(parts[2])) is not None
                ]
                if targets:
                    return targets
        return None

    # -- seeds ---------------------------------------------------------

    def _seed(self, fn: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary(fn=fn)
        params = set(param_names(fn))
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.iter, ast.Name) and node.iter.id in params:
                    summary.consumes_params.add(node.iter.id)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for gen in node.generators:
                    if (
                        isinstance(gen.iter, ast.Name)
                        and gen.iter.id in params
                    ):
                        summary.consumes_params.add(gen.iter.id)
            elif isinstance(node, ast.Call):
                self._seed_call(node, params, summary)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self._seed_with(node, fn, params, summary)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                for name in _bare_names_of(node.value):
                    if name in params:
                        summary.escapes_params.add(name)
            elif isinstance(node, ast.Assign):
                self._seed_store(node.targets, node.value, params, summary)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._seed_store([node.target], node.value, params, summary)
        return summary

    def _seed_call(
        self, call: ast.Call, params: set[str], summary: FunctionSummary
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            receiver = func.value.id
            if receiver in params:
                if func.attr == "runs":
                    summary.consumes_params.add(receiver)
                if func.attr in RELEASE_METHODS:
                    summary.releases_params.add(receiver)
                if func.attr == "unlink":
                    summary.unlinks_params.add(receiver)
        callee = dotted_name(func)
        if callee in EXHAUSTING_BUILTINS:
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in params:
                    summary.consumes_params.add(arg.id)
        offloaded = offload_callable(call)
        if (
            isinstance(offloaded, ast.Name)
            and offloaded.id in params
        ):
            summary.offloads_params.add(offloaded.id)
        attr = unbounded_blocking_attr(call)
        if attr is not None:
            receiver_name = dotted_name(func) or attr
            summary.blocking_calls.add(
                f"{receiver_name}() at "
                f"{summary.fn.module.path.name}:{call.lineno}"
            )

    def _seed_with(
        self,
        node: ast.With | ast.AsyncWith,
        fn: FunctionInfo,
        params: set[str],
        summary: FunctionSummary,
    ) -> None:
        # Lock acquisitions: qualified so the lock-order graph joins
        # the same lock across methods and modules.
        for name in lock_names_of(node):
            summary.acquires_locks.add(qualified_lock(name, fn))
        # `with p:` on a parameter releases it on block exit.
        for item in node.items:
            if (
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in params
            ):
                summary.releases_params.add(item.context_expr.id)

    def _seed_store(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        params: set[str],
        summary: FunctionSummary,
    ) -> None:
        stored = {name for name in _bare_names_of(value) if name in params}
        if not stored:
            return
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                summary.escapes_params.update(stored)

    # -- propagation ---------------------------------------------------

    def _build_edges(self) -> dict[int, list[_Edge]]:
        """callee id(node) -> edges into it (for worklist re-processing)."""
        by_callee: dict[int, list[_Edge]] = {}
        for fn in self._functions:
            params = set(param_names(fn))
            for site in fn.calls:
                for candidate in self.resolve(fn, site.callee):
                    if id(candidate.node) not in self._summaries:
                        continue
                    bindings: list[tuple[str, str]] = []
                    for name in params:
                        target = matched_param(candidate, name, site.node)
                        if target is not None:
                            bindings.append((name, target))
                    edge = _Edge(
                        caller=fn,
                        callee=candidate,
                        bindings=tuple(bindings),
                    )
                    by_callee.setdefault(id(candidate.node), []).append(edge)
        return by_callee

    def _fixpoint(self, edges_by_callee: dict[int, list[_Edge]]) -> None:
        worklist = list(self._functions)
        in_list = {id(fn.node) for fn in worklist}
        while worklist:
            fn = worklist.pop()
            in_list.discard(id(fn.node))
            before = self.summary_of(fn).snapshot()
            self._absorb_callees(fn)
            if self.summary_of(fn).snapshot() == before:
                continue
            # fn's summary grew: every caller may now observe more.
            for edge in edges_by_callee.get(id(fn.node), []):
                caller_key = id(edge.caller.node)
                if caller_key not in in_list:
                    in_list.add(caller_key)
                    worklist.append(edge.caller)

    def _absorb_callees(self, fn: FunctionInfo) -> None:
        summary = self.summary_of(fn)
        params = set(param_names(fn))
        for site in fn.calls:
            for candidate in self.resolve(fn, site.callee):
                callee_summary = self._summaries.get(id(candidate.node))
                if callee_summary is None:
                    continue
                summary.acquires_locks |= callee_summary.acquires_locks
                summary.blocking_calls |= callee_summary.blocking_calls
                for name in params:
                    target = matched_param(candidate, name, site.node)
                    if target is None:
                        continue
                    if target in callee_summary.consumes_params:
                        summary.consumes_params.add(name)
                    if target in callee_summary.releases_params:
                        summary.releases_params.add(name)
                    if target in callee_summary.unlinks_params:
                        summary.unlinks_params.add(name)
                    if target in callee_summary.escapes_params:
                        summary.escapes_params.add(name)
                    if target in callee_summary.offloads_params:
                        summary.offloads_params.add(name)


def _bare_names_of(value: ast.expr | None) -> list[str]:
    """Names a value expression hands over *as whole objects*.

    ``return p`` and ``return (p, q)`` pass ownership; ``return len(p)``
    does not.  Only the value itself and the elements of literal
    tuples/lists/sets/dicts count — a deliberate precision choice so a
    returned *property of* a resource is not mistaken for the resource.
    """
    if value is None:
        return []
    names: list[str] = []
    stack: list[ast.expr] = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(v for v in node.values if v is not None)
        elif isinstance(node, ast.Yield) and node.value is not None:
            stack.append(node.value)
    return names
