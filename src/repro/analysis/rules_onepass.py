"""Rule family 1 (OPQ1xx): the one-pass discipline.

The paper's entire contribution is that the sample phase touches each run
once and never sorts it (section 2.1.1: selection, not sorting, is what
makes the phase ``O(m log s)`` instead of ``O(m log m)``), and that the
data is read exactly once (Lemma 1's rank bookkeeping assumes each element
is counted in exactly one run).  These rules keep both properties true by
construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = ["FullSortRule", "SecondPassRule"]

#: Full-sort callables whose cost is ``O(m log m)`` on a run-sized array.
_FULL_SORTS = {
    "np.sort",
    "np.argsort",
    "np.lexsort",
    "np.msort",
    "numpy.sort",
    "numpy.argsort",
    "numpy.lexsort",
    "numpy.msort",
}

#: Modules allowed to sort: the explicit sort-based *baseline* strategy
#: exists to be compared against, so its sorts are the point, not a leak.
_SORT_ALLOWLIST = ("selection/strategies.py",)


@register
class FullSortRule(Rule):
    """No full sorts on run-sized data in the sample-phase hot paths."""

    rule_id = "one-pass-sort"
    code = "OPQ101"
    description = (
        "full sort (np.sort/sorted/.sort()) in a selection hot path; "
        "the sample phase must stay selection-based"
    )
    paper_ref = "section 2.1.1 (sample phase cost O(m log s), not O(m log m))"
    scope_prefixes = ("core/sample_phase.py", "selection/")

    def in_scope(self, ctx: ModuleContext) -> bool:
        if ctx.package_rel in _SORT_ALLOWLIST:
            return False
        return super().in_scope(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _FULL_SORTS:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() fully sorts its argument; use a selection "
                    "strategy (np.partition / multiselect) instead",
                )
            elif name == "sorted":
                yield ctx.finding(
                    self,
                    node,
                    "sorted() fully sorts its argument; use a selection "
                    "strategy (np.partition / multiselect) instead",
                )
            elif (
                "." in name
                and name.rsplit(".", 1)[1] == "sort"
                and not node.args
                and not node.keywords
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() sorts in place; the sample phase must stay "
                    "selection-based",
                )


def _is_runreader_ctor(node: ast.expr) -> bool:
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] == "RunReader"


def _has_explicit_budget(call: ast.Call) -> bool:
    return any(kw.arg == "max_passes" for kw in call.keywords)


@register
class SecondPassRule(Rule):
    """A run iterator may be consumed once unless a pass budget is declared."""

    rule_id = "one-pass-reread"
    code = "OPQ102"
    description = (
        "a RunReader consumed more than once without an explicit "
        "max_passes budget; OPAQ reads the data exactly once"
    )
    paper_ref = "section 2 (one pass; section 4's exact extension declares 2)"
    scope_prefixes = ("core/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        # Names bound to a RunReader(...) construction in this function,
        # minus those that declared an explicit max_passes budget (the
        # runtime enforces the declared budget; the lint enforces that
        # silence means one pass).
        readers: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _is_runreader_ctor(node.value.func)
                and not _has_explicit_budget(node.value)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        readers.add(target.id)
        if not readers:
            return
        consumed: dict[str, int] = {name: 0 for name in readers}
        for name in readers:
            for node, kind in _consumptions(func, name):
                consumed[name] += 1
                if consumed[name] > 1:
                    yield ctx.finding(
                        self,
                        node,
                        f"second consumption of run iterator {name!r} "
                        f"({kind}); pass RunReader(..., max_passes=2) to "
                        "request a second pass explicitly",
                    )


def _consumptions(func: ast.AST, name: str) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, kind)`` for each event that drains ``name``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            call_name = dotted_name(node.func)
            if call_name == f"{name}.runs":
                yield node, f"{name}.runs() call"
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    yield node, f"passed to {call_name or 'a call'}()"
        elif isinstance(node, ast.For):
            if isinstance(node.iter, ast.Name) and node.iter.id == name:
                yield node, "for-loop iteration"
