"""Rule registry: every rule family registers itself at import time."""

from __future__ import annotations

from repro.analysis.framework import Rule
from repro.errors import ConfigError

__all__ = ["register", "all_rules", "get_rule", "resolve_rule_ids"]

_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register one rule.

    Rule ids and codes share a namespace (both work in suppressions and
    ``--select``/``--ignore``), so collisions in either are configuration
    errors caught at import time.
    """
    rule = cls()
    for key in (rule.rule_id, rule.code):
        if key in _REGISTRY:
            raise ConfigError(f"duplicate rule id/code {key!r}")
    _REGISTRY[rule.rule_id] = rule
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    unique = {id(rule): rule for rule in _REGISTRY.values()}
    return sorted(unique.values(), key=lambda r: r.code)


def get_rule(name: str) -> Rule:
    """Look a rule up by id or code."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(r.rule_id for r in all_rules()))
        raise ConfigError(f"unknown rule {name!r}; known rules: {known}") from None


def resolve_rule_ids(names: list[str] | None) -> set[str] | None:
    """Normalise a user-supplied id/code list to canonical rule ids."""
    if not names:
        return None
    return {get_rule(name).rule_id for name in names}
