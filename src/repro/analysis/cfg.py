"""Per-function control-flow graphs for the flow-sensitive rules.

The syntactic rule families (OPQ1xx–OPQ6xx) walk the AST and judge each
node in isolation; that is enough for "never call ``np.sort`` here" but
not for path properties — "this stream is consumed twice *on some path*"
or "this write is *always* dominated by the lock acquisition".  Those need
a control-flow graph.

:func:`build_cfg` lowers one function body into basic blocks of
:class:`Op` events.  Control constructs become explicit events so the
dataflow layer (:mod:`repro.analysis.dataflow`) can attach gen/kill
behaviour to them:

``for-iter``
    The evaluation-and-iteration of a ``for`` loop's iterable — *the*
    consumption event of the one-pass rules.  It lives in the loop-head
    block, so the back edge re-reaches it (consuming an iterator inside a
    ``while`` loop is a second pass; the fixpoint finds it).
``with-enter`` / ``with-exit``
    Context-manager entry and exit — the lock acquisition/release events
    of the OPQ7xx rules.  Exception edges out of a ``with`` body bypass
    ``with-exit``, which is exactly why lock inference must be a *must*
    analysis (intersection at joins).
``except``
    A handler entry.  Every block of the guarded body gets an edge to
    every handler: any statement may raise.
``await``
    A coroutine suspension point.  Every ``ast.Await`` inside the
    expressions an op evaluates gets its own event immediately after
    that op, so a must-analysis can ask "what is held *here*, where the
    event loop may run arbitrary other tasks".  ``async for`` iteration
    and ``async with`` enter/exit suspend too; :attr:`Op.suspends`
    unifies all of them for the OPQ77x rules.

Abrupt exits (``return``/``raise``/``break``/``continue``) are routed
through enclosing ``finally`` suites before reaching their target, so a
``try/finally`` reads the way it executes.

The graph is deliberately small-scale: one function at a time, no
interprocedural edges (the project index layers call edges on top), and
no expression-level temporaries.  ``describe()`` renders a stable text
form used by the golden tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Op", "Block", "CFG", "build_cfg"]

#: AST nodes a CFG can be built for.
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class Op:
    """One event inside a basic block.

    ``kind`` is one of ``stmt`` (a simple statement), ``branch`` (the test
    of an ``if``/``while``), ``for-iter``, ``with-enter``, ``with-exit``,
    ``except``, or ``await``; ``node`` is the AST node that produced the
    event.
    """

    kind: str
    node: ast.AST

    def describe(self) -> str:
        if self.kind == "stmt":
            return type(self.node).__name__.lower()
        if self.kind == "branch":
            return f"branch({type(self.node).__name__.lower()})"
        return self.kind

    @property
    def suspends(self) -> bool:
        """True when this event may suspend the enclosing coroutine.

        Suspension points are where the event loop regains control:
        ``await`` expressions, ``async for`` iteration, and ``async
        with`` enter/exit.  A ``threading.Lock`` held across one is held
        across *arbitrary other tasks* — the OPQ772 hazard.
        """
        if self.kind == "await":
            return True
        if self.kind == "for-iter":
            return isinstance(self.node, ast.AsyncFor)
        if self.kind in ("with-enter", "with-exit"):
            return isinstance(self.node, ast.AsyncWith)
        return False

    def expr_roots(self) -> list[ast.AST]:
        """The expression subtrees this op actually evaluates.

        ``branch``/``for-iter``/``with-enter`` ops carry the whole
        compound statement as their node; the body statements have ops of
        their own, so only the test / iterable / context expressions
        belong to this event.  Walking the full compound node instead
        would attribute every body access to the pre-statement fact — and
        record it twice.
        """
        node = self.node
        if self.kind == "stmt":
            return [node]
        if self.kind == "branch" and isinstance(node, (ast.If, ast.While)):
            return [node.test]
        if self.kind == "for-iter" and isinstance(
            node, (ast.For, ast.AsyncFor)
        ):
            return [node.iter]
        if self.kind == "with-enter" and isinstance(
            node, (ast.With, ast.AsyncWith)
        ):
            return [item.context_expr for item in node.items]
        # ``await`` ops are pure suspension markers: the expression they
        # point into already belongs to the preceding op's roots.
        return []


@dataclass
class Block:
    """A basic block: a straight-line run of ops with explicit edges."""

    id: int
    label: str = ""
    ops: list[Op] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        self.entry = self.new_block("entry").id
        self.exit = self.new_block("exit").id

    @property
    def is_coroutine(self) -> bool:
        """True when the graphed function is an ``async def``."""
        return isinstance(self.func, ast.AsyncFunctionDef)

    def new_block(self, label: str = "") -> Block:
        block = Block(id=self._next_id, label=label)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def iter_blocks(self) -> Iterator[Block]:
        """Blocks in creation order (entry first, exit second)."""
        for bid in sorted(self.blocks):
            yield self.blocks[bid]

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry block."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def describe(self) -> str:
        """Stable text rendering (the golden-test format).

        One line per *reachable* block::

            B0<entry> -> B2
            B2<loop-head>: branch(while) -> B3 B4
        """
        reachable = self.reachable()
        lines = []
        for block in self.iter_blocks():
            if block.id not in reachable:
                continue
            head = f"B{block.id}" + (f"<{block.label}>" if block.label else "")
            ops = " ".join(op.describe() for op in block.ops)
            succs = " ".join(
                f"B{s}" for s in sorted(block.succs) if s in reachable
            )
            line = head
            if ops:
                line += f": {ops}"
            if succs:
                line += f" -> {succs}"
            lines.append(line)
        return "\n".join(lines)


def _awaits_under(root: ast.AST) -> list[ast.Await]:
    """``Await`` nodes of ``root`` in source order, skipping nested defs.

    A nested ``async def`` statement is a *definition* — its awaits
    suspend the inner coroutine when it eventually runs, not the
    function being graphed.
    """
    found: list[ast.Await] = []
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    found.sort(key=lambda a: (a.lineno, a.col_offset))
    return found


class _LoopContext:
    """Break/continue targets of the innermost enclosing loop."""

    __slots__ = ("continue_target", "break_target")

    def __init__(self, continue_target: int, break_target: int) -> None:
        self.continue_target = continue_target
        self.break_target = break_target


class _FinallyContext:
    """An enclosing ``finally`` suite abrupt exits must route through."""

    __slots__ = ("entry", "last", "pending")

    def __init__(self, entry: int, last: int) -> None:
        self.entry = entry
        self.last = last
        #: Targets abrupt exits inside the try asked for; each becomes an
        #: edge out of the finally suite once it is built.
        self.pending: set[int] = set()


class _Builder:
    """Lowers one function body into a :class:`CFG`."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        self.current: int | None = None
        self.loops: list[_LoopContext] = []
        self.finallies: list[_FinallyContext] = []
        #: Handler-entry blocks of enclosing ``try`` bodies: every block
        #: created inside the body may raise into them.
        self.handler_stack: list[list[int]] = []

    # -- plumbing ------------------------------------------------------

    def build(self) -> CFG:
        body_entry = self.cfg.new_block("body")
        self.cfg.add_edge(self.cfg.entry, body_entry.id)
        self.current = body_entry.id
        self.visit_body(self.cfg.func.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    def emit(self, op: Op) -> None:
        if self.current is None:  # unreachable code after return/raise
            self.current = self.cfg.new_block("dead").id
        block = self.cfg.blocks[self.current]
        block.ops.append(op)
        # Each ``await`` inside the expressions this op evaluates is a
        # suspension event of its own, placed right after the op so the
        # facts holding "at the await" include the op's own gens (the
        # lock acquired by ``with ... :`` is held at an await in its
        # first body statement).  Suspension cannot branch, so the event
        # stays in the same basic block.
        for root in op.expr_roots():
            for sub in _awaits_under(root):
                block.ops.append(Op("await", sub))
        # Any op inside a try body may raise into each of its handlers.
        for handlers in self.handler_stack:
            for handler in handlers:
                self.cfg.add_edge(block.id, handler)

    def start_block(self, label: str = "") -> int:
        block = self.cfg.new_block(label)
        if self.current is not None:
            self.cfg.add_edge(self.current, block.id)
        self.current = block.id
        return block.id

    def jump(self, target: int) -> None:
        """Abrupt edge to ``target``, routed through enclosing finallies.

        With nested ``try/finally`` the exit runs *every* enclosing suite
        innermost-first, so the pending targets chain: each finally's
        last block continues into the next enclosing finally's entry, and
        only the outermost one edges to the real target.
        """
        if self.current is None:
            return
        self._route_abrupt(self.current, target)
        self.current = None

    def _route_abrupt(self, src: int, target: int) -> None:
        if self.finallies:
            self.cfg.add_edge(src, self.finallies[-1].entry)
            for outer, inner in zip(self.finallies, self.finallies[1:]):
                inner.pending.add(outer.entry)
            self.finallies[0].pending.add(target)
        else:
            self.cfg.add_edge(src, target)

    # -- statement dispatch --------------------------------------------

    def visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"visit_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt)
        else:
            # Simple statement (Assign, Expr, Pass, Import, nested defs,
            # ...): a straight-line op in the current block.
            self.emit(Op("stmt", stmt))

    def visit_Return(self, stmt: ast.Return) -> None:
        self.emit(Op("stmt", stmt))
        self.jump(self.cfg.exit)

    def visit_Raise(self, stmt: ast.Raise) -> None:
        self.emit(Op("stmt", stmt))
        # The emit above already added edges into enclosing handlers; the
        # propagating path routes through finallies to the exit.
        self.jump(self.cfg.exit)

    def visit_Break(self, stmt: ast.Break) -> None:
        self.emit(Op("stmt", stmt))
        if self.loops:
            self.jump(self.loops[-1].break_target)
        else:
            self.current = None

    def visit_Continue(self, stmt: ast.Continue) -> None:
        self.emit(Op("stmt", stmt))
        if self.loops:
            self.jump(self.loops[-1].continue_target)
        else:
            self.current = None

    def visit_If(self, stmt: ast.If) -> None:
        self.emit(Op("branch", stmt))
        branch_block = self.current

        self.current = branch_block
        self.start_block("then")
        self.visit_body(stmt.body)
        then_end = self.current

        self.current = branch_block
        if stmt.orelse:
            self.start_block("else")
            self.visit_body(stmt.orelse)
            else_end = self.current
        else:
            else_end = branch_block

        after = self.cfg.new_block("after-if").id
        for end in (then_end, else_end):
            if end is not None:
                self.cfg.add_edge(end, after)
        # When both arms ended abruptly the after block stays unreachable
        # and describe()/dataflow skip it.
        self.current = (
            after if (then_end is not None or else_end is not None) else None
        )

    def visit_While(self, stmt: ast.While) -> None:
        head = self.start_block("loop-head")
        self.emit(Op("branch", stmt))
        after = self.cfg.new_block("after-loop")

        self.loops.append(_LoopContext(head, after.id))
        self.current = head
        self.start_block("loop-body")
        self.visit_body(stmt.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, head)  # back edge
        self.loops.pop()

        self.current = head
        if stmt.orelse:
            # else runs on normal loop exit (condition false), not break.
            self.start_block("loop-else")
            self.visit_body(stmt.orelse)
            if self.current is not None:
                self.cfg.add_edge(self.current, after.id)
        else:
            self.cfg.add_edge(head, after.id)
        self.current = after.id

    def visit_For(self, stmt: ast.For) -> None:
        self._for(stmt)

    def visit_AsyncFor(self, stmt: ast.AsyncFor) -> None:
        self._for(stmt)

    def _for(self, stmt: ast.For | ast.AsyncFor) -> None:
        head = self.start_block("loop-head")
        self.emit(Op("for-iter", stmt))
        after = self.cfg.new_block("after-loop")

        self.loops.append(_LoopContext(head, after.id))
        self.current = head
        self.start_block("loop-body")
        self.visit_body(stmt.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, head)  # back edge
        self.loops.pop()

        self.current = head
        if stmt.orelse:
            self.start_block("loop-else")
            self.visit_body(stmt.orelse)
            if self.current is not None:
                self.cfg.add_edge(self.current, after.id)
        else:
            self.cfg.add_edge(head, after.id)
        self.current = after.id

    def visit_With(self, stmt: ast.With) -> None:
        self._with(stmt)

    def visit_AsyncWith(self, stmt: ast.AsyncWith) -> None:
        self._with(stmt)

    def _with(self, stmt: ast.With | ast.AsyncWith) -> None:
        self.start_block("with")
        self.emit(Op("with-enter", stmt))
        self.visit_body(stmt.body)
        if self.current is not None:
            self.start_block("with-exit")
            self.emit(Op("with-exit", stmt))

    def visit_Try(self, stmt: ast.Try) -> None:
        after = self.cfg.new_block("after-try")

        # The finally suite is built first so abrupt exits inside the try
        # have an entry block to route through.
        fin: _FinallyContext | None = None
        if stmt.finalbody:
            fin_entry = self.cfg.new_block("finally")
            saved = self.current
            self.current = fin_entry.id
            self.visit_body(stmt.finalbody)
            fin_last = self.current if self.current is not None else fin_entry.id
            fin = _FinallyContext(fin_entry.id, fin_last)
            self.current = saved

        # Handler entry blocks exist before the body so every body block
        # can raise into them.
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            hblock = self.cfg.new_block("except")
            hblock.ops.append(Op("except", handler))
            handler_entries.append(hblock.id)

        if fin is not None:
            self.finallies.append(fin)
        self.handler_stack.append(handler_entries)
        self.start_block("try")
        self.visit_body(stmt.body)
        body_end = self.current
        self.handler_stack.pop()

        # Normal completion runs the else suite.
        if stmt.orelse:
            if body_end is not None:
                self.current = body_end
                self.start_block("try-else")
                self.visit_body(stmt.orelse)
                body_end = self.current

        ends: list[int] = [] if body_end is None else [body_end]
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            self.visit_body(handler.body)
            if self.current is not None:
                ends.append(self.current)
        if fin is not None:
            self.finallies.pop()

        if fin is not None:
            for end in ends:
                self.cfg.add_edge(end, fin.entry)
            self.cfg.add_edge(fin.last, after.id)
            for target in fin.pending:
                self.cfg.add_edge(fin.last, target)
            # An unhandled exception also unwinds through the finally —
            # and on through any finally suites enclosing this try.
            if not handler_entries:
                self._route_abrupt(fin.last, self.cfg.exit)
        else:
            for end in ends:
                self.cfg.add_edge(end, after.id)
        self.current = after.id


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()
