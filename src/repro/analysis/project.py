"""The project index: what deep rules know before they run.

Module rules judge one AST at a time; the flow- and thread-aware families
need to answer questions that span files — "which methods does a
``ThreadingHTTPServer`` handler reach?", "does the function this stream
is passed to consume its parameter?".  :func:`build_project` walks every
parsed module once, before any rule executes, and indexes:

- the **import graph** (module → imported module names, plus per-module
  alias tables so ``from repro.service.shard import ShardWorker`` resolves),
- **class tables**: bases, methods, the fields assigned in ``__init__``
  and the constructor type each field was initialised from,
- **call edges**: every call site inside every function, with the callee's
  dotted name exactly as written (``self._fold``, ``worker.submit``) —
  resolution to candidate targets is name-based and deliberately
  conservative, which is the right bias for a checker that must not miss
  a cross-thread write because the receiver's type was unknowable.

Per-function CFGs (:mod:`repro.analysis.cfg`) are built lazily and
memoised on the context, so the OPQ7xx and OPQ8xx families share one
graph per function instead of re-lowering it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.analysis.cfg import CFG, FunctionNode, build_cfg
from repro.analysis.framework import ModuleContext, dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.summaries import SummaryIndex

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ProjectContext",
    "annotation_type",
    "build_project",
]


def annotation_type(node: ast.expr | None) -> str | None:
    """The dotted class name a simple annotation declares, if any.

    Unwraps the optional spellings (``T | None``, ``Optional[T]``) and
    string annotations; generics and genuine unions stay opaque —
    a half-certain type is worse than none for call resolution.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str) and node.value:
            try:
                return annotation_type(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return None
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        arms = [annotation_type(node.left), annotation_type(node.right)]
        named = [a for a in arms if a is not None]
        if len(named) == 1:
            return named[0]
        return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return annotation_type(node.slice)
        return None
    return dotted_name(node)


@dataclass(frozen=True)
class CallSite:
    """One call expression and its callee's dotted name as written."""

    node: ast.Call
    callee: str


@dataclass(eq=False)
class FunctionInfo:
    """One function or method definition plus its outgoing call edges.

    Identity-hashed (``eq=False``): the role-propagation worklists key on
    *this definition*, not on structural equality of two parses.
    """

    name: str
    qualname: str
    node: FunctionNode
    module: ModuleContext
    class_name: str | None = None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass(eq=False)
class ClassInfo:
    """One class definition: bases, methods, constructor-known fields."""

    name: str
    node: ast.ClassDef
    module: ModuleContext
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<field>`` names assigned anywhere in ``__init__``.
    init_fields: set[str] = field(default_factory=set)
    #: field -> dotted type name, learned from ``__init__`` three ways:
    #: ``self.f = Ctor(...)`` records the constructor, ``self.f = param``
    #: records the parameter's annotation, and ``self.f: T = ...``
    #: records the declared annotation (``T | None`` unwraps to ``T``).
    #: This is how the thread rules learn a field holds a ``queue.Queue``
    #: and how call resolution pins ``self.service.stats`` to the class
    #: the constructor signature names.
    field_types: dict[str, str] = field(default_factory=dict)

    def base_names(self) -> set[str]:
        """Last segments of the base-class names (``BaseHTTPRequestHandler``)."""
        return {base.rsplit(".", 1)[-1] for base in self.bases}


class ProjectContext:
    """Cross-module tables exposed to :class:`~repro.analysis.framework.ProjectRule`."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = modules
        self.classes: list[ClassInfo] = []
        self.functions: list[FunctionInfo] = []
        #: module path (str) -> imported module dotted names.
        self.imports: dict[str, set[str]] = {}
        #: module path (str) -> local alias -> imported dotted name.
        self.aliases: dict[str, dict[str, str]] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._functions_by_name: dict[str, list[FunctionInfo]] = {}
        self._cfgs: dict[int, CFG] = {}
        self._summaries: "SummaryIndex | None" = None
        for module in modules:
            self._index_module(module)

    # -- construction --------------------------------------------------

    def _index_module(self, module: ModuleContext) -> None:
        key = str(module.path)
        imported: set[str] = set()
        aliases: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported.add(alias.name)
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module)
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.imports[key] = imported
        self.aliases[key] = aliases

        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, stmt, class_name=None)
                self.functions.append(info)
                self._functions_by_name.setdefault(stmt.name, []).append(info)

    def _index_class(self, module: ModuleContext, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            node=node,
            module=module,
            bases=[
                name
                for base in node.bases
                if (name := dotted_name(base)) is not None
            ],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function_info(module, stmt, class_name=node.name)
                info.methods[stmt.name] = method
                self._methods_by_name.setdefault(stmt.name, []).append(method)
        init = info.methods.get("__init__")
        if init is not None:
            args = init.node.args
            param_types = {
                arg.arg: ann
                for arg in args.posonlyargs + args.args + args.kwonlyargs
                if (ann := annotation_type(arg.annotation)) is not None
            }
            for sub in ast.walk(init.node):
                targets: list[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.init_fields.add(target.attr)
                        value = getattr(sub, "value", None)
                        if isinstance(value, ast.Call):
                            ctor = dotted_name(value.func)
                            if ctor is not None:
                                info.field_types.setdefault(target.attr, ctor)
                        elif (
                            isinstance(value, ast.Name)
                            and value.id in param_types
                        ):
                            info.field_types.setdefault(
                                target.attr, param_types[value.id]
                            )
                        if isinstance(sub, ast.AnnAssign):
                            declared = annotation_type(sub.annotation)
                            if declared is not None:
                                info.field_types.setdefault(
                                    target.attr, declared
                                )
        self.classes.append(info)

    def _function_info(
        self,
        module: ModuleContext,
        node: FunctionNode,
        class_name: str | None,
    ) -> FunctionInfo:
        qual = node.name if class_name is None else f"{class_name}.{node.name}"
        calls = [
            CallSite(node=sub, callee=callee)
            for sub in ast.walk(node)
            if isinstance(sub, ast.Call)
            and (callee := dotted_name(sub.func)) is not None
        ]
        return FunctionInfo(
            name=node.name,
            qualname=f"{module.path.name}:{qual}",
            node=node,
            module=module,
            class_name=class_name,
            calls=calls,
        )

    # -- queries -------------------------------------------------------

    def cfg(self, fn: FunctionInfo) -> CFG:
        """The (memoised) control-flow graph of one indexed function."""
        key = id(fn.node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(fn.node)
        return self._cfgs[key]

    def summaries(self) -> "SummaryIndex":
        """The (memoised) interprocedural function-summary index.

        Built on first use so shallow runs never pay for it; every deep
        rule family shares one fixpoint instead of recomputing it.
        """
        if self._summaries is None:
            from repro.analysis.summaries import SummaryIndex

            self._summaries = SummaryIndex(self)
        return self._summaries

    def methods_named(self, name: str) -> list[FunctionInfo]:
        """Every class method with this bare name, project-wide."""
        return self._methods_by_name.get(name, [])

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every module-level function with this bare name, project-wide."""
        return self._functions_by_name.get(name, [])

    def class_named(self, name: str) -> Iterator[ClassInfo]:
        for info in self.classes:
            if info.name == name:
                yield info

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function and method."""
        yield from self.functions
        for cls in self.classes:
            yield from cls.methods.values()


def build_project(modules: list[ModuleContext]) -> ProjectContext:
    """Index ``modules`` into one :class:`ProjectContext`."""
    return ProjectContext(modules)
