"""Rule family 8 (OPQ8xx): semantic one-pass verification over the CFG.

The OPQ1xx family is syntactic — "no ``np.sort`` on the stream", "no
``seek(0)``" — and misses the violation the paper actually forbids:
reading the *same* disk-resident stream twice, however it happens.  This
family tracks stream **values** through each function's control-flow
graph:

- A *stream origin* is an assignment of a fresh single-pass source:
  ``reader = RunReader(source, run_size=...)`` (without an explicit
  ``max_passes=`` budget, which declares a sanctioned multi-pass
  algorithm — the same exemption OPQ102 honours) or
  ``runs = something.runs()``.
- A *consumption* is direct iteration (``for run in reader``, a
  comprehension, ``list(reader)``/``sorted(reader)``/...), calling
  ``.runs()`` on it, or passing it into a call.
- A may-analysis (:mod:`repro.analysis.dataflow`) carries the set of
  already-consumed stream names; a consumption reached by its own name's
  fact is a second pass **on some path** — sequential loops, a loop
  inside an enclosing ``while``, a retry branch.

A ``for`` loop's own back edge is *not* a second pass (the loop resumes
one iterator), so OPQ801 judges the loop-head event against predecessor
facts filtered through :func:`~repro.analysis.dataflow.dominators` —
only edges from blocks the head does not dominate count, which is
exactly the enclosing-loop case.

Passing a consumed stream into a call is judged interprocedurally
through the :class:`~repro.analysis.summaries.SummaryIndex`: OPQ802
fires only when a resolved candidate's matched parameter is in its
**transitive** consume set — a callee that merely forwards the stream to
a consumer is itself a consumer, which the v2 one-level oracle could not
see.  Unresolvable callees conservatively *mark* the stream consumed —
so a later direct iteration is still caught — but do not report, keeping
the family quiet on helpers the index cannot see through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.cfg import Op
from repro.analysis.dataflow import EMPTY, Fact, GenKill, dominators, run_forward
from repro.analysis.framework import Finding, ProjectRule, dotted_name
from repro.analysis.project import FunctionInfo, ProjectContext
from repro.analysis.registry import register
from repro.analysis.summaries import EXHAUSTING_BUILTINS as _EXHAUSTING_BUILTINS

__all__ = [
    "StreamOrigin",
    "stream_origins",
    "DoubleConsumeRule",
    "ConsumedReentryRule",
]

#: Constructors (last dotted segment) producing a single-pass source.
_STREAM_CTORS = {"RunReader"}


@dataclass(frozen=True)
class StreamOrigin:
    """One local name bound to a fresh single-pass stream."""

    name: str
    node: ast.AST  # the binding statement
    kind: str  # "ctor" (RunReader(...)) | "runs" (x.runs())


@dataclass(frozen=True)
class _Consumption:
    """One consumption event of a tracked stream inside one op."""

    name: str
    node: ast.AST
    kind: str  # "iterate" | "call"
    callee: str | None = None  # dotted callee for "call" events


def stream_origins(fn: ast.AST) -> dict[str, StreamOrigin]:
    """Local names bound to fresh single-pass streams in ``fn``.

    Only simple ``name = ...`` bindings are tracked; a stream stored into
    an attribute or container escapes the per-function view (the thread
    family owns shared state).
    """
    origins: dict[str, StreamOrigin] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            continue
        if not isinstance(value, ast.Call):
            continue
        name = targets[0].id
        callee = dotted_name(value.func)
        if callee is not None and callee.rsplit(".", 1)[-1] in _STREAM_CTORS:
            if any(kw.arg == "max_passes" for kw in value.keywords):
                continue  # declared multi-pass budget: OPQ102's exemption
            origins[name] = StreamOrigin(name=name, node=node, kind="ctor")
        elif (
            isinstance(value.func, ast.Attribute)
            and value.func.attr == "runs"
        ):
            origins[name] = StreamOrigin(name=name, node=node, kind="runs")
    return origins


def _consumptions_of(op: Op, streams: set[str]) -> list[_Consumption]:
    """Every consumption of a tracked stream performed by one op."""
    events: list[_Consumption] = []
    claimed: set[int] = set()

    def iterate(name_node: ast.Name, anchor: ast.AST) -> None:
        events.append(
            _Consumption(name=name_node.id, node=anchor, kind="iterate")
        )
        claimed.add(id(name_node))

    # The for-iter event itself: direct iteration of a tracked name.
    if op.kind == "for-iter" and isinstance(op.node, (ast.For, ast.AsyncFor)):
        it = op.node.iter
        if isinstance(it, ast.Name) and it.id in streams:
            iterate(it, op.node)

    for root in op.expr_roots():
        for sub in ast.walk(root):
            if isinstance(sub, ast.Call):
                func = sub.func
                # x.runs() re-opens the source: direct consumption.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "runs"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in streams
                ):
                    iterate(func.value, sub)
                    continue
                callee = dotted_name(func)
                exhausting = (
                    callee is not None
                    and callee in _EXHAUSTING_BUILTINS
                )
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in streams
                        and id(arg) not in claimed
                    ):
                        if exhausting:
                            iterate(arg, sub)
                        else:
                            events.append(
                                _Consumption(
                                    name=arg.id,
                                    node=sub,
                                    kind="call",
                                    callee=callee,
                                )
                            )
                            claimed.add(id(arg))
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in sub.generators:
                    if (
                        isinstance(gen.iter, ast.Name)
                        and gen.iter.id in streams
                        and id(gen.iter) not in claimed
                    ):
                        iterate(gen.iter, sub)
    return events


def _killed_names(op: Op, streams: set[str]) -> Fact:
    """Tracked names this op rebinds (a fresh binding resets the pass)."""
    node = op.node
    killed: set[str] = set()
    targets: list[ast.expr] = []
    if op.kind == "stmt":
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
    elif op.kind == "for-iter" and isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and sub.id in streams:
                killed.add(sub.id)
    return frozenset(killed)


class _ConsumedStreams(GenKill):
    """May-analysis: stream names consumed on *some* path so far.

    ``consumes(callee, name, call)`` answers whether passing ``name``
    into ``call`` consumes it — ``True``/``None`` (unknown) gen the fact,
    ``False`` (resolved, non-consuming) does not.
    """

    mode = "may"

    def __init__(
        self,
        streams: set[str],
        consumes: Callable[[str | None, str, ast.Call], bool | None],
    ) -> None:
        self.streams = streams
        self.consumes = consumes

    def gen(self, op: Op) -> Fact:
        names: set[str] = set()
        for event in _consumptions_of(op, self.streams):
            if event.kind == "iterate":
                names.add(event.name)
            else:
                verdict = self.consumes(event.callee, event.name, event.node)
                if verdict is not False:
                    names.add(event.name)
        return frozenset(names)

    def kill(self, op: Op) -> Fact:
        return _killed_names(op, self.streams)


def _double_consumptions(
    project: ProjectContext, fn: FunctionInfo
) -> Iterator[tuple[_Consumption, StreamOrigin]]:
    """Consumption events of ``fn`` whose stream may already be consumed."""
    origins = stream_origins(fn.node)
    if not origins:
        return
    streams = set(origins)
    cfg = project.cfg(fn)
    index = project.summaries()
    analysis = _ConsumedStreams(
        streams,
        lambda callee, name, call: index.consumption_verdict(
            fn, callee, name, call
        )[0],
    )
    in_facts = run_forward(cfg, analysis)
    out_facts = {
        bid: analysis.transfer_block(cfg.blocks[bid].ops, fact)
        for bid, fact in in_facts.items()
    }
    doms = dominators(cfg)
    for bid in sorted(in_facts):
        fact = in_facts[bid]
        for op in cfg.blocks[bid].ops:
            for event in _consumptions_of(op, streams):
                judged = fact
                if event.kind == "iterate" and op.kind == "for-iter":
                    # Ignore this loop's own back edges: predecessors the
                    # head dominates resume the same iterator.
                    judged = EMPTY
                    for pred in cfg.blocks[bid].preds:
                        if pred in out_facts and bid not in doms.get(pred, set()):
                            judged |= out_facts[pred]
                if event.name in judged:
                    yield event, origins[event.name]
            fact = analysis.transfer(op, fact)


def _scoped_functions(
    project: ProjectContext, rule: ProjectRule
) -> Iterator[FunctionInfo]:
    for fn in project.iter_functions():
        if rule.in_scope(fn.module):
            yield fn


@register
class DoubleConsumeRule(ProjectRule):
    """A stream directly iterated again after some path consumed it."""

    rule_id = "one-pass-double-consume"
    code = "OPQ801"
    description = (
        "a single-pass stream (RunReader without max_passes, or .runs()) "
        "is directly iterated on a path that has already consumed it — a "
        "second pass over disk-resident input"
    )
    paper_ref = "Section 2, Lemma 1 (each run is read exactly once)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for fn in _scoped_functions(project, self):
            for event, origin in _double_consumptions(project, fn):
                if event.kind != "iterate":
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=getattr(event.node, "lineno", fn.node.lineno),
                    col=getattr(event.node, "col_offset", 0),
                    message=(
                        f"stream '{event.name}' (bound at line "
                        f"{getattr(origin.node, 'lineno', '?')}) is iterated "
                        f"again in {fn.qualname}; some path has already "
                        "consumed it, so this is a second pass over the "
                        "input"
                    ),
                )


@register
class ConsumedReentryRule(ProjectRule):
    """A consumed stream passed into a call that consumes its parameter."""

    rule_id = "one-pass-consumed-reentry"
    code = "OPQ802"
    description = (
        "a stream that may already be consumed is passed to a function "
        "whose matched parameter is itself iterated — the exhausted "
        "iterator re-enters a consuming call across a call edge"
    )
    paper_ref = "Section 2, Lemma 1 (each run is read exactly once)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        index = project.summaries()
        for fn in _scoped_functions(project, self):
            for event, origin in _double_consumptions(project, fn):
                if event.kind != "call":
                    continue
                verdict, candidate = index.consumption_verdict(
                    fn, event.callee, event.name, event.node  # type: ignore[arg-type]
                )
                if verdict is not True or candidate is None:
                    continue  # unknown callees mark, resolved safe ones pass
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=getattr(event.node, "lineno", fn.node.lineno),
                    col=getattr(event.node, "col_offset", 0),
                    message=(
                        f"stream '{event.name}' (bound at line "
                        f"{getattr(origin.node, 'lineno', '?')}) may already "
                        f"be consumed, yet it is passed to "
                        f"{candidate.qualname}, which consumes its "
                        "parameter — a consumed iterator re-enters a "
                        "consuming call"
                    ),
                )
