"""opaqlint: static enforcement of OPAQ's paper-level disciplines.

The library's guarantees — one pass over the data, bounded memory,
deterministic results, matched SPMD communication, one exception
taxonomy — are *disciplines of the source code*, invisible to unit tests
on small inputs.  This package checks them over the AST:

>>> from repro.analysis import lint_paths
>>> result = lint_paths(["src/repro"])          # doctest: +SKIP
>>> result.clean                                # doctest: +SKIP
True

Run it from the command line as ``opaq lint [paths...]``; see
``docs/static_analysis.md`` for the rule catalogue and the
``# opaq: ignore[rule-id]`` suppression syntax.
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.framework import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Suppressions,
    SyntheticRule,
)
from repro.analysis.project import ProjectContext, build_project
from repro.analysis.registry import all_rules, get_rule, register
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_list,
    render_text,
)
from repro.analysis.runner import LintResult, lint_paths, parse_module
from repro.analysis.rules_async import AsyncModel, build_async_model
from repro.analysis.rules_threads import ThreadModel, build_thread_model
from repro.analysis.sarif import render_sarif
from repro.analysis.summaries import FunctionSummary, SummaryIndex

# Importing the rule modules registers every rule family.
from repro.analysis import rules_onepass  # noqa: F401  (registration)
from repro.analysis import rules_memory  # noqa: F401  (registration)
from repro.analysis import rules_determinism  # noqa: F401  (registration)
from repro.analysis import rules_spmd  # noqa: F401  (registration)
from repro.analysis import rules_exceptions  # noqa: F401  (registration)
from repro.analysis import rules_service  # noqa: F401  (registration)
from repro.analysis import rules_onepass_flow  # noqa: F401  (registration)
from repro.analysis import rules_resources  # noqa: F401  (registration)
from repro.analysis import rules_deadlock  # noqa: F401  (registration)
from repro.analysis import rules_async  # noqa: F401  (registration)
from repro.analysis import rules_meta  # noqa: F401  (registration)

__all__ = [
    "CFG",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "SyntheticRule",
    "ThreadModel",
    "AsyncModel",
    "FunctionSummary",
    "SummaryIndex",
    "LintResult",
    "lint_paths",
    "parse_module",
    "build_cfg",
    "build_project",
    "build_async_model",
    "build_thread_model",
    "all_rules",
    "get_rule",
    "register",
    "load_baseline",
    "write_baseline",
    "render_text",
    "render_json",
    "render_rule_list",
    "render_sarif",
    "JSON_SCHEMA_VERSION",
]
