"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from repro.analysis.registry import all_rules
from repro.analysis.runner import LintResult

__all__ = ["render_text", "render_json", "render_rule_list", "JSON_SCHEMA_VERSION"]

#: Version 2 added ``suppressed_by_rule`` and ``baselined``.
JSON_SCHEMA_VERSION = 2


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    noun = "file" if result.files_checked == 1 else "files"
    extra = f"{result.suppressed} suppressed"
    if result.baselined:
        extra += f", {result.baselined} baselined"
    if result.findings:
        summary = (
            f"{len(result.findings)} finding(s) in {result.files_checked} "
            f"{noun} checked ({extra})"
        )
    else:
        summary = f"clean: {result.files_checked} {noun} checked ({extra})"
    return "\n".join([*lines, summary])


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, versioned)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "suppressed_by_rule": dict(sorted(result.suppressed_by_rule.items())),
        "baselined": result.baselined,
        "count": len(result.findings),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue: id, code, scope, description."""
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope_prefixes) or "src/repro (all)"
        lines.append(f"{rule.code}  {rule.rule_id}")
        lines.append(f"    scope: {scope}")
        lines.append(f"    protects: {rule.paper_ref}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)
