"""Forward dataflow over the per-function CFG.

A tiny classical framework: facts are frozensets of strings, transfer
functions are gen/kill per :class:`~repro.analysis.cfg.Op`, and
:func:`run_forward` iterates a worklist to fixpoint.  Two lattice modes:

``may`` (union at joins)
    "On *some* path ..." — the one-pass rules use it for the set of
    already-consumed streams: a consumption reached by its own fact via a
    back edge is a second pass.
``must`` (intersection at joins)
    "On *every* path ..." — the lock rules use it for the set of held
    locks: a write is safe only when the guarding acquisition dominates
    it, i.e. the lock is in the must-held set at the write.

:func:`iter_ops_with_facts` replays the fixpoint through each reachable
block and yields every op with its in-fact, which is the form the rules
consume: "here is the event, here is what must/may be true just before
it".

:class:`LockTracker` is the shared must-analysis of held locks: a
``with <something ending in .lock/._lock/...>:`` gens the lock's dotted
name, the matching ``with-exit`` kills it.  Exception edges bypass
``with-exit`` by construction, and the intersection at the handler join
correctly drops the lock — an unwound ``with`` has released it.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.cfg import CFG, Op
from repro.analysis.framework import dotted_name

__all__ = [
    "GenKill",
    "dominators",
    "run_forward",
    "iter_ops_with_facts",
    "LockTracker",
    "ThreadLockTracker",
    "lock_names_of",
]

Fact = frozenset[str]
EMPTY: Fact = frozenset()


class GenKill:
    """One forward gen/kill analysis.

    Subclasses (or instances built from callables) define ``gen(op)`` and
    ``kill(op)``; ``mode`` selects the join (``"may"`` union,
    ``"must"`` intersection).
    """

    mode: str = "may"

    def gen(self, op: Op) -> Fact:  # pragma: no cover - trivial default
        return EMPTY

    def kill(self, op: Op) -> Fact:  # pragma: no cover - trivial default
        return EMPTY

    def transfer(self, op: Op, fact: Fact) -> Fact:
        return (fact - self.kill(op)) | self.gen(op)

    def transfer_block(self, ops: list[Op], fact: Fact) -> Fact:
        for op in ops:
            fact = self.transfer(op, fact)
        return fact


def run_forward(
    cfg: CFG,
    analysis: GenKill,
    edge_filter: Callable[[int, int], bool] | None = None,
) -> dict[int, Fact]:
    """Fixpoint of ``analysis`` over ``cfg``; returns block-entry facts.

    Must-mode entries start at TOP (modelled as ``None`` until first
    reached) so unvisited joins do not clamp the intersection to empty.

    ``edge_filter(src, dst)`` — when given — drops edges it returns
    ``False`` for.  The resource-lifetime family uses it to compute the
    *normal-termination* view of a function (exception edges into
    handlers removed) next to the full view; the difference between the
    two is exactly "leaks only on an exception path".
    """
    reachable = cfg.reachable()
    in_facts: dict[int, Fact | None] = {bid: None for bid in reachable}
    in_facts[cfg.entry] = EMPTY
    worklist = [cfg.entry]
    while worklist:
        bid = worklist.pop()
        fact = in_facts[bid]
        if fact is None:  # not yet reached with a concrete fact
            continue
        out = analysis.transfer_block(cfg.blocks[bid].ops, fact)
        for succ in cfg.blocks[bid].succs:
            if succ not in reachable:
                continue
            if edge_filter is not None and not edge_filter(bid, succ):
                continue
            old = in_facts[succ]
            if old is None:
                new: Fact = out
            elif analysis.mode == "must":
                new = old & out
            else:
                new = old | out
            if new != old:
                in_facts[succ] = new
                worklist.append(succ)
    return {bid: (fact if fact is not None else EMPTY) for bid, fact in in_facts.items()}


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """Block id -> set of block ids dominating it (reachable blocks only).

    The classical iterative algorithm.  The one-pass rules use it to tell
    a loop's *own* back edge (the ``for`` protocol resumes one iterator —
    not a second pass) apart from an *enclosing* loop's back edge
    (re-executing the ``for`` statement calls ``iter()`` again — a second
    pass): a predecessor dominated by the loop head is the former.
    """
    reach = cfg.reachable()
    dom: dict[int, set[int]] = {bid: set(reach) for bid in reach}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for bid in sorted(reach):
            if bid == cfg.entry:
                continue
            preds = [p for p in cfg.blocks[bid].preds if p in reach]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:  # only the entry block has no reachable predecessors
                new = set()
            new.add(bid)
            if new != dom[bid]:
                dom[bid] = new
                changed = True
    return dom


def iter_ops_with_facts(
    cfg: CFG, analysis: GenKill
) -> Iterator[tuple[Op, Fact]]:
    """Yield every reachable op with the analysis fact holding before it."""
    entry_facts = run_forward(cfg, analysis)
    for bid in sorted(entry_facts):
        fact = entry_facts[bid]
        for op in cfg.blocks[bid].ops:
            yield op, fact
            fact = analysis.transfer(op, fact)


def lock_names_of(stmt: ast.With | ast.AsyncWith) -> list[str]:
    """Dotted names of the lock-like context managers of one ``with``.

    An item counts as a lock when its context expression's last attribute
    segment contains ``lock``: ``self._lock``, a bare ``lock`` name, or
    ``self._swap_lock.acquire()`` — the trailing call and the ``acquire``
    segment are both stripped, so the tracked name (``self._swap_lock``)
    matches the plain ``with self._swap_lock:`` spelling of the same
    lock.
    """
    names = []
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = dotted_name(expr)
        if name is None:
            continue
        base, _, last = name.rpartition(".")
        if last == "acquire" and base:
            name = base
            last = base.rsplit(".", 1)[-1]
        if "lock" in last.lower():
            names.append(name)
    return names


class LockTracker(GenKill):
    """Must-analysis of held lock names through one function."""

    mode = "must"

    def gen(self, op: Op) -> Fact:
        if op.kind == "with-enter" and isinstance(
            op.node, (ast.With, ast.AsyncWith)
        ):
            return frozenset(lock_names_of(op.node))
        return EMPTY

    def kill(self, op: Op) -> Fact:
        if op.kind == "with-exit" and isinstance(
            op.node, (ast.With, ast.AsyncWith)
        ):
            return frozenset(lock_names_of(op.node))
        return EMPTY


class ThreadLockTracker(GenKill):
    """Must-analysis of held *threading* locks only.

    The spelling is the discriminator: a ``threading.Lock`` is entered
    with a plain ``with lock:``, an ``asyncio.Lock`` with ``async with
    lock:`` (entering an asyncio lock under a plain ``with`` raises at
    runtime).  The OPQ772 hazard — a lock held across a suspension point
    parks every other task contending for it — only exists for the
    thread kind: an asyncio lock held across an ``await`` is ordinary,
    correct usage.
    """

    mode = "must"

    def gen(self, op: Op) -> Fact:
        if op.kind == "with-enter" and isinstance(op.node, ast.With):
            return frozenset(lock_names_of(op.node))
        return EMPTY

    def kill(self, op: Op) -> Fact:
        if op.kind == "with-exit" and isinstance(op.node, ast.With):
            return frozenset(lock_names_of(op.node))
        return EMPTY


#: Convenience alias used by rule modules to build ad-hoc analyses.
TransferFn = Callable[[Op, Fact], Fact]
