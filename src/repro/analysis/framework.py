"""The opaqlint framework: findings, module contexts, suppressions, rules.

OPAQ's guarantees are *disciplines*, not data structures: one pass over the
disk-resident input (Lemma 1 only holds if every run is read exactly once),
at most a run plus the sample lists in memory (the ``r*s + m <= M``
constraint), bit-reproducible execution (the simulated SP-2 experiments are
meaningless otherwise), and matched SPMD communication (the machine model
deadlocks are silent — clocks just stop meaning anything).  This package
checks those disciplines *statically*, over the AST, so a violation fails CI
before it silently rots a guarantee.

A rule inspects one module at a time through a :class:`ModuleContext` and
yields :class:`Finding` objects.  Findings can be silenced at the offending
line with the suppression comment::

    np.sort(window)  # opaq: ignore[one-pass-sort] bounded by Lemma 3

``# opaq: ignore`` with no bracket silences every rule on that line; the
bracket form takes a comma-separated list of rule ids or codes.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.project import ProjectContext

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "SyntheticRule",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``ast.Name``/``ast.Attribute`` chain as ``a.b.c``.

    Returns ``None`` for anything that is not a plain dotted chain
    (subscripts, calls, literals, ...) — rules treat those as opaque.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None

#: Matches the suppression directive, bare or with an ``[id, id2]`` list.
#: (Spelled without the literal text here: this comment is itself a
#: token the scanner reads.)
_SUPPRESS_RE = re.compile(
    r"#\s*opaq:\s*ignore(?:\[(?P<ids>[^\]]*)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    rule_id: str
    code: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (the ``--format json`` reporter)."""
        return {
            "rule": self.rule_id,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: code message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code}[{self.rule_id}] {self.message}"
        )


class Suppressions:
    """Per-line ``# opaq: ignore[...]`` directives of one module.

    Directives are read from real ``COMMENT`` tokens, not raw lines, so a
    directive *quoted inside a docstring* (the framework documents its own
    syntax) is not a live suppression.  Every :meth:`silences` hit is
    recorded; :meth:`unused_lines` reports directives that silenced
    nothing, which the runner turns into OPQ902 findings — a suppression
    whose finding has been fixed is stale noise that would hide a future
    regression on that line.
    """

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._used: set[int] = set()
        for lineno, text in _comment_lines(source):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            raw = match.group("ids")
            if raw is None:
                self._by_line[lineno] = {_ALL}
            else:
                ids = {part.strip() for part in raw.split(",") if part.strip()}
                self._by_line.setdefault(lineno, set()).update(ids)

    def to_table(self) -> dict[str, list[str]]:
        """JSON-serialisable directive table (the cache's view).

        Usage marks are deliberately not serialised: a warm run re-earns
        them by replaying the cached raw findings through
        :meth:`silences`, so OPQ902 judges the *current* run.
        """
        return {
            str(line): sorted(ids) for line, ids in self._by_line.items()
        }

    @classmethod
    def from_table(cls, table: dict[str, list[str]]) -> "Suppressions":
        """Rebuild a directive table without the source text."""
        obj = cls.__new__(cls)
        obj._by_line = {int(line): set(ids) for line, ids in table.items()}
        obj._used = set()
        return obj

    def silences(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching directive."""
        ids = self._by_line.get(finding.line)
        if not ids:
            return False
        if _ALL in ids or finding.rule_id in ids or finding.code in ids:
            self._used.add(finding.line)
            return True
        return False

    @property
    def directive_count(self) -> int:
        """Number of lines carrying a suppression (for reporting)."""
        return len(self._by_line)

    def unused_lines(self) -> list[tuple[int, set[str]]]:
        """``(line, ids)`` of directives that silenced no finding."""
        return sorted(
            (line, ids)
            for line, ids in self._by_line.items()
            if line not in self._used
        )


def _comment_lines(source: str) -> Iterator[tuple[int, str]]:
    """``(lineno, comment_text)`` for each comment token in ``source``.

    Falls back to a raw line scan when tokenisation fails (the runner
    still lints what it can of a file it cannot fully tokenise).
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                yield lineno, text


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module.

    ``package_rel`` is the module's path relative to the ``repro`` package
    root (e.g. ``core/sample_phase.py``) when the file lives inside the
    package, else ``None``.  Rules scope themselves with it; standalone
    files — lint fixtures, scratch scripts — have no package location and
    are **in scope for every rule**, which is what makes the rule fixtures
    in the test suite exercise each rule without faking a package layout.
    """

    path: Path
    source: str
    tree: ast.Module
    package_rel: str | None = None
    suppressions: Suppressions = field(init=False)

    def __post_init__(self) -> None:
        self.suppressions = Suppressions(self.source)

    @classmethod
    def from_path(cls, path: Path) -> "ModuleContext":
        return cls.from_source(path, path.read_text(encoding="utf-8"))

    @classmethod
    def from_source(cls, path: Path, source: str) -> "ModuleContext":
        """Build from already-read text (the cache hashes bytes first)."""
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            package_rel=_package_relative(path),
        )

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=rule.rule_id,
            code=rule.code,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _package_relative(path: Path) -> str | None:
    """Path relative to the innermost ``repro`` package root, if any."""
    resolved = path.resolve()
    parts = resolved.parts
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "repro":
            candidate = Path(*parts[: i - 1], "repro", "__init__.py")
            if candidate.exists():
                return Path(*parts[i:]).as_posix()
    return None


class Rule:
    """Base class for one static check.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope_prefixes`` restricts the rule to package-relative path prefixes
    (``()`` means the whole package); modules outside the package — fixture
    files — are always in scope, see :class:`ModuleContext`.
    """

    #: Stable kebab-case identifier, used in suppressions and reports.
    rule_id: str = "abstract"
    #: Short numeric code (``OPQ###``); the hundreds digit is the family.
    code: str = "OPQ000"
    #: One-line description for ``opaq lint --list-rules`` and the docs.
    description: str = ""
    #: What part of the paper the rule protects (section/lemma reference).
    paper_ref: str = ""
    #: Package-relative path prefixes the rule applies to.
    scope_prefixes: tuple[str, ...] = ()
    #: True for rules that run once over the whole project (deep mode).
    requires_project: bool = False
    #: True for runner-emitted rules with no check() of their own.
    synthetic: bool = False
    #: What a :class:`ProjectRule`'s findings depend on, for the
    #: incremental cache: ``"project"`` (any file change invalidates —
    #: the sound default, since summaries flow through arbitrary call
    #: edges) or ``"scope"`` (only files under ``scope_prefixes``; valid
    #: ONLY for rules whose resolution provably never leaves their
    #: scope, like the thread-model family).
    deep_dependencies: str = "project"

    def in_scope(self, ctx: ModuleContext) -> bool:
        if ctx.package_rel is None:
            return True
        if not self.scope_prefixes:
            return True
        return ctx.package_rel.startswith(self.scope_prefixes)

    def check(
        self, ctx: ModuleContext
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        """Yield :class:`Finding` objects for violations in ``ctx``."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole-project view (``opaq lint --deep``).

    Module rules see one file at a time; project rules run once per lint
    invocation against a :class:`~repro.analysis.project.ProjectContext`
    — the cross-module import graph, class/method tables and call edges —
    and use :meth:`Rule.in_scope` per *module* to decide which classes
    and functions they judge.  They only run in deep mode: building the
    index and the per-function CFGs costs real time, and the properties
    they check (thread roles, interprocedural stream consumption) only
    change when the flow structure does.
    """

    #: The runner only executes these when ``deep=True``.
    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Project rules contribute nothing at module granularity."""
        return iter(())

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        """Yield findings judged over the whole project."""
        raise NotImplementedError


class SyntheticRule(Rule):
    """A rule whose findings are produced by the runner itself.

    Parse failures, unused suppressions and stale baseline entries are
    facts about the *lint run*, not about any AST the rule could walk, so
    the runner emits these findings directly.  Registering them keeps the
    ids listable, selectable and suppressible like any other rule.
    """

    synthetic = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())
