"""Rule family 5 (OPQ5xx): exception hygiene.

Every deliberate error in this library derives from
:class:`repro.errors.ReproError`, so callers catch one base class and the
error taxonomy (ConfigError, SinglePassViolation, EstimationError,
DataError) documents *which discipline* was violated.  Raising a bare
builtin loses that taxonomy; a bare ``except:`` swallows
:class:`~repro.errors.SinglePassViolation` — the runtime half of the
one-pass guarantee — along with everything else.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = ["ForeignRaiseRule", "BareExceptRule", "BroadExceptRule"]

#: Builtin exception types that must not be raised directly; use the
#: corresponding repro.errors type.
_FORBIDDEN_RAISES = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "LookupError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "FloatingPointError",
    "OSError",
    "IOError",
    "EOFError",
    "BufferError",
    "MemoryError",
    "StopIteration",
    "AssertionError",
}
# Deliberately allowed: NotImplementedError (abstract-method idiom),
# SystemExit / KeyboardInterrupt (process control, e.g. CLI entry points).


@register
class ForeignRaiseRule(Rule):
    """Library code raises repro.errors types, not bare builtins."""

    rule_id = "exception-foreign-raise"
    code = "OPQ501"
    description = (
        "raise of a builtin exception; raise the matching repro.errors "
        "type (ConfigError, EstimationError, DataError, ...) instead"
    )
    paper_ref = "errors.py (one catchable taxonomy per violated discipline)"
    scope_prefixes = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name in _FORBIDDEN_RAISES:
                yield ctx.finding(
                    self,
                    node,
                    f"raise {name}: library errors must derive from "
                    "repro.errors.ReproError so callers can catch one base "
                    "class",
                )


@register
class BareExceptRule(Rule):
    """No bare ``except:`` handlers."""

    rule_id = "exception-bare-except"
    code = "OPQ502"
    description = (
        "bare except: swallows SinglePassViolation and every other "
        "invariant error; catch a concrete type"
    )
    paper_ref = "errors.py (SinglePassViolation is load-bearing)"
    scope_prefixes = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: catches everything, including the "
                    "one-pass and configuration invariant errors; name "
                    "the exception type",
                )


#: Handler types as broad as a bare ``except:`` in practice.
_BROAD_CATCHES = {"Exception", "BaseException"}


@register
class BroadExceptRule(Rule):
    """No ``except Exception:`` / ``except BaseException:`` handlers.

    OPQ502 only sees the literally bare form; catching ``Exception`` by
    name swallows exactly the same invariant errors.  The two sanctioned
    last-resort handlers — the wire layer's 500 guard and the shard
    worker's must-not-die loop — carry an explicit
    ``# opaq: ignore[exception-broad-except]`` with their justification,
    which is the point: broadness must be a visible, argued decision.
    """

    rule_id = "exception-broad-except"
    code = "OPQ503"
    description = (
        "except Exception/BaseException is as indiscriminate as a bare "
        "except; catch the concrete repro.errors types (or suppress with "
        "a justification where a last-resort guard is intended)"
    )
    paper_ref = "errors.py (one catchable taxonomy per violated discipline)"
    scope_prefixes = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for type_expr in types:
                name = dotted_name(type_expr)
                if name in _BROAD_CATCHES:
                    yield ctx.finding(
                        self,
                        node,
                        f"except {name}: swallows SinglePassViolation and "
                        "every other invariant error; catch the concrete "
                        "types this block can actually handle",
                    )
