"""Rule family 6 (OPQ6xx): the serving disciplines.

The serving subsystem (:mod:`repro.service`) adds two invariants of its
own, both invisible to unit tests on small inputs:

- **Bounded ingest** — every queue between a producer and a shard worker
  must have a capacity bound.  An unbounded queue converts overload into
  unbounded memory growth; a bounded one converts it into backpressure,
  which is the behaviour the service's guarantees assume.
- **Locked snapshot swaps** — the served snapshot reference is written by
  the snapshotter and read lock-free by query threads.  That is only safe
  while every *assignment* of a shared snapshot slot happens under the
  swap lock; an unlocked write reintroduces the torn-epoch races the
  epoch design exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.registry import register

__all__ = ["UnboundedQueueRule", "SnapshotSwapLockRule"]

#: Queue constructors that take a ``maxsize``-style bound.
_BOUNDED_QUEUES = {"queue.Queue", "Queue", "queue.LifoQueue", "LifoQueue"}

#: Queue constructors that cannot be bounded at all.
_UNBOUNDABLE_QUEUES = {"queue.SimpleQueue", "SimpleQueue"}

#: Shared snapshot slots: attributes swapped by writers and read lock-free.
_SWAP_ATTRS = {"_snapshot", "_merged"}


def _bound_argument(call: ast.Call) -> ast.expr | None:
    """The ``maxsize`` argument of a queue constructor call, if present."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            return keyword.value
    return None


@register
class UnboundedQueueRule(Rule):
    """Every ingest queue in the service layer carries a capacity bound."""

    rule_id = "service-unbounded-queue"
    code = "OPQ601"
    description = (
        "unbounded queue (Queue() without maxsize, SimpleQueue, deque "
        "without maxlen) in the service layer; bounded queues are the "
        "backpressure mechanism"
    )
    paper_ref = "docs/service.md (bounded ingest queues -> backpressure)"
    scope_prefixes = ("service/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _UNBOUNDABLE_QUEUES:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() cannot be bounded; use queue.Queue(maxsize=...) "
                    "so overload becomes backpressure, not memory growth",
                )
                continue
            if name in _BOUNDED_QUEUES:
                bound = _bound_argument(node)
                if bound is None or (
                    isinstance(bound, ast.Constant) and not bound.value
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() without a positive maxsize is unbounded; "
                        "pass the configured queue capacity",
                    )
            elif name in ("collections.deque", "deque") and not any(
                kw.arg == "maxlen" for kw in node.keywords
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() without maxlen grows without bound; pass "
                    "maxlen=... or use a bounded queue.Queue",
                )


def _is_lock_context(item: ast.withitem) -> bool:
    """True when a ``with`` item looks like acquiring a lock."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr)
    return name is not None and "lock" in name.rsplit(".", 1)[-1].lower()


@register
class SnapshotSwapLockRule(Rule):
    """Shared snapshot slots are only assigned under the swap lock."""

    rule_id = "service-snapshot-lock"
    code = "OPQ602"
    description = (
        "assignment to a shared snapshot slot (_snapshot/_merged "
        "attribute) outside a `with <lock>:` block; lock-free readers "
        "require locked writers"
    )
    paper_ref = "docs/service.md (atomic epoch swap under the swap lock)"
    scope_prefixes = ("service/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                # Construction precedes sharing: the object is not yet
                # visible to any reader thread.
                continue
            yield from self._check_body(ctx, node.body, locked=False)

    def _check_body(
        self, ctx: ModuleContext, body: list[ast.stmt], locked: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are visited by the outer walk
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = locked or any(
                    _is_lock_context(item) for item in stmt.items
                )
                yield from self._check_body(ctx, stmt.body, inner)
                continue
            if not locked:
                yield from self._check_statement(ctx, stmt)
            # Recurse into compound statements (if/for/try/while bodies)
            # preserving the current lock state.
            for child_body in _nested_bodies(stmt):
                yield from self._check_body(ctx, child_body, locked)

    def _check_statement(
        self, ctx: ModuleContext, stmt: ast.stmt
    ) -> Iterator[Finding]:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _SWAP_ATTRS
            ):
                yield ctx.finding(
                    self,
                    stmt,
                    f"assignment to {target.attr} outside a `with <lock>:` "
                    "block; swap the served snapshot under the swap lock",
                )


def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """The statement lists nested inside one compound statement."""
    bodies: list[list[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        bodies.extend(handler.body for handler in handlers)
    return bodies
