"""The lint baseline: adopted findings that may only shrink.

Turning the deep families on against a living codebase usually surfaces
debt that cannot all be paid at once.  The baseline file
(``.opaqlint-baseline.json`` by convention) records the *adopted* subset:
a finding matching a baseline entry does not fail the run, it is counted
as ``baselined`` and reported as such.

Matching is a **multiset** over ``(rule_id, path, message)`` — line
numbers are deliberately excluded so an unrelated edit above a baselined
finding does not invalidate the whole file's entries, while two distinct
findings with identical text still need two entries.

The ratchet: an entry no finding matched is *stale*, and staleness is an
error (OPQ903).  Fixed debt must leave the baseline — otherwise the file
silently pre-approves the next regression with the same message.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.framework import Finding
from repro.errors import ConfigError

__all__ = [
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One adopted finding, identified by rule, file and message."""

    rule_id: str
    path: str
    message: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule_id, "path": self.path, "message": self.message}


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Parse a baseline file; raises :class:`ConfigError` on any defect."""
    if not path.is_file():
        raise ConfigError(f"baseline file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline file {path} has unsupported shape or version "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = []
    for raw in payload.get("entries", []):
        try:
            entries.append(
                BaselineEntry(
                    rule_id=raw["rule"], path=raw["path"], message=raw["message"]
                )
            )
        except (TypeError, KeyError) as exc:
            raise ConfigError(
                f"baseline file {path} has a malformed entry: {raw!r}"
            ) from exc
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = [
        BaselineEntry(rule_id=f.rule_id, path=f.path, message=f.message)
        for f in findings
    ]
    payload = {
        "version": BASELINE_VERSION,
        "entries": [e.to_dict() for e in sorted(entries, key=BaselineEntry.key)],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding], entries: Iterable[BaselineEntry]
) -> tuple[list[Finding], int, list[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(remaining, baselined_count, stale_entries)``: findings not
    covered by the baseline, how many were, and entries nothing matched.
    Matching is multiset: two identical findings need two entries.
    """
    budget: Counter[tuple[str, str, str]] = Counter(e.key() for e in entries)
    remaining: list[Finding] = []
    baselined = 0
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            remaining.append(finding)
    stale = [e for e in entries if budget.get(e.key(), 0) > 0]
    # Each surplus key is stale once per unmatched copy; drop duplicates
    # beyond the surplus count.
    stale_out: list[BaselineEntry] = []
    spent: Counter[tuple[str, str, str]] = Counter()
    for entry in stale:
        if spent[entry.key()] < budget[entry.key()]:
            spent[entry.key()] += 1
            stale_out.append(entry)
    return remaining, baselined, stale_out
