"""Rule family 9 (OPQ9xx): facts about the lint run itself.

These are :class:`~repro.analysis.framework.SyntheticRule` subclasses —
the runner emits their findings directly, because the condition is not
visible from any single AST:

OPQ901
    A file that would not parse.  PR 1 aborted the whole run with a
    ``DataError``; one unreadable scratch file should not hide real
    findings in the ninety-nine files that do parse, so the failure is
    now itself a finding and the walk continues.
OPQ902
    A ``# opaq: ignore`` directive that silenced nothing.  A stale
    suppression is worse than noise: it pre-silences the *next* finding
    on that line.  Only judged on full runs (no ``--select``), since a
    partial run legitimately leaves other rules' directives unused.
OPQ903
    A baseline entry no finding matched.  The baseline exists to ratchet
    — adopted debt may only shrink — so a stale entry fails the run
    until the baseline is regenerated with ``--write-baseline``.

Registering them keeps the ids listable (``--list-rules``), selectable
and ignorable like any organic rule.
"""

from __future__ import annotations

from repro.analysis.framework import SyntheticRule
from repro.analysis.registry import register

__all__ = ["ParseErrorRule", "UnusedSuppressionRule", "BaselineStaleRule"]


@register
class ParseErrorRule(SyntheticRule):
    """A linted file failed to parse; emitted by the runner."""

    rule_id = "parse-error"
    code = "OPQ901"
    description = (
        "the file could not be parsed as Python; the rest of the run "
        "continued, but nothing in this file was checked"
    )
    paper_ref = "lint integrity (unchecked code proves nothing)"


@register
class UnusedSuppressionRule(SyntheticRule):
    """A suppression directive that silenced no finding."""

    rule_id = "unused-suppression"
    code = "OPQ902"
    description = (
        "a '# opaq: ignore' directive silenced nothing; stale "
        "suppressions pre-silence the next real finding on their line"
    )
    paper_ref = "lint integrity (suppressions must earn their keep)"


@register
class BaselineStaleRule(SyntheticRule):
    """A baseline entry that matched no current finding."""

    rule_id = "baseline-stale"
    code = "OPQ903"
    description = (
        "a baseline entry matched no finding in this run; the adopted "
        "debt shrank, so the baseline must be regenerated "
        "(--write-baseline) to keep the ratchet tight"
    )
    paper_ref = "lint integrity (baselines ratchet, never drift)"
