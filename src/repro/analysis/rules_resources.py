"""Rule family OPQ25x: resource lifetimes over exception edges.

The paper's guarantees are *resource* guarantees — one pass, bounded
memory, p-way exchange — and the runtime's are too: every
``SharedMemory`` segment the process backend creates must be closed and
unlinked on **all** paths (a stranded named segment outlives the
process), every file/mmap handle must not leak past the pass.  Unit
tests only see the happy path; this family proves the exception paths.

For each function, acquisitions are tracked as gen/kill facts flowing
over the CFG — crucially including the exception edges
:mod:`repro.analysis.cfg` lowers (any op in a ``try`` body may jump to a
handler; a ``raise`` unwinds to the exit).  Two fixpoints per function:

- the **full view** (every edge): a resource live at the exit leaks on
  *some* path;
- the **normal view** (edges into handlers removed, ``raise`` paths
  dropped): a resource live at the exit leaks on a *non-exceptional*
  path.

The difference classifies the finding: live only in the full view is
OPQ251 ("may leak when an exception unwinds"), live in the normal view
is OPQ252 ("release does not post-dominate the acquisition").

Ownership handoffs are explicit: a resource that escapes — returned,
stored into a field or container, its capability captured (a
``SharedMemory`` segment's ``.name`` shipped in a descriptor), or passed
to a callee whose summary says the argument escapes — must carry the
transfer annotation on the escaping statement::

    handle = _ShmArray(segment.name, ...)  # opaq: transfer[segment] consumer unlinks

An annotated transfer ends the local obligation (the new owner's
release is checked where the new owner lives); an unannotated escape is
OPQ253.  Call edges are judged through
:class:`~repro.analysis.summaries.SummaryIndex`: passing a resource to a
function that (transitively) releases its parameter is a release here.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.cfg import CFG, Op
from repro.analysis.dataflow import EMPTY, Fact, GenKill, run_forward
from repro.analysis.framework import (
    Finding,
    ProjectRule,
    _comment_lines,
    dotted_name,
)
from repro.analysis.project import FunctionInfo, ProjectContext
from repro.analysis.registry import register
from repro.analysis.summaries import SummaryIndex, matched_param

__all__ = [
    "Acquisition",
    "EscapeEvent",
    "ResourceFact",
    "function_resource_facts",
    "transfer_directives",
    "ResourceLeakOnExceptionRule",
    "ResourceReleaseNotPostDominatingRule",
    "ResourceEscapesUndocumentedRule",
]

#: Constructor names (last dotted segment) that acquire a tracked
#: resource when their result is bound to a plain name.
#: ``with Ctor(...) as x:`` forms release by construction and are not
#: tracked.
_ACQUIRING_CTORS = frozenset(
    {
        "SharedMemory",
        "open",
        "mmap",
        "TemporaryFile",
        "NamedTemporaryFile",
        "SpooledTemporaryFile",
    }
)

#: The transfer directive: ``# opaq: transfer[name, other] rationale``.
_TRANSFER_RE = re.compile(
    r"#\s*opaq:\s*transfer\[(?P<names>[^\]]*)\]", re.IGNORECASE
)

_SCOPE = ("parallel/", "storage/", "service/", "obs/")


def transfer_directives(source: str) -> dict[int, set[str]]:
    """``line -> names`` of every ownership-transfer directive.

    Directives are read from real comment tokens (like suppressions), so
    the syntax documented in a docstring is not a live transfer.
    """
    table: dict[int, set[str]] = {}
    for lineno, text in _comment_lines(source):
        match = _TRANSFER_RE.search(text)
        if match is None:
            continue
        names = {
            part.strip()
            for part in match.group("names").split(",")
            if part.strip()
        }
        if names:
            table.setdefault(lineno, set()).update(names)
    return table


@dataclass(frozen=True)
class Acquisition:
    """One resource bound to a local name (or a field) in one function."""

    token: str  # "<name>@<line>", unique per acquisition site
    name: str  # the bound local name ("segment") or field ("self._file")
    kind: str  # shm-create | shm-attach | file | mmap | tempfile | enter
    node: ast.stmt  # the binding statement (finding anchor)
    line: int

    @property
    def describe(self) -> str:
        labels = {
            "shm-create": "SharedMemory segment (created)",
            "shm-attach": "SharedMemory segment (attached)",
            "file": "file handle",
            "mmap": "mmap",
            "tempfile": "temporary file",
            "enter": "context-manager resource",
        }
        return labels.get(self.kind, self.kind)


@dataclass(frozen=True)
class EscapeEvent:
    """One point where a tracked resource's ownership leaves the scope."""

    token: str
    node: ast.AST
    line: int
    via: str  # "return" | "yield" | "store" | "capability" | "call"
    sanctioned: bool  # a transfer directive covers the statement
    detail: str = ""


@dataclass
class ResourceFact:
    """Everything the analysis derived about one acquisition."""

    acquisition: Acquisition
    release_lines: tuple[int, ...] = ()
    escapes: list[EscapeEvent] = field(default_factory=list)
    #: Live at the function exit considering every edge.
    leaks_on_some_path: bool = False
    #: Live at the function exit on a non-exceptional path.
    leaks_on_normal_path: bool = False

    @property
    def released_on_all_paths(self) -> bool:
        return not (self.leaks_on_some_path or self.leaks_on_normal_path)

    @property
    def exception_safe(self) -> bool:
        return not self.leaks_on_some_path


@dataclass(frozen=True)
class _OpEffect:
    """Precomputed transfer behaviour of one op for the flow analyses."""

    gen: frozenset[str]
    kill: frozenset[str]
    escapes: tuple[EscapeEvent, ...]
    is_raise: bool
    #: The op evaluates something that can raise (a call, a subscript, an
    #: attribute access).  A resource live across such an op *outside any
    #: try* unwinds straight out of the function — the CFG only has
    #: exception edges for ops under a handler, so the full-view fixpoint
    #: alone cannot see this leak.
    may_raise: bool


def _classify_ctor(call: ast.Call) -> str | None:
    """The resource kind acquired by a constructor call, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "__enter__":
        return "enter"
    callee = dotted_name(func)
    if callee is None:
        return None
    last = callee.rsplit(".", 1)[-1]
    if last not in _ACQUIRING_CTORS:
        return None
    if last == "SharedMemory":
        for kw in call.keywords:
            if kw.arg == "create" and isinstance(kw.value, ast.Constant):
                if kw.value.value:
                    return "shm-create"
        return "shm-attach"
    if last == "open":
        return "file"
    if last == "mmap":
        return "mmap"
    return "tempfile"


def _kill_matches(kind: str, method: str) -> bool:
    """Does calling ``method`` on a resource of ``kind`` release it?

    A *created* shared-memory segment is only released by ``unlink()``
    (``close()`` merely detaches the mapping; the named segment
    persists) — the asymmetry this family exists to catch.
    """
    if method == "unlink":
        return kind in ("shm-create", "shm-attach")
    if kind == "shm-create":
        return False
    return method in ("close", "__exit__", "shutdown")


class _ResourceFlow(GenKill):
    """May-analysis of live (unreleased, unescaped) resource tokens."""

    mode = "may"

    def __init__(
        self, effects: dict[int, _OpEffect], all_tokens: Fact, normal: bool
    ) -> None:
        self.effects = effects
        self.all_tokens = all_tokens
        #: In the normal view a ``raise`` path is not a normal exit, so
        #: its facts are dropped before they can reach the exit block.
        self.normal = normal

    def gen(self, op: Op) -> Fact:
        effect = self.effects.get(id(op))
        return effect.gen if effect is not None else EMPTY

    def kill(self, op: Op) -> Fact:
        effect = self.effects.get(id(op))
        if effect is None:
            return EMPTY
        if self.normal and effect.is_raise:
            return self.all_tokens
        return effect.kill


class _FunctionResourceAnalysis:
    """Shared machinery for the three OPQ25x rules and the golden tests."""

    def __init__(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        index: SummaryIndex,
    ) -> None:
        self.project = project
        self.fn = fn
        self.index = index
        self.transfers = transfer_directives(fn.module.source)
        self.local_acqs: list[Acquisition] = []
        self.field_acqs: list[Acquisition] = []
        self._find_acquisitions()
        self.tokens_by_name: dict[str, set[str]] = {}
        self.kinds: dict[str, str] = {}
        for acq in self.local_acqs:
            self.tokens_by_name.setdefault(acq.name, set()).add(acq.token)
            self.kinds[acq.token] = acq.kind
        self.release_lines: dict[str, set[int]] = {}

    # -- acquisition discovery ----------------------------------------

    def _find_acquisitions(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if len(targets) != 1 or not isinstance(value, ast.Call):
                continue
            kind = _classify_ctor(value)
            if kind is None:
                continue
            target = targets[0]
            if isinstance(target, ast.Name):
                self.local_acqs.append(
                    Acquisition(
                        token=f"{target.id}@{node.lineno}",
                        name=target.id,
                        kind=kind,
                        node=node,
                        line=node.lineno,
                    )
                )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                name = f"self.{target.attr}"
                self.field_acqs.append(
                    Acquisition(
                        token=f"{name}@{node.lineno}",
                        name=name,
                        kind=kind,
                        node=node,
                        line=node.lineno,
                    )
                )

    # -- per-op effects ------------------------------------------------

    def _sanctioned(self, stmt: ast.AST, name: str) -> bool:
        """A transfer directive on the statement names this resource."""
        first = getattr(stmt, "lineno", None)
        last = getattr(stmt, "end_lineno", None) or first
        if first is None:
            return False
        for line in range(first, last + 1):
            names = self.transfers.get(line)
            if names and (
                name in names or name.rsplit(".", 1)[-1] in names or "*" in names
            ):
                return True
        return False

    def _tokens_of(self, name: str) -> frozenset[str]:
        return frozenset(self.tokens_by_name.get(name, ()))

    def _op_effect(self, op: Op) -> _OpEffect:
        gen: set[str] = set()
        kill: set[str] = set()
        escapes: list[EscapeEvent] = []
        node = op.node
        is_raise = op.kind == "stmt" and isinstance(node, ast.Raise)

        # Acquisitions and rebindings anchor on the statement op itself.
        if op.kind == "stmt":
            for acq in self.local_acqs:
                if acq.node is node:
                    gen.add(acq.token)
            self._stmt_effects(node, kill, escapes)

        if op.kind == "with-exit" and isinstance(
            node, (ast.With, ast.AsyncWith)
        ):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    self._method_kill(
                        item.context_expr.id, "__exit__", node.lineno, kill
                    )

        for root in op.expr_roots():
            for sub in ast.walk(root):
                if isinstance(sub, ast.Call):
                    self._call_effects(sub, node, kill, escapes)
                elif (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "name"
                    and isinstance(sub.value, ast.Name)
                ):
                    self._capability_effects(sub, node, kill, escapes)

        may_raise = any(
            isinstance(sub, (ast.Call, ast.Subscript, ast.Attribute))
            for root in op.expr_roots()
            for sub in ast.walk(root)
        )
        return _OpEffect(
            gen=frozenset(gen),
            kill=frozenset(kill),
            escapes=tuple(escapes),
            is_raise=is_raise,
            may_raise=may_raise,
        )

    def _stmt_effects(
        self, node: ast.AST, kill: set[str], escapes: list[EscapeEvent]
    ) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = getattr(node, "value", None)
            for target in targets:
                if isinstance(target, ast.Name):
                    # Rebinding drops older acquisitions of the name —
                    # except the one this very statement creates.
                    for token in self._tokens_of(target.id):
                        if token != f"{target.id}@{node.lineno}":
                            kill.add(token)
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in _whole_value_names(value):
                        for token in self._tokens_of(name):
                            kill.add(token)
                            escapes.append(
                                EscapeEvent(
                                    token=token,
                                    node=node,
                                    line=node.lineno,
                                    via="store",
                                    sanctioned=self._sanctioned(node, name),
                                    detail="stored into a field/container",
                                )
                            )
        elif isinstance(node, ast.Return) or (
            isinstance(node, ast.Expr)
            and isinstance(node.value, (ast.Yield, ast.YieldFrom))
        ):
            value = (
                node.value
                if isinstance(node, ast.Return)
                else node.value.value  # type: ignore[union-attr]
            )
            via = "return" if isinstance(node, ast.Return) else "yield"
            for name in _whole_value_names(value):
                for token in self._tokens_of(name):
                    kill.add(token)
                    escapes.append(
                        EscapeEvent(
                            token=token,
                            node=node,
                            line=node.lineno,
                            via=via,
                            sanctioned=self._sanctioned(node, name),
                            detail=f"ownership leaves via {via}",
                        )
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    kill.update(self._tokens_of(target.id))

    def _method_kill(
        self, name: str, method: str, line: int, kill: set[str]
    ) -> None:
        for token in self._tokens_of(name):
            if _kill_matches(self.kinds[token], method):
                kill.add(token)
                self.release_lines.setdefault(token, set()).add(line)

    def _call_effects(
        self,
        call: ast.Call,
        stmt: ast.AST,
        kill: set[str],
        escapes: list[EscapeEvent],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            receiver = func.value.id
            if receiver in self.tokens_by_name and func.attr in (
                "close",
                "unlink",
                "__exit__",
                "shutdown",
                "release",
            ):
                method = "close" if func.attr == "release" else func.attr
                self._method_kill(receiver, method, call.lineno, kill)
                return
        callee = dotted_name(func)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if not (
                isinstance(arg, ast.Name) and arg.id in self.tokens_by_name
            ):
                continue
            name = arg.id
            if self._callee_releases(callee, name, call):
                for token in self._tokens_of(name):
                    kill.add(token)
                    self.release_lines.setdefault(token, set()).add(
                        call.lineno
                    )
            elif self.index.escapes_argument(self.fn, callee, name, call):
                for token in self._tokens_of(name):
                    kill.add(token)
                    escapes.append(
                        EscapeEvent(
                            token=token,
                            node=call,
                            line=call.lineno,
                            via="call",
                            sanctioned=self._sanctioned(stmt, name),
                            detail=f"passed to {callee or '<call>'}, "
                            "which lets it escape",
                        )
                    )

    def _callee_releases(
        self, callee: str | None, name: str, call: ast.Call
    ) -> bool:
        """Every candidate releases the matched parameter (kind-aware)."""
        if callee is None:
            return False
        candidates = self.index.resolve(self.fn, callee)
        if not candidates:
            return False
        needs_unlink = any(
            self.kinds[t] == "shm-create" for t in self._tokens_of(name)
        )
        for candidate in candidates:
            param = matched_param(candidate, name, call)
            if param is None:
                return False
            summary = self.index.summary_of(candidate)
            if needs_unlink:
                if param not in summary.unlinks_params:
                    return False
            elif param not in summary.releases_params:
                return False
        return True

    def _capability_effects(
        self,
        attr: ast.Attribute,
        stmt: ast.AST,
        kill: set[str],
        escapes: list[EscapeEvent],
    ) -> None:
        """``segment.name`` read on a created segment: identity handoff.

        Shipping the segment's *name* is how ownership of a named
        segment actually moves between processes — the descriptor is a
        capability.  It must be an annotated transfer; otherwise the
        local release obligation silently evaporates.
        """
        assert isinstance(attr.value, ast.Name)
        name = attr.value.id
        tokens = [
            t for t in self._tokens_of(name) if self.kinds[t] == "shm-create"
        ]
        for token in tokens:
            kill.add(token)
            escapes.append(
                EscapeEvent(
                    token=token,
                    node=attr,
                    line=attr.lineno,
                    via="capability",
                    sanctioned=self._sanctioned(stmt, name),
                    detail="its segment name (the unlink capability) is "
                    "captured",
                )
            )

    # -- the fixpoints -------------------------------------------------

    def run(self) -> list[ResourceFact]:
        facts = [
            ResourceFact(acquisition=acq)
            for acq in self.local_acqs + self.field_acqs
        ]
        by_token = {f.acquisition.token: f for f in facts}

        for acq in self.field_acqs:
            # A field store at acquisition is an escape at birth: the
            # object owns the resource now, which is fine exactly when
            # it is declared.
            by_token[acq.token].escapes.append(
                EscapeEvent(
                    token=acq.token,
                    node=acq.node,
                    line=acq.line,
                    via="store",
                    sanctioned=self._sanctioned(acq.node, acq.name),
                    detail=f"bound to field {acq.name} at construction",
                )
            )

        if not self.local_acqs:
            return facts

        cfg = self.project.cfg(self.fn)
        effects: dict[int, _OpEffect] = {}
        reachable = cfg.reachable()
        for bid in reachable:
            for op in cfg.blocks[bid].ops:
                effects[id(op)] = self._op_effect(op)
        all_tokens = frozenset(t for acq in self.local_acqs for t in [acq.token])

        full_flow = _ResourceFlow(effects, all_tokens, normal=False)
        full = self._run_full(cfg, full_flow)
        normal_flow = _ResourceFlow(effects, all_tokens, normal=True)
        normal = run_forward(
            cfg,
            normal_flow,
            edge_filter=lambda src, dst: cfg.blocks[dst].label != "except",
        )

        unwind_leaks = self._replay_full(cfg, full, full_flow, by_token)

        live_full = full.get(cfg.exit, EMPTY)
        live_normal = normal.get(cfg.exit, EMPTY)
        for acq in self.local_acqs:
            fact = by_token[acq.token]
            fact.release_lines = tuple(
                sorted(self.release_lines.get(acq.token, ()))
            )
            fact.leaks_on_normal_path = acq.token in live_normal
            fact.leaks_on_some_path = not fact.leaks_on_normal_path and (
                acq.token in live_full or acq.token in unwind_leaks
            )
        return facts

    def _run_full(
        self, cfg: CFG, flow: _ResourceFlow
    ) -> dict[int, Fact]:
        """Full-view fixpoint with edge-precise exception facts.

        :func:`~repro.analysis.dataflow.run_forward` propagates one
        out-fact to every successor, so an acquisition whose *own*
        constructor raises would flow its freshly gen'd token into the
        handler — as if the binding both succeeded and failed.  Here an
        edge into a handler carries the union of the block's *pre-op*
        states instead: every point an exception could actually have
        left from, none of which includes the not-yet-bound token of the
        block's final op.
        """
        reachable = cfg.reachable()
        in_facts: dict[int, Fact | None] = {bid: None for bid in reachable}
        in_facts[cfg.entry] = EMPTY
        worklist = [cfg.entry]
        while worklist:
            bid = worklist.pop()
            fact = in_facts[bid]
            if fact is None:
                continue
            states = [fact]
            for op in cfg.blocks[bid].ops:
                states.append(flow.transfer(op, states[-1]))
            out_normal = states[-1]
            out_except: Fact = frozenset().union(*states[:-1]) if len(
                states
            ) > 1 else states[0]
            for succ in cfg.blocks[bid].succs:
                if succ not in reachable:
                    continue
                out = (
                    out_except
                    if cfg.blocks[succ].label == "except"
                    else out_normal
                )
                old = in_facts[succ]
                new = out if old is None else old | out
                if new != old:
                    in_facts[succ] = new
                    worklist.append(succ)
        return {
            bid: fact if fact is not None else EMPTY
            for bid, fact in in_facts.items()
        }

    def _replay_full(
        self,
        cfg: CFG,
        entry_facts: dict[int, Fact],
        flow: _ResourceFlow,
        by_token: dict[str, ResourceFact],
    ) -> set[str]:
        """Replay the full view op by op.

        Attaches escape events where the resource was actually live, and
        returns the tokens live across an unguarded may-raise op — the
        implicit-unwind leaks the block-level fixpoint cannot represent
        (no try, so no exception edge exists to carry the fact out).
        """
        seen: set[tuple[str, int, str]] = set()
        unwind_leaks: set[str] = set()
        for bid in sorted(entry_facts):
            guarded = any(
                cfg.blocks[succ].label in ("except", "finally")
                for succ in cfg.blocks[bid].succs
            )
            # Inside a handler/finally suite the function is already on
            # its cleanup path; demanding the cleanup's own calls be
            # exception-proof in turn would be a second-order obligation
            # no release sequence could meet.
            cleanup = cfg.blocks[bid].label in ("except", "finally")
            fact = entry_facts[bid]
            for op in cfg.blocks[bid].ops:
                effect = flow.effects.get(id(op))
                if effect is not None:
                    for event in effect.escapes:
                        key = (event.token, event.line, event.via)
                        if event.token in fact and key not in seen:
                            seen.add(key)
                            by_token[event.token].escapes.append(event)
                    if effect.may_raise and not guarded and not cleanup:
                        # Live here, not released by this very op, and an
                        # unwind has nowhere to go but out of the frame.
                        unwind_leaks.update(fact - effect.kill)
                fact = flow.transfer(op, fact)
        return unwind_leaks


def function_resource_facts(
    project: ProjectContext, fn: FunctionInfo
) -> list[ResourceFact]:
    """Resource-lifetime facts for one function (golden-test surface)."""
    return _FunctionResourceAnalysis(project, fn, project.summaries()).run()


def _whole_value_names(value: ast.expr | None) -> list[str]:
    """Names handed over as whole objects by a value expression."""
    if value is None:
        return []
    names: list[str] = []
    stack: list[ast.expr] = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(v for v in node.values if v is not None)
    return names


def _scoped_functions(
    project: ProjectContext, rule: ProjectRule
) -> Iterator[FunctionInfo]:
    for fn in project.iter_functions():
        if rule.in_scope(fn.module):
            yield fn


class _ResourceRule(ProjectRule):
    """Shared driver: analyse every scoped function once per rule."""

    scope_prefixes = _SCOPE

    def _iter_facts(
        self, project: ProjectContext
    ) -> Iterator[tuple[FunctionInfo, ResourceFact]]:
        for fn in _scoped_functions(project, self):
            for fact in function_resource_facts(project, fn):
                yield fn, fact


@register
class ResourceLeakOnExceptionRule(_ResourceRule):
    """A resource that leaks only when an exception unwinds (OPQ251)."""

    rule_id = "resource-leak-exception-path"
    code = "OPQ251"
    description = (
        "an acquired resource (SharedMemory/open/mmap/tempfile) is "
        "released on the normal path but leaks when an exception unwinds "
        "between acquisition and release; release it in try/finally or "
        "an except block"
    )
    paper_ref = "section 4 (SPMD exchange must not strand segments)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for fn, fact in self._iter_facts(project):
            if not fact.leaks_on_some_path:
                continue
            acq = fact.acquisition
            yield Finding(
                rule_id=self.rule_id,
                code=self.code,
                path=str(fn.module.path),
                line=acq.line,
                col=acq.node.col_offset,
                message=(
                    f"{acq.describe} '{acq.name}' acquired here may leak "
                    f"when an exception unwinds out of {fn.qualname}: no "
                    "release on the exception path — wrap the hand-off in "
                    "try/finally or release in an except block"
                ),
            )


@register
class ResourceReleaseNotPostDominatingRule(_ResourceRule):
    """A resource whose release misses some normal path (OPQ252)."""

    rule_id = "resource-release-not-postdominating"
    code = "OPQ252"
    description = (
        "an acquired resource's close()/unlink() does not post-dominate "
        "the acquisition: some non-exceptional path reaches the function "
        "exit with the resource still live"
    )
    paper_ref = "section 4 (SPMD exchange must not strand segments)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for fn, fact in self._iter_facts(project):
            if not fact.leaks_on_normal_path:
                continue
            acq = fact.acquisition
            if fact.release_lines:
                detail = (
                    f"released at line"
                    f"{'s' if len(fact.release_lines) > 1 else ''} "
                    f"{', '.join(str(li) for li in fact.release_lines)}, "
                    "but the release does not post-dominate the "
                    "acquisition — some path skips it"
                )
            else:
                needs = (
                    "unlink()"
                    if acq.kind == "shm-create"
                    else "close()"
                )
                detail = f"never released ({needs} required)"
            yield Finding(
                rule_id=self.rule_id,
                code=self.code,
                path=str(fn.module.path),
                line=acq.line,
                col=acq.node.col_offset,
                message=(
                    f"{acq.describe} '{acq.name}' acquired here is not "
                    f"released on every path of {fn.qualname}: {detail}"
                ),
            )


@register
class ResourceEscapesUndocumentedRule(_ResourceRule):
    """A resource escapes without a documented transfer (OPQ253)."""

    rule_id = "resource-escape-undocumented"
    code = "OPQ253"
    description = (
        "a resource's ownership leaves the acquiring function (returned, "
        "stored into a field, capability captured, or passed to an "
        "escaping callee) without an '# opaq: transfer[name]' annotation "
        "naming the handoff"
    )
    paper_ref = "section 4 (descriptor handoff is an ownership transfer)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for fn, fact in self._iter_facts(project):
            acq = fact.acquisition
            for event in fact.escapes:
                if event.sanctioned:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    code=self.code,
                    path=str(fn.module.path),
                    line=event.line,
                    col=getattr(event.node, "col_offset", 0),
                    message=(
                        f"{acq.describe} '{acq.name}' (acquired at line "
                        f"{acq.line}) escapes {fn.qualname}: "
                        f"{event.detail}; document the ownership transfer "
                        f"with '# opaq: transfer[{acq.name}]' on this "
                        "statement and release it in the new owner"
                    ),
                )
