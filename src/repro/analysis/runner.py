"""Walk files, apply every in-scope rule, filter suppressions.

The runner is the only place findings are *about the run* rather than
about code: parse failures (OPQ901) no longer abort the walk — one
unreadable file becomes one finding and the other files still get
checked — unused suppressions (OPQ902) are judged once every enabled
rule has had its chance to use them, and baseline bookkeeping (OPQ903)
happens last, against the post-suppression findings.

Deep mode (``opaq lint --deep``) additionally builds the project index
over every module that parsed and runs the
:class:`~repro.analysis.framework.ProjectRule` families (OPQ7xx/OPQ8xx).
Their findings still honour per-line suppressions in the module they
point into.

``jobs > 1`` fans the per-file shallow analysis over worker processes.
The parent keeps everything order-dependent to itself — the walk, cache
lookups, the admit pipeline, the deep phase — and the workers only ever
compute a pure function of one file's bytes (its raw, pre-suppression
module-rule findings).  Worker results re-enter the parent through the
exact replay path a cache hit uses, in walk order, so parallel output is
byte-identical to a serial run by construction rather than by test.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import (
    AnalysisCache,
    CachedModule,
    CacheStats,
    cache_fingerprint,
    hash_bytes,
)
from repro.analysis.framework import (
    Finding,
    ModuleContext,
    ProjectRule,
    Suppressions,
)
from repro.analysis.project import ProjectContext, build_project
from repro.analysis.registry import all_rules, get_rule, resolve_rule_ids
from repro.errors import ConfigError

__all__ = ["LintResult", "lint_paths", "iter_python_files", "parse_module"]

#: What the suppression/OPQ902 pipeline needs per file: a real parsed
#: context, or a cache-hit replay stub.
_CtxLike = Union[ModuleContext, CachedModule]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


class LintResult:
    """Findings plus the bookkeeping reporters need."""

    def __init__(
        self,
        findings: list[Finding],
        files_checked: int,
        suppressed: int,
        suppressed_by_rule: dict[str, int] | None = None,
        baselined: int = 0,
        cache_stats: CacheStats | None = None,
    ) -> None:
        self.findings = findings
        self.files_checked = files_checked
        self.suppressed = suppressed
        #: rule_id -> how many of its findings inline directives silenced.
        self.suppressed_by_rule = suppressed_by_rule or {}
        #: Findings covered by the baseline file (not in ``findings``).
        self.baselined = baselined
        #: Reuse counters when ``cache=`` was given, else ``None``.
        #: Deliberately absent from every reporter: cached and cold runs
        #: must render byte-identically.
        self.cache_stats = cache_stats

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, in order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise ConfigError(f"{path} is not a Python file")
            yield path
        else:
            raise ConfigError(f"no such file or directory: {path}")


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    deep: bool = False,
    baseline: Path | None = None,
    cache: str | Path | None = None,
    jobs: int = 1,
) -> LintResult:
    """Run every registered rule over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories; directories are walked recursively.
    select:
        Rule ids/codes to run exclusively (default: all).
    ignore:
        Rule ids/codes to skip.
    deep:
        Also build the project index and run the flow/thread families
        (:class:`~repro.analysis.framework.ProjectRule`).
    baseline:
        Baseline file to subtract adopted findings against; its stale
        entries become OPQ903 findings.
    cache:
        Path of an incremental cache file (see
        :mod:`repro.analysis.cache`).  Unchanged files replay their
        cached raw findings; project rules whose dependency digest is
        unchanged replay theirs.  Output is byte-identical to a cold
        run; the file is created/updated at the end of the run.
    jobs:
        Worker processes for the per-file shallow analysis (default 1 =
        in-process).  Composes with ``cache``: only cache misses are
        shipped to workers, and their results are stored like any cold
        analysis.  Output is byte-identical for every job count.

    Returns
    -------
    LintResult
        Findings sorted by location, with suppression counts.
    """
    selected = resolve_rule_ids(list(select) if select else None)
    ignored = resolve_rule_ids(list(ignore) if ignore else None) or set()

    def enabled(rule_id: str) -> bool:
        return (
            selected is None or rule_id in selected
        ) and rule_id not in ignored

    module_rules = [
        rule
        for rule in all_rules()
        if not rule.synthetic
        and not rule.requires_project
        and enabled(rule.rule_id)
    ]
    project_rules = [
        rule
        for rule in all_rules()
        if isinstance(rule, ProjectRule) and enabled(rule.rule_id)
    ]

    analysis_cache: AnalysisCache | None = None
    stats: CacheStats | None = None
    if cache is not None:
        analysis_cache = AnalysisCache(
            Path(cache),
            cache_fingerprint(selected, ignored, deep, all_rules()),
        )
        stats = CacheStats()

    findings: list[Finding] = []
    contexts: dict[str, _CtxLike] = {}
    #: Fully parsed contexts only (the project index's input).
    parsed: dict[str, ModuleContext] = {}
    #: Raw bytes kept by the parallel walk so a deep-phase upgrade can
    #: re-parse from memory instead of re-reading the file.
    sources: dict[str, bytes] = {}
    file_hashes: dict[str, str] = {}
    files_checked = 0
    suppressed = 0
    suppressed_by_rule: dict[str, int] = {}

    def admit(ctx: _CtxLike | None, finding: Finding) -> None:
        nonlocal suppressed
        if ctx is not None and ctx.suppressions.silences(finding):
            suppressed += 1
            suppressed_by_rule[finding.rule_id] = (
                suppressed_by_rule.get(finding.rule_id, 0) + 1
            )
        else:
            findings.append(finding)

    def admit_parse_failure(
        path: Path, message: str, line: int, col: int
    ) -> None:
        if enabled("parse-error"):
            rule = get_rule("parse-error")
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    code=rule.code,
                    path=str(path),
                    line=line,
                    col=col,
                    message=f"cannot parse file: {message}",
                )
            )

    def parse_failure(path: Path, exc: Exception) -> None:
        # One unreadable file is one finding, not a dead run.
        # (ValueError covers null bytes, UnicodeDecodeError bad
        # encodings; neither carries a location.)
        admit_parse_failure(path, *_failure_facts(exc))

    if jobs > 1:
        # Parallel shallow analysis.  The walk below builds an ordered
        # plan; cache misses run in worker processes; the replay loop
        # then admits everything in walk order — exactly the order a
        # serial run produces, so the final stable sort breaks ties the
        # same way.
        plan: list[tuple[str, object]] = []
        pending: list[tuple[str, bytes]] = []
        for path in iter_python_files(paths):
            files_checked += 1
            key = str(path)
            if stats is not None:
                stats.files_total += 1
            try:
                data = path.read_bytes()
            except OSError as exc:
                plan.append(("fail", (path, *_failure_facts(exc))))
                continue
            sources[key] = data
            if analysis_cache is not None and stats is not None:
                digest = hash_bytes(data)
                file_hashes[key] = digest
                hit = analysis_cache.lookup_file(key, digest)
                if hit is not None:
                    stats.files_reused += 1
                    plan.append(("hit", hit))
                    continue
            plan.append(("job", key))
            pending.append((key, data))
        results = _run_jobs(pending, jobs, selected, ignored)
        for kind, payload in plan:
            if kind == "fail":
                failed_path, message, line, col = payload  # type: ignore[misc]
                admit_parse_failure(failed_path, message, line, col)
            elif kind == "hit":
                hit = payload  # type: ignore[assignment]
                contexts[str(hit.path)] = hit
                for finding in hit.findings:
                    admit(hit, finding)
            else:
                key = payload  # type: ignore[assignment]
                outcome = results[key]
                if outcome[0] == "err":
                    _, message, line, col = outcome
                    admit_parse_failure(Path(key), message, line, col)
                    continue  # never cached: must re-judge until it parses
                _, package_rel, table, raw = outcome
                stub = CachedModule(
                    path=Path(key),
                    package_rel=package_rel,
                    suppressions=Suppressions.from_table(table),
                    findings=list(raw),
                )
                contexts[key] = stub
                for finding in raw:
                    admit(stub, finding)
                if analysis_cache is not None:
                    analysis_cache.store_file(
                        key, file_hashes[key], stub, raw
                    )
    else:
        for path in iter_python_files(paths):
            files_checked += 1
            key = str(path)
            if analysis_cache is not None and stats is not None:
                stats.files_total += 1
                try:
                    data = path.read_bytes()
                except OSError as exc:
                    parse_failure(path, exc)
                    continue
                digest = hash_bytes(data)
                file_hashes[key] = digest
                hit = analysis_cache.lookup_file(key, digest)
                if hit is not None:
                    stats.files_reused += 1
                    contexts[key] = hit
                    for finding in hit.findings:
                        admit(hit, finding)
                    continue
                try:
                    ctx = ModuleContext.from_source(
                        path, data.decode("utf-8")
                    )
                except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
                    parse_failure(path, exc)
                    continue  # never cached: must re-judge until it parses
            else:
                try:
                    ctx = ModuleContext.from_path(path)
                except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
                    parse_failure(path, exc)
                    continue
            contexts[key] = ctx
            parsed[key] = ctx
            raw = []
            for rule in module_rules:
                if not rule.in_scope(ctx):
                    continue
                raw.extend(rule.check(ctx))
            for finding in raw:
                admit(ctx, finding)
            if analysis_cache is not None:
                analysis_cache.store_file(key, file_hashes[key], ctx, raw)

    if deep and project_rules and contexts:
        package_rels = {
            key: ctx.package_rel for key, ctx in contexts.items()
        }
        deep_plan: list[
            tuple[ProjectRule, str | None, list[Finding] | None]
        ] = []
        any_miss = False
        for rule in project_rules:
            dep: str | None = None
            replay: list[Finding] | None = None
            if analysis_cache is not None and stats is not None:
                stats.deep_rules_total += 1
                dep = analysis_cache.dep_digest(
                    rule, file_hashes, package_rels
                )
                replay = analysis_cache.lookup_deep(rule.rule_id, dep)
                if replay is not None:
                    stats.deep_rules_reused += 1
            if replay is None:
                any_miss = True
            deep_plan.append((rule, dep, replay))

        project: ProjectContext | None = None
        if any_miss:
            # A deep miss needs the whole project index; re-parse the
            # cache-hit files (they hashed identical to a prior clean
            # parse) in walk order so the index — and therefore every
            # tie in the final stable sort — matches a cold run's.
            for key, ctx_like in contexts.items():
                if key not in parsed and isinstance(ctx_like, CachedModule):
                    data = sources.get(key)
                    parsed[key] = (
                        ModuleContext.from_source(
                            ctx_like.path, data.decode("utf-8")
                        )
                        if data is not None
                        else ModuleContext.from_path(ctx_like.path)
                    )
            project = build_project(
                [parsed[key] for key in contexts if key in parsed]
            )

        for rule, dep, replay in deep_plan:
            if replay is None:
                assert project is not None  # any_miss built it above
                replay = list(rule.check_project(project))
                if analysis_cache is not None and dep is not None:
                    analysis_cache.store_deep(rule.rule_id, dep, replay)
            for finding in replay:
                admit(contexts.get(finding.path), finding)

    # Unused suppressions are only a fact on full runs: under --select a
    # directive for an unselected rule never had the chance to be used.
    # Likewise on shallow runs the ProjectRule families never execute, so
    # a directive naming one (its rule_id or code) is not judged — else
    # every deep-finding suppression would fail the shallow CI pass.
    if selected is None and enabled("unused-suppression"):
        rule = get_rule("unused-suppression")
        deep_only: set[str] = set()
        if not deep:
            for project_rule in all_rules():
                if project_rule.requires_project:
                    deep_only.add(project_rule.rule_id)
                    deep_only.add(project_rule.code)
        for ctx in contexts.values():
            for line, ids in ctx.suppressions.unused_lines():
                judged = ids - deep_only
                if not judged:
                    continue
                listed = ", ".join(sorted(judged))
                # Deliberately bypasses admit(): the directive would
                # silence its own staleness report.
                findings.append(
                    Finding(
                        rule_id=rule.rule_id,
                        code=rule.code,
                        path=str(ctx.path),
                        line=line,
                        col=0,
                        message=(
                            f"suppression [{listed}] silenced nothing; "
                            "remove the stale directive"
                        ),
                    )
                )

    baselined = 0
    if baseline is not None:
        entries = load_baseline(baseline)
        findings, baselined, stale = apply_baseline(findings, entries)
        if stale and enabled("baseline-stale"):
            rule = get_rule("baseline-stale")
            for entry in stale:
                findings.append(
                    Finding(
                        rule_id=rule.rule_id,
                        code=rule.code,
                        path=str(baseline),
                        line=1,
                        col=0,
                        message=(
                            f"stale baseline entry: no {entry.rule_id} "
                            f"finding in {entry.path} matches "
                            f"{entry.message!r}; regenerate with "
                            "--write-baseline"
                        ),
                    )
                )

    if analysis_cache is not None:
        analysis_cache.drop_stale_files(set(file_hashes))
        analysis_cache.save()

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintResult(
        findings,
        files_checked,
        suppressed,
        suppressed_by_rule=suppressed_by_rule,
        baselined=baselined,
        cache_stats=stats,
    )


def parse_module(source: str, name: str = "<fixture>") -> ModuleContext:
    """Build a context from a source string (test/fixture convenience)."""
    return ModuleContext(
        path=Path(name),
        source=source,
        tree=ast.parse(source, filename=name),
        package_rel=None,
    )


# -- parallel workers ---------------------------------------------------
#
# Worker results carry only picklable values (strings, ints, Finding
# dataclasses of primitives, suppression tables) — never an AST.  The
# parse-failure facts mirror parse_failure() so the parent synthesises
# an identical OPQ901 finding.


def _failure_facts(exc: Exception) -> tuple[str, int, int]:
    """(message, line, col) of one parse/read failure, picklably."""
    return (
        getattr(exc, "msg", None) or str(exc),
        getattr(exc, "lineno", None) or 1,
        (getattr(exc, "offset", None) or 1) - 1,
    )


#: Per-worker module-rule list, set once by the pool initializer.
_WORKER_RULES: list | None = None


def _worker_init(
    selected: frozenset[str] | None, ignored: frozenset[str]
) -> None:
    global _WORKER_RULES
    import repro.analysis  # noqa: F401  (rule registration on spawn)

    _WORKER_RULES = [
        rule
        for rule in all_rules()
        if not rule.synthetic
        and not rule.requires_project
        and (selected is None or rule.rule_id in selected)
        and rule.rule_id not in ignored
    ]


def _lint_one(item: tuple[str, bytes]) -> tuple[str, tuple]:
    """Shallow-analyse one file's bytes; pure, order-independent."""
    key, data = item
    try:
        ctx = ModuleContext.from_source(Path(key), data.decode("utf-8"))
    except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
        return key, ("err", *_failure_facts(exc))
    raw: list[Finding] = []
    for rule in _WORKER_RULES or []:
        if rule.in_scope(ctx):
            raw.extend(rule.check(ctx))
    return key, ("ok", ctx.package_rel, ctx.suppressions.to_table(), raw)


def _run_jobs(
    pending: list[tuple[str, bytes]],
    jobs: int,
    selected: set[str] | None,
    ignored: set[str],
) -> dict[str, tuple]:
    """Run the shallow analysis of ``pending`` over ``jobs`` processes."""
    if not pending:
        return {}
    from concurrent.futures import ProcessPoolExecutor

    results: dict[str, tuple] = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)),
        initializer=_worker_init,
        initargs=(
            frozenset(selected) if selected is not None else None,
            frozenset(ignored),
        ),
    ) as pool:
        for key, outcome in pool.map(_lint_one, pending):
            results[key] = outcome
    return results
