"""Walk files, apply every in-scope rule, filter suppressions."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.framework import Finding, ModuleContext
from repro.analysis.registry import all_rules, resolve_rule_ids
from repro.errors import ConfigError, DataError

__all__ = ["LintResult", "lint_paths", "iter_python_files", "parse_module"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


class LintResult:
    """Findings plus the bookkeeping reporters need."""

    def __init__(
        self, findings: list[Finding], files_checked: int, suppressed: int
    ) -> None:
        self.findings = findings
        self.files_checked = files_checked
        self.suppressed = suppressed

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, in order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise ConfigError(f"{path} is not a Python file")
            yield path
        else:
            raise ConfigError(f"no such file or directory: {path}")


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Run every registered rule over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories; directories are walked recursively.
    select:
        Rule ids/codes to run exclusively (default: all).
    ignore:
        Rule ids/codes to skip.

    Returns
    -------
    LintResult
        Findings sorted by location, with suppression counts.
    """
    selected = resolve_rule_ids(list(select) if select else None)
    ignored = resolve_rule_ids(list(ignore) if ignore else None) or set()
    rules = [
        rule
        for rule in all_rules()
        if (selected is None or rule.rule_id in selected)
        and rule.rule_id not in ignored
    ]
    findings: list[Finding] = []
    files_checked = 0
    suppressed = 0
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            ctx = ModuleContext.from_path(path)
        except SyntaxError as exc:
            raise DataError(
                f"cannot parse {path}: {exc.msg} (line {exc.lineno})"
            ) from exc
        for rule in rules:
            if not rule.in_scope(ctx):
                continue
            for finding in rule.check(ctx):
                if ctx.suppressions.silences(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintResult(findings, files_checked, suppressed)


def parse_module(source: str, name: str = "<fixture>") -> ModuleContext:
    """Build a context from a source string (test/fixture convenience)."""
    return ModuleContext(
        path=Path(name),
        source=source,
        tree=ast.parse(source, filename=name),
        package_rel=None,
    )
