"""Random-sampling quantile estimation ([Coc77] in the paper).

Draw a uniform random sample of the data, sort it, and read quantiles off
the sorted sample.  The paper's Table 7 gives this baseline the same memory
OPAQ uses for its sorted sample list.

The single-pass uniform draw uses reservoir sampling (Vitter's Algorithm R,
vectorised per chunk): each element ends up in the reservoir with
probability ``k/n`` without knowing ``n`` in advance — this is what makes
the method one-pass, but also what makes its error *probabilistic*: unlike
OPAQ there is no deterministic bound, only ``O(1/sqrt(k))`` concentration.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError
from repro.metrics.true_quantiles import quantile_rank

__all__ = ["RandomSamplingEstimator"]


class RandomSamplingEstimator(StreamingQuantileEstimator):
    """Reservoir-sampling point estimator.

    Parameters
    ----------
    capacity:
        Reservoir size ``k`` in keys — the memory budget.
    seed:
        Reproducibility seed for the reservoir's randomness.
    """

    name = "random_sampling"

    def __init__(self, capacity: int = 1000, seed: int = 0) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.empty(capacity, dtype=np.float64)
        self._filled = 0
        self._sorted_cache: np.ndarray | None = None

    @property
    def memory_footprint(self) -> int:
        return self.capacity

    def _consume(self, chunk: np.ndarray) -> None:
        self._sorted_cache = None
        k = self.capacity
        pos = 0
        # Fill the reservoir first.
        if self._filled < k:
            take = min(k - self._filled, chunk.size)
            self._reservoir[self._filled : self._filled + take] = chunk[:take]
            self._filled += take
            pos = take
        if pos >= chunk.size:
            return
        rest = chunk[pos:]
        # Algorithm R, vectorised: element number t (1-based over the whole
        # stream) replaces a random reservoir slot with probability k/t.
        start = self._n + pos  # elements seen before `rest`
        t = start + np.arange(1, rest.size + 1, dtype=np.float64)
        accept = self._rng.random(rest.size) < (k / t)
        idx = np.flatnonzero(accept)
        if idx.size == 0:
            return
        slots = self._rng.integers(0, k, size=idx.size)
        # Later stream elements must overwrite earlier ones when they pick
        # the same slot; assignment order of fancy indexing guarantees that
        # (last write wins) as idx is increasing.
        self._reservoir[slots] = rest[idx]

    def _sorted(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self._reservoir[: self._filled])
        return self._sorted_cache

    def query(self, phi: float) -> float:
        self._require_data()
        sample = self._sorted()
        rank = quantile_rank(phi, sample.size)
        return float(sample[rank - 1])
