"""A merging t-digest (Dunning & Ertl), the value-space modern sketch.

Included (with GK01 and KLL) as a post-paper reference point: the
reproduction's novelty note is that OPAQ was superseded by these sketches,
so the ablation benchmarks show where each lands on the memory/accuracy/
guarantee map.  t-digest gives *relative* rank accuracy — very tight at
the tails, looser in the middle — but only probabilistic/heuristic
guarantees, versus OPAQ's uniform deterministic ``n/s``.

This is the "merging" variant: incoming values are buffered, and a
compression pass merge-sorts buffer + centroids and re-clusters them
greedily under the scale-function capacity ``4·δ·n·q(1−q) + 1`` (the
``k₀``-style bound), which keeps at most ~``2δ``-ish centroids.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError

__all__ = ["TDigest"]


class TDigest(StreamingQuantileEstimator):
    """Merging t-digest with ``q(1-q)`` capacity shaping.

    Parameters
    ----------
    compression:
        δ — more means more centroids and higher accuracy.  Memory is
        ~``2*compression`` centroids (mean + weight each).
    buffer_size:
        How many raw values to buffer between compressions.
    """

    name = "tdigest"

    def __init__(self, compression: float = 100.0, buffer_size: int = 512) -> None:
        super().__init__()
        if compression < 10:
            raise ConfigError("compression must be at least 10")
        if buffer_size < 1:
            raise ConfigError("buffer_size must be positive")
        self.compression = float(compression)
        self.buffer_size = buffer_size
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._min = np.inf
        self._max = -np.inf

    @property
    def centroids(self) -> int:
        """Current number of centroids (post-compression)."""
        return int(self._means.size)

    @property
    def memory_footprint(self) -> int:
        return 2 * self.centroids + self._buffered

    def _consume(self, chunk: np.ndarray) -> None:
        self._min = min(self._min, float(chunk.min()))
        self._max = max(self._max, float(chunk.max()))
        self._buffer.append(chunk.copy())
        self._buffered += chunk.size
        if self._buffered >= self.buffer_size:
            self._compress()

    def _capacity(self, q_mid: np.ndarray, n: float) -> np.ndarray:
        return 4.0 * n * q_mid * (1.0 - q_mid) / self.compression + 1.0

    def _compress(self) -> None:
        if not self._buffer and self._means.size <= 2 * self.compression:
            return
        raw = np.concatenate([self._means, *self._buffer])
        raw_w = np.concatenate(
            [self._weights, *(np.ones(b.size) for b in self._buffer)]
        )
        self._buffer, self._buffered = [], 0
        if raw.size == 0:
            return
        order = np.argsort(raw, kind="stable")
        means, weights = raw[order], raw_w[order]
        n = float(weights.sum())
        out_means: list[float] = []
        out_weights: list[float] = []
        acc_mean, acc_w, seen = float(means[0]), float(weights[0]), 0.0
        for m, w in zip(means[1:], weights[1:]):
            q_mid = (seen + 0.5 * (acc_w + w)) / n
            if acc_w + w <= self._capacity(np.array(q_mid), n):
                acc_mean += (m - acc_mean) * (w / (acc_w + w))
                acc_w += w
            else:
                out_means.append(acc_mean)
                out_weights.append(acc_w)
                seen += acc_w
                acc_mean, acc_w = float(m), float(w)
        out_means.append(acc_mean)
        out_weights.append(acc_w)
        self._means = np.array(out_means)
        self._weights = np.array(out_weights)

    def query(self, phi: float) -> float:
        self._require_data()
        self._compress()
        means, weights = self._means, self._weights
        if means.size == 1:
            return float(means[0])
        n = float(weights.sum())
        target = phi * n
        # Cumulative weight at each centroid's *centre*.
        centres = np.cumsum(weights) - 0.5 * weights
        if target <= centres[0]:
            # Interpolate from the tracked minimum to the first centroid.
            frac = target / max(centres[0], 1e-12)
            return float(self._min + frac * (means[0] - self._min))
        if target >= centres[-1]:
            span = n - centres[-1]
            frac = (target - centres[-1]) / max(span, 1e-12)
            return float(means[-1] + frac * (self._max - means[-1]))
        idx = int(np.searchsorted(centres, target, side="right"))
        left_c, right_c = centres[idx - 1], centres[idx]
        frac = (target - left_c) / max(right_c - left_c, 1e-12)
        return float(means[idx - 1] + frac * (means[idx] - means[idx - 1]))
