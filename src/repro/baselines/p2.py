"""The P² algorithm (Jain & Chlamtac 1985; [RC85] in the paper).

Dynamic quantile calculation *without storing observations*: five markers
per tracked quantile (min, two intermediates, the quantile marker, max)
whose heights are nudged toward their desired positions with piecewise-
parabolic (hence P²) interpolation as elements stream by.

The paper cites this as the constant-memory prior work that "does not
provide any error bounds" — exactly the behaviour the comparison needs:
tiny memory, decent accuracy on smooth distributions, no guarantees (and
visibly worse behaviour on skewed/duplicated data).

This implementation follows the original paper's update rules, including
the fallback to linear interpolation when the parabolic step would leave
marker heights non-monotonic.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError, EstimationError

__all__ = ["P2SingleQuantile", "P2Estimator"]


class P2SingleQuantile:
    """Five-marker P² tracker for one quantile fraction."""

    def __init__(self, phi: float) -> None:
        if not 0.0 < phi < 1.0:
            raise ConfigError("P2 tracks fractions strictly inside (0, 1)")
        self.phi = phi
        self._heights: list[float] = []  # marker heights q_1..q_5
        self._positions = np.array([1.0, 2.0, 3.0, 4.0, 5.0])  # n_i
        self._desired = np.array([1.0, 1.0, 1.0, 1.0, 1.0])  # n'_i
        self._increments = np.array([0.0, phi / 2.0, phi, (1 + phi) / 2.0, 1.0])
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def add(self, x: float) -> None:
        """Absorb one observation."""
        self._count += 1
        q = self._heights
        if len(q) < 5:
            q.append(float(x))
            if len(q) == 5:
                q.sort()
            return
        n = self._positions
        # 1. Find the cell k containing x and bump extreme markers.
        if x < q[0]:
            q[0] = float(x)
            k = 0
        elif x >= q[4]:
            q[4] = max(q[4], float(x))
            k = 3
        else:
            k = int(np.searchsorted(q, x, side="right")) - 1
            k = min(max(k, 0), 3)
        # 2. Shift positions of markers above the cell.
        n[k + 1 :] += 1.0
        self._desired += self._increments
        # 3. Adjust the three middle markers if off their desired spot.
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self._count == 0:
            raise EstimationError("P2: no data consumed yet")
        if len(self._heights) < 5:
            # Fewer than five observations: answer from the sorted buffer.
            buf = sorted(self._heights)
            rank = max(1, min(len(buf), round(self.phi * len(buf))))
            return float(buf[rank - 1])
        return float(self._heights[2])


class P2Estimator(StreamingQuantileEstimator):
    """P² over a set of fractions (one five-marker tracker per fraction).

    Memory: 15 floats per tracked fraction — by far the smallest footprint
    of any estimator in the comparison, and the reason its errors come with
    no guarantee of any kind.
    """

    name = "p2"

    def __init__(self, phis=None) -> None:
        """``phis`` defaults to the dectiles — the paper's standard query
        set — so the estimator constructs uniformly with the others."""
        super().__init__()
        if phis is None:
            phis = [k / 10 for k in range(1, 10)]
        self._trackers = {float(phi): P2SingleQuantile(float(phi)) for phi in phis}
        if not self._trackers:
            raise ConfigError("P2Estimator needs at least one fraction")

    @property
    def memory_footprint(self) -> int:
        return 15 * len(self._trackers)

    def _consume(self, chunk: np.ndarray) -> None:
        trackers = list(self._trackers.values())
        for x in chunk:
            for t in trackers:
                t.add(float(x))

    def query(self, phi: float) -> float:
        self._require_data()
        key = float(phi)
        if key not in self._trackers:
            raise EstimationError(
                f"P2 was not configured to track phi={phi}; tracked: "
                f"{sorted(self._trackers)}"
            )
        return self._trackers[key].value()
