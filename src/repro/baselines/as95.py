"""The one-pass interval algorithm of Agrawal & Swami ([AS95]).

The paper describes it as: "The algorithm partitions the range of the
values into k intervals and counts the values in each interval.  The
boundaries of intervals are determined on-the-fly and are continuously
adjusted as data is read from disk."  Its limitation — the reason OPAQ
exists — is that "it does not provide an upper bound of the error rate."

This implementation follows that published description:

* the first buffer of data seeds ``k`` equi-depth interval boundaries;
* subsequent values increment the count of the interval they fall in;
* values outside the current range extend the extreme intervals;
* whenever one interval's count grows past ``split_factor`` times the
  average, it is split at its midpoint (counts halved — the on-the-fly
  adjustment that keeps intervals balanced without a second pass) and the
  pair of adjacent intervals with the smallest combined count is merged to
  keep the memory constant;
* a quantile is answered by linear interpolation inside the interval that
  contains the target rank.

The interpolation step is where the distribution dependence (and hence the
unbounded error) comes from: inside an interval the value mass is assumed
uniform, which skewed or duplicate-heavy data violates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError

__all__ = ["AdaptiveIntervalEstimator"]


class AdaptiveIntervalEstimator(StreamingQuantileEstimator):
    """Adaptive equi-depth interval counts ([AS95]-style).

    Parameters
    ----------
    intervals:
        ``k`` — the number of intervals.  Memory is ~2 keys per interval
        (a boundary and a count), so an equal-memory comparison against
        OPAQ with ``r*s`` samples uses ``k = r*s / 2``.
    split_factor:
        An interval is split when its count exceeds ``split_factor``
        times the average interval count.
    """

    name = "as95"

    def __init__(self, intervals: int = 64, split_factor: float = 2.0) -> None:
        super().__init__()
        if intervals < 4:
            raise ConfigError("need at least 4 intervals")
        if split_factor <= 1.0:
            raise ConfigError("split_factor must exceed 1")
        self.intervals = intervals
        self.split_factor = split_factor
        self._bounds: np.ndarray | None = None  # k+1 boundaries
        self._counts: np.ndarray | None = None  # k counts
        self._pending: list[np.ndarray] = []
        self._pending_size = 0

    @property
    def memory_footprint(self) -> int:
        return 2 * self.intervals + 1

    # ------------------------------------------------------------------

    def _seed(self) -> None:
        """Build the initial boundaries from the buffered first chunk."""
        first = np.sort(np.concatenate(self._pending))
        self._pending.clear()
        k = self.intervals
        # Equi-depth seed boundaries from the first buffer's quantiles.
        grid = np.linspace(0, first.size - 1, k + 1).astype(np.int64)
        bounds = first[grid].astype(np.float64)
        # De-duplicate collapsed boundaries (heavy ties in the first chunk)
        # by nudging with the smallest representable step.
        for i in range(1, bounds.size):
            if bounds[i] <= bounds[i - 1]:
                bounds[i] = np.nextafter(bounds[i - 1], np.inf)
        self._bounds = bounds
        self._counts = np.zeros(k, dtype=np.float64)
        self._ingest(first)

    def _ingest(self, chunk: np.ndarray) -> None:
        bounds, counts = self._bounds, self._counts
        lo, hi = chunk.min(), chunk.max()
        if lo < bounds[0]:
            bounds[0] = lo
        if hi > bounds[-1]:
            bounds[-1] = hi
        idx = np.clip(np.searchsorted(bounds, chunk, side="right") - 1, 0, counts.size - 1)
        counts += np.bincount(idx, minlength=counts.size)
        self._rebalance()

    def _rebalance(self) -> None:
        bounds, counts = self._bounds, self._counts
        total = counts.sum()
        if total <= 0:
            return
        limit = self.split_factor * total / counts.size
        # Split the heaviest offender; pay for it by merging the lightest
        # adjacent pair.  A few iterations per chunk keep things balanced.
        for _ in range(8):
            heavy = int(np.argmax(counts))
            if counts[heavy] <= limit:
                break
            pair_sums = counts[:-1] + counts[1:]
            # Do not merge into the interval being split.
            pair_sums = pair_sums.copy()
            for j in (heavy - 1, heavy):
                if 0 <= j < pair_sums.size:
                    pair_sums[j] = np.inf
            light = int(np.argmin(pair_sums))
            if not np.isfinite(pair_sums[light]):
                break
            mid = 0.5 * (bounds[heavy] + bounds[heavy + 1])
            if not bounds[heavy] < mid < bounds[heavy + 1]:
                break  # interval too narrow to split (ties)
            new_bounds = np.delete(bounds, light + 1)
            new_counts = counts.copy()
            new_counts[light] += new_counts[light + 1]
            new_counts = np.delete(new_counts, light + 1)
            # Indices shift after the merge when the split point is later.
            h = heavy if heavy < light else heavy - 1
            new_bounds = np.insert(new_bounds, h + 1, mid)
            half = new_counts[h] / 2.0
            new_counts[h] = half
            new_counts = np.insert(new_counts, h + 1, half)
            self._bounds = bounds = new_bounds
            self._counts = counts = new_counts

    def _consume(self, chunk: np.ndarray) -> None:
        if self._bounds is None:
            self._pending.append(chunk.copy())
            self._pending_size += chunk.size
            # Seed once we have enough to draw k meaningful boundaries.
            if self._pending_size >= 4 * self.intervals:
                self._seed()
            return
        self._ingest(chunk)

    def query(self, phi: float) -> float:
        self._require_data()
        if self._bounds is None:
            # Everything still buffered: answer exactly from the buffer.
            data = np.sort(np.concatenate(self._pending))
            rank = max(1, min(data.size, round(phi * data.size)))
            return float(data[rank - 1])
        counts = self._counts
        cum = np.cumsum(counts)
        target = phi * cum[-1]
        cell = int(np.searchsorted(cum, target, side="left"))
        cell = min(cell, counts.size - 1)
        before = cum[cell] - counts[cell]
        inside = (target - before) / counts[cell] if counts[cell] > 0 else 0.5
        left, right = self._bounds[cell], self._bounds[cell + 1]
        return float(left + inside * (right - left))
