"""The KLL sketch (Karnin, Lang & Liberty 2016), rank-space modern sketch.

The third post-paper reference point: randomized, mergeable, and
near-optimal in space — ``O((1/ε)·sqrt(log(1/ε)))`` items for an ``εn``
rank guarantee *with constant probability* (contrast OPAQ's deterministic
``n/s`` with ``r·s`` keys, and GK's deterministic ``εn``).

Structure: a stack of compactors.  Level ``h`` holds items of weight
``2^h``; when a level overflows its capacity (``k·c^(depth-h)``, geometric
decay ``c = 2/3``), it sorts itself and promotes every other item (random
even/odd choice) to the level above.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError

__all__ = ["KLLSketch"]

_DECAY = 2.0 / 3.0


class KLLSketch(StreamingQuantileEstimator):
    """KLL quantile sketch.

    Parameters
    ----------
    k:
        Capacity of the top compactor — the accuracy knob.  Rank error is
        ``O(n/k)`` with high probability.
    seed:
        Seed for the (essential) compaction randomness.
    """

    name = "kll"

    def __init__(self, k: int = 200, seed: int = 0) -> None:
        super().__init__()
        if k < 8:
            raise ConfigError("k must be at least 8")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._levels: list[list[np.ndarray]] = [[]]
        self._sizes: list[int] = [0]

    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        depth = len(self._levels) - 1
        return max(8, int(self.k * _DECAY ** (depth - level)))

    def _compact(self, level: int) -> None:
        items = np.sort(np.concatenate(self._levels[level]))
        leftover = None
        if items.size % 2:
            # An odd item cannot pair up; it stays at this level so the
            # total represented weight is conserved exactly.
            leftover = items[-1:]
            items = items[:-1]
        keep_odd = bool(self._rng.integers(0, 2))
        promoted = items[1::2] if keep_odd else items[0::2]
        self._levels[level] = [] if leftover is None else [leftover]
        self._sizes[level] = 0 if leftover is None else 1
        if level + 1 == len(self._levels):
            self._levels.append([])
            self._sizes.append(0)
        self._levels[level + 1].append(promoted)
        self._sizes[level + 1] += promoted.size

    def _consume(self, chunk: np.ndarray) -> None:
        self._levels[0].append(chunk.copy())
        self._sizes[0] += chunk.size
        level = 0
        while level < len(self._levels):
            if self._sizes[level] > self._capacity(level):
                self._compact(level)
            level += 1

    # ------------------------------------------------------------------

    @property
    def memory_footprint(self) -> int:
        return sum(self._sizes)

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        values = []
        weights = []
        for h, pieces in enumerate(self._levels):
            if not pieces:
                continue
            v = np.concatenate(pieces)
            values.append(v)
            weights.append(np.full(v.size, 2.0**h))
        v = np.concatenate(values)
        w = np.concatenate(weights)
        order = np.argsort(v, kind="stable")
        return v[order], w[order]

    def query(self, phi: float) -> float:
        self._require_data()
        values, weights = self._weighted_items()
        cum = np.cumsum(weights)
        target = phi * cum[-1]
        idx = min(
            int(np.searchsorted(cum, target, side="left")), values.size - 1
        )
        return float(values[idx])

    def rank_error_estimate(self) -> float:
        """Heuristic one-sigma rank error: ~1.7 n / k (empirical KLL)."""
        return 1.7 * self._n / self.k
