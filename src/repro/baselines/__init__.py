"""The estimators OPAQ is compared against (paper section 1 and Table 7).

One-pass point estimators (streaming interface):

- :class:`RandomSamplingEstimator` — uniform reservoir sample [Coc77];
- :class:`P2Estimator` — Jain & Chlamtac's P² markers [RC85];
- :class:`AdaptiveIntervalEstimator` — Agrawal & Swami's adaptive interval
  counts [AS95];
- :class:`CellMidpointEstimator` — Schmeiser & Deutsch's fixed-grid cell
  midpoints [SD77];
- :class:`GreenwaldKhanna` — the post-paper (2001) sketch, for the modern
  comparison ablation;
- :class:`TDigest` and :class:`KLLSketch` — the later (2013/2016) sketches
  that, with GK, superseded this line of work.

Multi-pass exact algorithms:

- :class:`MunroPatersonSelector` — bounded-memory exact selection [MP80];
- :class:`RecursiveMedianPartitioner` — exact equi-depth boundaries via
  recursive median finding [GS90].
"""

from repro.baselines.as95 import AdaptiveIntervalEstimator
from repro.baselines.base import StreamingQuantileEstimator, consume
from repro.errors import ConfigError
from repro.baselines.gk01 import GreenwaldKhanna
from repro.baselines.gs90 import PartitionResult, RecursiveMedianPartitioner
from repro.baselines.kll import KLLSketch
from repro.baselines.mp80 import MunroPatersonSelector, SelectionResult
from repro.baselines.p2 import P2Estimator, P2SingleQuantile
from repro.baselines.random_sampling import RandomSamplingEstimator
from repro.baselines.sd77 import CellMidpointEstimator
from repro.baselines.tdigest import TDigest

#: The one-pass streaming estimators, keyed by their registry name.  All
#: construct with no arguments (sensible defaults) and share the uniform
#: construct -> update -> query interface of
#: :class:`~repro.baselines.StreamingQuantileEstimator`; the multi-pass
#: exact algorithms (MP80, GS90) are deliberately absent.
STREAMING_BASELINES: dict[str, type[StreamingQuantileEstimator]] = {
    cls.name: cls
    for cls in (
        RandomSamplingEstimator,
        P2Estimator,
        AdaptiveIntervalEstimator,
        CellMidpointEstimator,
        GreenwaldKhanna,
        TDigest,
        KLLSketch,
    )
}


def make_baseline(name: str, **kwargs) -> StreamingQuantileEstimator:
    """Construct a streaming baseline by registry name.

    ``kwargs`` are forwarded to the constructor, so harnesses can apply
    equal-memory budgets (e.g. ``make_baseline("random_sampling",
    capacity=rs)``) while defaulting everything else.
    """
    try:
        cls = STREAMING_BASELINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown baseline {name!r}; choose from "
            f"{tuple(sorted(STREAMING_BASELINES))}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "StreamingQuantileEstimator",
    "STREAMING_BASELINES",
    "make_baseline",
    "consume",
    "RandomSamplingEstimator",
    "P2Estimator",
    "P2SingleQuantile",
    "AdaptiveIntervalEstimator",
    "CellMidpointEstimator",
    "GreenwaldKhanna",
    "TDigest",
    "KLLSketch",
    "MunroPatersonSelector",
    "SelectionResult",
    "RecursiveMedianPartitioner",
    "PartitionResult",
]
