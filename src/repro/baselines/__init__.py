"""The estimators OPAQ is compared against (paper section 1 and Table 7).

One-pass point estimators (streaming interface):

- :class:`RandomSamplingEstimator` — uniform reservoir sample [Coc77];
- :class:`P2Estimator` — Jain & Chlamtac's P² markers [RC85];
- :class:`AdaptiveIntervalEstimator` — Agrawal & Swami's adaptive interval
  counts [AS95];
- :class:`CellMidpointEstimator` — Schmeiser & Deutsch's fixed-grid cell
  midpoints [SD77];
- :class:`GreenwaldKhanna` — the post-paper (2001) sketch, for the modern
  comparison ablation;
- :class:`TDigest` and :class:`KLLSketch` — the later (2013/2016) sketches
  that, with GK, superseded this line of work.

Multi-pass exact algorithms:

- :class:`MunroPatersonSelector` — bounded-memory exact selection [MP80];
- :class:`RecursiveMedianPartitioner` — exact equi-depth boundaries via
  recursive median finding [GS90].
"""

from repro.baselines.as95 import AdaptiveIntervalEstimator
from repro.baselines.base import StreamingQuantileEstimator, consume
from repro.baselines.gk01 import GreenwaldKhanna
from repro.baselines.gs90 import PartitionResult, RecursiveMedianPartitioner
from repro.baselines.kll import KLLSketch
from repro.baselines.mp80 import MunroPatersonSelector, SelectionResult
from repro.baselines.p2 import P2Estimator, P2SingleQuantile
from repro.baselines.random_sampling import RandomSamplingEstimator
from repro.baselines.sd77 import CellMidpointEstimator
from repro.baselines.tdigest import TDigest

__all__ = [
    "StreamingQuantileEstimator",
    "consume",
    "RandomSamplingEstimator",
    "P2Estimator",
    "P2SingleQuantile",
    "AdaptiveIntervalEstimator",
    "CellMidpointEstimator",
    "GreenwaldKhanna",
    "TDigest",
    "KLLSketch",
    "MunroPatersonSelector",
    "SelectionResult",
    "RecursiveMedianPartitioner",
    "PartitionResult",
]
