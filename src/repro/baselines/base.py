"""Common interface for the baseline quantile estimators.

The paper compares OPAQ against several prior algorithms (section 1 and
Table 7).  All baselines here implement one small streaming interface —
feed chunks, query fractions — so the comparison harness can run any of
them over the same single pass of a disk-resident dataset and charge each
the same memory budget.

Unlike OPAQ, these produce *point estimates* without deterministic bounds
(that asymmetry is the paper's main claim); the harness scores them with
:func:`repro.metrics.rera_point_estimates`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, EstimationError
from repro.storage import DiskDataset, RunReader

__all__ = ["StreamingQuantileEstimator", "consume"]


class StreamingQuantileEstimator(ABC):
    """One-pass point estimator of quantiles."""

    #: Registry/display name; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self._n = 0

    @property
    def n(self) -> int:
        """Elements consumed so far."""
        return self._n

    @property
    @abstractmethod
    def memory_footprint(self) -> int:
        """Keys of memory the estimator's state occupies (for the
        equal-memory comparison of the paper's Table 7)."""

    @abstractmethod
    def _consume(self, chunk: np.ndarray) -> None:
        """Absorb one chunk of keys."""

    @abstractmethod
    def query(self, phi: float) -> float:
        """Point estimate of the φ-quantile of everything consumed."""

    def update(self, chunk: np.ndarray) -> None:
        """Absorb one chunk of keys (validating input)."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 1:
            raise ConfigError("chunks must be one-dimensional")
        if chunk.size == 0:
            return
        self._consume(chunk)
        self._n += chunk.size

    def query_many(self, phis: Sequence[float]) -> np.ndarray:
        """Point estimates for several fractions."""
        return np.array([self.query(float(phi)) for phi in phis])

    def _require_data(self) -> None:
        if self._n == 0:
            raise EstimationError(f"{self.name}: no data consumed yet")


def consume(
    estimator: StreamingQuantileEstimator,
    source,
    run_size: int = 1 << 17,
) -> StreamingQuantileEstimator:
    """Feed a whole data source through an estimator in one pass.

    ``source`` may be a :class:`~repro.storage.DiskDataset` (read through a
    single-pass reader), a numpy array, or any iterable of chunks.  Returns
    the estimator for chaining.
    """
    if isinstance(source, DiskDataset):
        chunks: Iterable[np.ndarray] = RunReader(source, run_size=run_size)
    elif isinstance(source, np.ndarray):
        chunks = (
            source[i : i + run_size] for i in range(0, source.size, run_size)
        )
    else:
        chunks = source
    for chunk in chunks:
        estimator.update(np.asarray(chunk))
    return estimator
