"""Equi-depth partitioning by recursive median finding ([GS90]).

Gurajada & Srivastava's technique "needs multiple passes over the data and
produces accurate quantiles ... uses a linear median-finding algorithm
recursively to partition the data": find the exact median (one selection
over the whole file), split the quantile workload into the half below and
the half above, and recurse — ``log2(q)`` levels of exact selections, each
level costing at least one pass over (a shrinking portion of) the data.

The per-selection engine is the bounded-memory
:class:`~repro.baselines.mp80.MunroPatersonSelector`; what this module adds
is the recursive scheduling and the pass accounting, which is the
interesting comparison point against OPAQ: *exact* answers at the price of
``O(log q)`` times more I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.mp80 import MunroPatersonSelector
from repro.errors import ConfigError
from repro.metrics.true_quantiles import quantile_rank
from repro.storage import DiskDataset

__all__ = ["RecursiveMedianPartitioner", "PartitionResult"]


@dataclass(frozen=True)
class PartitionResult:
    """Exact equi-depth boundaries plus the I/O bill that bought them."""

    boundaries: np.ndarray  # q-1 exact quantile values, ascending
    passes: int  # total full-data-pass equivalents (sum over selections)
    selections: int


class RecursiveMedianPartitioner:
    """Exact equi-depth histogram boundaries via recursive selection."""

    def __init__(self, memory: int, run_size: int | None = None) -> None:
        if memory < 16:
            raise ConfigError("memory budget too small")
        self._selector = MunroPatersonSelector(memory, run_size=run_size)

    def partition(self, source, q: int) -> PartitionResult:
        """Exact ``q``-way equi-depth boundaries of ``source``.

        Recursion order is median-first ([GS90]'s scheme): the median
        selection conceptually partitions the file so the recursive
        selections scan disjoint halves; with a re-readable source the
        partitioning is implicit (each selection filters by rank), so the
        pass count reported is the number of selection sweeps — the
        quantity [GS90] trades against accuracy.
        """
        if q < 2:
            raise ConfigError("q must be at least 2")
        if isinstance(source, DiskDataset):
            n = source.count
            # Each selection needs its own read budget.
            def fresh():
                return source
        else:
            arr = np.asarray(source, dtype=np.float64)
            n = arr.size

            def fresh():
                return arr

        targets = [quantile_rank(k / q, n) for k in range(1, q)]
        values: dict[int, float] = {}
        passes = 0
        selections = 0

        def solve(lo_idx: int, hi_idx: int) -> None:
            """Recursively resolve targets[lo_idx..hi_idx] median-first."""
            nonlocal passes, selections
            if lo_idx > hi_idx:
                return
            mid = (lo_idx + hi_idx) // 2
            result = self._selector.select(fresh(), targets[mid])
            values[mid] = result.value
            passes += result.passes
            selections += 1
            solve(lo_idx, mid - 1)
            solve(mid + 1, hi_idx)

        solve(0, len(targets) - 1)
        boundaries = np.array([values[i] for i in range(len(targets))])
        return PartitionResult(
            boundaries=boundaries, passes=passes, selections=selections
        )
