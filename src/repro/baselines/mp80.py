"""Multi-pass exact selection with limited storage (Munro & Paterson 1980).

[MP80] proved that exact selection from a one-way stream needs Ω(n) memory
in one pass, and gave multi-pass algorithms that trade passes for memory:
each pass narrows a candidate interval ``[lo, hi]`` known to contain the
target, keeping the in-interval elements when they fit and a bounded
sampled skeleton of them when they do not.

This implementation follows that narrowing scheme, using regular sampling
of the in-interval elements as the skeleton (the same primitive OPAQ is
built on, so the interval shrinks by a factor of ~``s/2`` per pass):

* pass: count elements below ``lo`` (rank offset) and stream the elements
  inside ``[lo, hi]`` into (a) an exact buffer, abandoned the moment it
  would exceed the memory budget, and (b) a run-sampled skeleton;
* if the buffer survived — select exactly with one in-memory selection;
* otherwise pick tighter ``lo``/``hi`` from the skeleton's deterministic
  bound pair and go again.  Endpoint duplicate counts resolve (or strictly
  shrink) heavy-tie windows, so progress is guaranteed even on degenerate
  data.

With memory ``M`` the algorithm needs ``O(log_M n)`` passes — two for any
realistic disk-resident ``n``, matching [MP80]'s theory and providing the
multi-pass reference point for the comparison benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.quantile_phase import bounds_at_rank
from repro.core.sample_phase import sample_run, scaled_sample_count
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError, EstimationError
from repro.metrics.true_quantiles import quantile_rank
from repro.selection import NumpyPartitionStrategy, kway_merge
from repro.storage import DiskDataset, RunReader

__all__ = ["MunroPatersonSelector", "SelectionResult"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of an exact multi-pass selection."""

    value: float
    rank: int
    passes: int


class _StreamingSampler:
    """Builds an OPAQ summary over a filtered stream without storing it."""

    def __init__(self, run_size: int, sample_size: int) -> None:
        self.run_size = run_size
        self.sample_size = sample_size
        self._strategy = NumpyPartitionStrategy()
        self._acc: list[np.ndarray] = []
        self._acc_size = 0
        self._samples: list[np.ndarray] = []
        self._payloads: list[np.ndarray] = []
        self._runs = 0
        self._count = 0
        self._min = np.inf
        self._max = -np.inf

    def _flush(self) -> None:
        if not self._acc_size:
            return
        run = np.concatenate(self._acc) if len(self._acc) > 1 else self._acc[0]
        self._acc, self._acc_size = [], 0
        s_k = scaled_sample_count(run.size, self.run_size, self.sample_size)
        samples, gaps, floors = sample_run(run, s_k, self._strategy)
        self._samples.append(samples)
        self._payloads.append(np.column_stack([gaps.astype(np.float64), floors]))
        self._runs += 1

    def add(self, window: np.ndarray) -> None:
        if window.size == 0:
            return
        self._count += window.size
        self._min = min(self._min, float(window.min()))
        self._max = max(self._max, float(window.max()))
        pos = 0
        while pos < window.size:
            take = min(self.run_size - self._acc_size, window.size - pos)
            self._acc.append(window[pos : pos + take])
            self._acc_size += take
            pos += take
            if self._acc_size >= self.run_size:
                self._flush()

    def finish(self) -> OPAQSummary | None:
        self._flush()
        if not self._runs:
            return None
        samples, payload = kway_merge(self._samples, payloads=self._payloads)
        return OPAQSummary(
            samples=samples,
            gaps=payload[:, 0].astype(np.int64),
            floors=payload[:, 1],
            num_runs=self._runs,
            count=self._count,
            minimum=self._min,
            maximum=self._max,
        )


class MunroPatersonSelector:
    """Exact order statistics from disk with bounded memory.

    Parameters
    ----------
    memory:
        Working-set budget in keys (exact buffer; the sampled skeleton uses
        at most a quarter of it on top).
    run_size:
        Chunk size for reading (defaults to the memory budget).
    """

    def __init__(self, memory: int, run_size: int | None = None) -> None:
        if memory < 16:
            raise ConfigError("memory budget too small to make progress")
        self.memory = memory
        self.run_size = run_size or memory

    def _iter_chunks(self, source):
        if isinstance(source, DiskDataset):
            return RunReader(source, run_size=self.run_size, max_passes=1).runs()
        arr = np.asarray(source)
        return (
            arr[i : i + self.run_size]
            for i in range(0, arr.size, self.run_size)
        )

    def select(self, source, rank: int, max_passes: int = 64) -> SelectionResult:
        """Return the exact element of 1-based ``rank``.

        ``source`` is a :class:`~repro.storage.DiskDataset` or array; each
        narrowing iteration reads it once.
        """
        lo, hi = -math.inf, math.inf
        passes = 0
        skeleton_s = max(4, self.memory // 4)
        for _ in range(max_passes):
            passes += 1
            below = 0
            eq_lo = 0
            eq_hi = 0
            total = 0
            buffer: list[np.ndarray] | None = []
            buffer_size = 0
            sampler = _StreamingSampler(
                run_size=self.run_size,
                sample_size=min(skeleton_s, self.run_size),
            )
            for chunk in self._iter_chunks(source):
                chunk = np.asarray(chunk, dtype=np.float64)
                total += chunk.size
                if math.isfinite(lo):
                    below += int(np.count_nonzero(chunk < lo))
                    eq_lo += int(np.count_nonzero(chunk == lo))
                if math.isfinite(hi):
                    eq_hi += int(np.count_nonzero(chunk == hi))
                window = chunk[(chunk >= lo) & (chunk <= hi)]
                if buffer is not None:
                    if buffer_size + window.size <= self.memory:
                        buffer.append(window)
                        buffer_size += window.size
                    else:
                        # Budget blown: abandon exactness for this pass and
                        # replay the buffered prefix into the skeleton.
                        for piece in buffer:
                            sampler.add(piece)
                        buffer = None
                if buffer is None:
                    sampler.add(window)
            if rank < 1 or rank > total:
                raise EstimationError(f"rank {rank} out of range for {total} elements")
            local_rank = rank - below
            if buffer is not None:
                window_all = (
                    np.concatenate(buffer) if buffer else np.empty(0)
                )
                if not 1 <= local_rank <= window_all.size:
                    raise EstimationError(
                        "narrowing interval lost the target rank; "
                        "is the source changing between passes?"
                    )
                value = float(
                    np.partition(window_all, local_rank - 1)[local_rank - 1]
                )
                return SelectionResult(value=value, rank=rank, passes=passes)

            # Window overflowed.  Endpoint duplicate bands may already
            # resolve the query (heavy ties), and always allow progress.
            win_count = sampler._count
            if math.isfinite(lo) and local_rank <= eq_lo:
                return SelectionResult(value=lo, rank=rank, passes=passes)
            if math.isfinite(hi) and local_rank > win_count - eq_hi:
                return SelectionResult(value=hi, rank=rank, passes=passes)
            summary = sampler.finish()
            b = bounds_at_rank(summary, local_rank)
            if b.lower == lo and b.upper == hi:
                # The skeleton cannot shrink the value interval (few giant
                # duplicate bands).  The endpoint checks above failed, so
                # the target lies strictly inside — drop both endpoint
                # bands, a guaranteed strict shrink (each holds >= 1
                # element because the bounds are data values).
                lo = np.nextafter(lo, math.inf)
                hi = np.nextafter(hi, -math.inf)
            else:
                lo, hi = b.lower, b.upper
        raise EstimationError(f"no convergence within {max_passes} passes")

    def quantile(self, source, phi: float, n: int | None = None) -> SelectionResult:
        """Exact φ-quantile (rank ``ceil(φ·n)``) of ``source``."""
        if n is None:
            if isinstance(source, DiskDataset):
                n = source.count
            else:
                n = int(np.asarray(source).size)
        return self.select(source, quantile_rank(phi, n))
