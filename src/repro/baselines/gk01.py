"""Greenwald-Khanna ε-approximate quantile summary (SIGMOD 2001).

Published four years *after* OPAQ, GK is the sketch that superseded this
line of work: a one-pass summary of ``O((1/ε)·log(εn))`` tuples answering
any quantile within ``±εn`` ranks deterministically.  It is included as the
modern reference point for the ablation benchmarks (OPAQ's guarantee
``n/s`` with ``r·s`` memory versus GK's ``εn`` with adaptive memory).

Implementation: the classic tuple list ``(v, g, Δ)`` where ``g`` is the
rank gap to the previous tuple and ``Δ`` the extra rank uncertainty.
Inserts keep the list sorted; a periodic compress merges tuples whose
combined span stays under ``2εn``.  Batched insertion (merge-sort a whole
chunk at once) keeps the Python overhead tolerable at the scales the
benchmarks use.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError

__all__ = ["GreenwaldKhanna"]


class GreenwaldKhanna(StreamingQuantileEstimator):
    """GK01 sketch: deterministic ``±εn`` rank error in one pass."""

    name = "gk01"

    def __init__(self, epsilon: float = 0.001) -> None:
        super().__init__()
        if not 0.0 < epsilon < 0.5:
            raise ConfigError("epsilon must lie in (0, 0.5)")
        self.epsilon = epsilon
        # Parallel arrays: values, g (rank gaps), delta.
        self._v = np.empty(0, dtype=np.float64)
        self._g = np.empty(0, dtype=np.int64)
        self._d = np.empty(0, dtype=np.int64)

    @property
    def memory_footprint(self) -> int:
        return 3 * self._v.size

    @property
    def tuples(self) -> int:
        """Current number of summary tuples."""
        return int(self._v.size)

    def _consume(self, chunk: np.ndarray) -> None:
        chunk = np.sort(chunk)
        n_after = self._n + chunk.size
        cap = max(1, int(2 * self.epsilon * n_after))
        # Batched insert: each new element becomes a tuple with g=1 and
        # delta inherited from its successor's rank band (g_succ + d_succ
        # - 1, the tight choice that keeps tuples compressible), or 0 when
        # it lands beyond either extreme — there its rank is known exactly
        # because the extreme tuples carry no uncertainty.
        pos = np.searchsorted(self._v, chunk, side="right")
        if self._v.size:
            succ = np.clip(pos, 0, self._v.size - 1)
            delta_new = self._g[succ] + self._d[succ] - 1
            delta_new[pos == 0] = 0
            delta_new[pos == self._v.size] = 0
            np.clip(delta_new, 0, max(0, cap - 1), out=delta_new)
        else:
            delta_new = np.zeros(chunk.size, dtype=np.int64)
        # Merge the two sorted tuple sequences.
        total = self._v.size + chunk.size
        v = np.empty(total, dtype=np.float64)
        g = np.empty(total, dtype=np.int64)
        d = np.empty(total, dtype=np.int64)
        mask = np.zeros(total, dtype=bool)
        mask[pos + np.arange(chunk.size)] = True
        v[mask], g[mask], d[mask] = chunk, 1, delta_new
        v[~mask], g[~mask], d[~mask] = self._v, self._g, self._d
        self._v, self._g, self._d = v, g, d
        self._compress(cap)

    def _compress(self, cap: int) -> None:
        """Merge adjacent tuples while g_i + g_{i+1} + Δ_{i+1} < cap."""
        v, g, d = self._v, self._g, self._d
        if v.size <= 2:
            return
        keep_v: list[float] = [float(v[0])]
        keep_g: list[int] = [int(g[0])]
        keep_d: list[int] = [int(d[0])]
        acc_g = 0
        for i in range(1, v.size - 1):
            if acc_g + g[i] + g[i + 1] + d[i + 1] <= cap:
                acc_g += int(g[i])  # fold tuple i into its successor
            else:
                keep_v.append(float(v[i]))
                keep_g.append(acc_g + int(g[i]))
                keep_d.append(int(d[i]))
                acc_g = 0
        keep_v.append(float(v[-1]))
        keep_g.append(acc_g + int(g[-1]))
        keep_d.append(int(d[-1]))
        self._v = np.array(keep_v)
        self._g = np.array(keep_g, dtype=np.int64)
        self._d = np.array(keep_d, dtype=np.int64)

    def rank_error_bound(self) -> float:
        """The deterministic guarantee: ``±εn`` ranks."""
        return self.epsilon * self._n

    def query(self, phi: float) -> float:
        self._require_data()
        target = max(1, int(np.ceil(phi * self._n)))
        bound = int(np.ceil(self.epsilon * self._n))
        rmin = np.cumsum(self._g)
        rmax = rmin + self._d
        # A tuple is a valid answer when its whole rank band lies within
        # target +/- bound; the GK invariant (g_i + d_i <= 2*eps*n)
        # guarantees at least one valid tuple exists.
        valid = np.flatnonzero((rmin >= target - bound) & (rmax <= target + bound))
        if valid.size:
            centre = 0.5 * (rmin[valid] + rmax[valid])
            return float(self._v[valid[np.argmin(np.abs(centre - target))]])
        # Defensive fallback (cannot happen while the invariant holds):
        # smallest band-centre distance.
        centre = 0.5 * (rmin + rmax)
        return float(self._v[int(np.argmin(np.abs(centre - target)))])
