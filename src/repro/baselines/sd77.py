"""Cell-midpoint quantile estimation from grouped data ([SD77]).

Schmeiser & Deutsch estimate quantiles from a histogram of ``k`` equal-width
cells over an *a-priori known* value range: find the cell containing the
target rank and return the cell midpoint (optionally, linear interpolation
within the cell).

The paper cites this as the method that "may produce inaccurate estimates
... unless we have a priori knowledge of the data set": the fixed grid is
the weakness OPAQ avoids.  Feeding it a wrong range (or skewed data that
concentrates in few cells) demonstrates exactly that failure mode in the
comparison benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import StreamingQuantileEstimator
from repro.errors import ConfigError

__all__ = ["CellMidpointEstimator"]


class CellMidpointEstimator(StreamingQuantileEstimator):
    """Equal-width histogram with cell-midpoint quantile readout.

    Parameters
    ----------
    lo, hi:
        The a-priori value range.  Values outside are clamped into the
        boundary cells (and counted, so ranks stay exact — only values are
        coarsened).
    cells:
        ``k`` — number of equal-width cells; the memory budget.
    interpolate:
        When true, interpolate linearly inside the cell instead of
        returning the midpoint (the refinement discussed in [SD77]).
    """

    name = "sd77"

    def __init__(
        self,
        lo: float = 0.0,
        hi: float = 1.0,
        cells: int = 64,
        interpolate: bool = False,
    ) -> None:
        super().__init__()
        if not lo < hi:
            raise ConfigError("need lo < hi")
        if cells < 1:
            raise ConfigError("need at least one cell")
        self.lo = float(lo)
        self.hi = float(hi)
        self.cells = cells
        self.interpolate = interpolate
        self._counts = np.zeros(cells, dtype=np.int64)
        self._width = (self.hi - self.lo) / cells

    @property
    def memory_footprint(self) -> int:
        return self.cells

    def _consume(self, chunk: np.ndarray) -> None:
        idx = ((chunk - self.lo) / self._width).astype(np.int64)
        np.clip(idx, 0, self.cells - 1, out=idx)
        self._counts += np.bincount(idx, minlength=self.cells)

    def query(self, phi: float) -> float:
        self._require_data()
        cum = np.cumsum(self._counts)
        target = phi * cum[-1]
        cell = min(
            int(np.searchsorted(cum, target, side="left")), self.cells - 1
        )
        left = self.lo + cell * self._width
        if not self.interpolate:
            return float(left + 0.5 * self._width)
        before = cum[cell] - self._counts[cell]
        frac = (
            (target - before) / self._counts[cell]
            if self._counts[cell] > 0
            else 0.5
        )
        return float(left + frac * self._width)
