"""Shared machinery for the table/figure reproduction experiments.

Scale
-----
Every experiment runs at two scales:

* **CI scale** (default): data sizes are 10 % of the paper's, so the whole
  evaluation reruns in minutes.  All error-rate claims are scale-free
  (RERA/RERL/RERN depend on the sample size ``s``, not on ``n`` — that is
  Table 5/6's very point), so the reproduction is meaningful at CI scale.
* **Paper scale**: set ``REPRO_FULL=1`` and the original 1M/5M/10M (and
  0.5M–32M parallel) sizes are used verbatim.

Data
----
Error-rate experiments generate their workloads in memory (the disk layer
is exercised by the storage tests, the examples and the I/O-cost
experiments); every dataset and its sorted ground-truth copy is memoised
per process so the tables that share a workload do not regenerate it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ
from repro.core.quantile_phase import bounds_for
from repro.errors import ConfigError
from repro.metrics import ErrorReport, dectile_fractions, score_bounds
from repro.workloads import UniformGenerator, ZipfGenerator

__all__ = [
    "full_scale",
    "resolve_n",
    "paper_dataset",
    "sorted_copy",
    "opaq_error_report",
    "TableResult",
    "DEFAULT_SEED",
    "PAPER_RUNS",
]

DEFAULT_SEED = 19970825  # VLDB'97 was held in late August in Athens.

#: The sequential experiments read the data as this many runs (the paper's
#: Table 7 footnote fixes r*s = 3000 with s = 1000, i.e. r = 3; the other
#: tables do not pin r, so a small constant run count is used throughout).
PAPER_RUNS = 3


def full_scale() -> bool:
    """True when the environment asks for paper-scale data sizes."""
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false")


def resolve_n(paper_n: int) -> int:
    """Scale a paper data size to the active scale (>= 10k always)."""
    if full_scale():
        return paper_n
    return max(10_000, paper_n // 10)


@lru_cache(maxsize=32)
def paper_dataset(distribution: str, n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """The paper's workload: ``distribution`` in {'uniform', 'zipf'}.

    Zipf uses the paper's parameter 0.86; both carry ``n/10`` duplicates.
    The returned array is read-only (it is shared across experiments).
    """
    if distribution == "uniform":
        gen = UniformGenerator()
    elif distribution == "zipf":
        gen = ZipfGenerator(parameter=0.86)
    else:
        raise ConfigError(
            f"unknown paper distribution {distribution!r}; "
            "use 'uniform' or 'zipf'"
        )
    data = gen.generate(n, seed=seed)
    data.flags.writeable = False
    return data


@lru_cache(maxsize=32)
def sorted_copy(distribution: str, n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Sorted ground truth for :func:`paper_dataset` (memoised)."""
    data = np.sort(paper_dataset(distribution, n, seed))
    data.flags.writeable = False
    return data


def opaq_error_report(
    distribution: str,
    n: int,
    sample_size: int,
    num_runs: int = PAPER_RUNS,
    seed: int = DEFAULT_SEED,
    phis: np.ndarray | None = None,
) -> ErrorReport:
    """Run OPAQ on a paper workload and score it on RERA/RERL/RERN."""
    if phis is None:
        phis = dectile_fractions()
    data = paper_dataset(distribution, n, seed)
    run_size = -(-n // num_runs)
    config = OPAQConfig(
        run_size=run_size, sample_size=min(sample_size, run_size)
    )
    summary = OPAQ(config).summarize(np.asarray(data))
    bounds = bounds_for(summary, phis)
    return score_bounds(
        sorted_copy(distribution, n, seed),
        phis,
        np.array([b.lower for b in bounds]),
        np.array([b.upper for b in bounds]),
        sample_size=sample_size,
        distribution=distribution,
        n=n,
        num_runs=num_runs,
    )


@dataclass
class TableResult:
    """A rendered experiment table, paper-style.

    ``paper_reference`` holds the corresponding numbers from the paper
    (when the paper prints them) so EXPERIMENTS.md and the benchmark
    output can show paper-vs-measured side by side.
    """

    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_reference: dict[str, object] = field(default_factory=dict)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Plain-text table in the paper's layout."""
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.header[i])
            for i in range(len(self.header))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
