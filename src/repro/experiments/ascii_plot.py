"""Terminal line charts for the figure reproductions.

The paper's Figures 3-6 are line plots; this module renders the reproduced
series as ASCII charts (no plotting dependency exists in the offline
environment, and text renders in CI logs and EXPERIMENTS.md alike).

>>> chart = AsciiChart(width=40, height=10)
>>> _ = chart.add_series("linear", [1, 2, 3, 4], [1, 2, 3, 4])
>>> print(chart.render())  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["AsciiChart"]

_MARKERS = "*o+x#@%&"


@dataclass
class AsciiChart:
    """A multi-series scatter/line chart drawn with characters.

    Parameters
    ----------
    width, height:
        Plot area size in character cells (excluding axes and labels).
    title:
        Optional heading line.
    logx, logy:
        Log-scale an axis (all values must then be positive).
    """

    width: int = 60
    height: int = 16
    title: str = ""
    logx: bool = False
    logy: bool = False
    _series: list[tuple[str, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ConfigError("chart too small to draw")

    def add_series(self, label: str, xs, ys) -> "AsciiChart":
        """Add one named series (chainable)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ConfigError("series xs and ys must be equal-length vectors")
        if xs.size == 0:
            raise ConfigError("series must contain at least one point")
        if len(self._series) >= len(_MARKERS):
            raise ConfigError(f"at most {len(_MARKERS)} series supported")
        self._series.append((label, xs, ys))
        return self

    def _transform(self, values: np.ndarray, log: bool) -> np.ndarray:
        if not log:
            return values
        if np.any(values <= 0):
            raise ConfigError("log scale requires positive values")
        return np.log10(values)

    def render(self) -> str:
        """Draw the chart as a multi-line string."""
        if not self._series:
            raise ConfigError("nothing to draw: add a series first")
        all_x = self._transform(
            np.concatenate([xs for _, xs, _ in self._series]), self.logx
        )
        all_y = self._transform(
            np.concatenate([ys for _, _, ys in self._series]), self.logy
        )
        x_lo, x_hi = float(all_x.min()), float(all_x.max())
        y_lo, y_hi = float(all_y.min()), float(all_y.max())
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        point_stamps: list[tuple[int, int, str]] = []
        for index, (label, xs, ys) in enumerate(self._series):
            marker = _MARKERS[index]
            tx = self._transform(xs, self.logx)
            ty = self._transform(ys, self.logy)
            cols = np.clip(
                ((tx - x_lo) / x_span * (self.width - 1)).round().astype(int),
                0,
                self.width - 1,
            )
            rows = np.clip(
                ((ty - y_lo) / y_span * (self.height - 1)).round().astype(int),
                0,
                self.height - 1,
            )
            order = np.argsort(cols)
            cols, rows = cols[order], rows[order]
            # Connect consecutive points with interpolated markers.
            for i in range(cols.size - 1):
                c0, r0, c1, r1 = cols[i], rows[i], cols[i + 1], rows[i + 1]
                steps = max(abs(int(c1) - int(c0)), abs(int(r1) - int(r0)), 1)
                for t in range(steps + 1):
                    c = round(c0 + (c1 - c0) * t / steps)
                    r = round(r0 + (r1 - r0) * t / steps)
                    grid[self.height - 1 - r][c] = marker
            # Actual data points win over any series' connector dots;
            # earlier series win ties so overlapping curves stay visible.
            for c, r in zip(cols, rows):
                point_stamps.append((self.height - 1 - int(r), int(c), marker))
        for row, col, marker in reversed(point_stamps):
            grid[row][col] = marker

        def fmt(v: float, log: bool) -> str:
            raw = 10**v if log else v
            return f"{raw:.4g}"

        lines = []
        if self.title:
            lines.append(self.title)
        label_width = max(len(fmt(y_hi, self.logy)), len(fmt(y_lo, self.logy)))
        for i, row in enumerate(grid):
            if i == 0:
                label = fmt(y_hi, self.logy).rjust(label_width)
            elif i == self.height - 1:
                label = fmt(y_lo, self.logy).rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        lines.append(" " * label_width + " +" + "-" * self.width)
        left = fmt(x_lo, self.logx)
        right = fmt(x_hi, self.logx)
        pad = self.width - len(left) - len(right)
        lines.append(
            " " * (label_width + 2) + left + " " * max(1, pad) + right
        )
        legend = "   ".join(
            f"{_MARKERS[i]} {label}" for i, (label, _, _) in enumerate(self._series)
        )
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)
