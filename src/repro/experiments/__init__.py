"""The paper-reproduction harness: one function per table and figure."""

from repro.experiments.ascii_plot import AsciiChart
from repro.experiments.figures import figure3, figure4, figure5, figure6
from repro.experiments.harness import (
    DEFAULT_SEED,
    PAPER_RUNS,
    TableResult,
    full_scale,
    opaq_error_report,
    paper_dataset,
    resolve_n,
    sorted_copy,
)
from repro.experiments.tables import (
    parallel_error_reports,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
)

#: Every reproduced table/figure, keyed by name, in report order (the
#: paper's own sequence: sequential evaluation, then the parallel merge
#: study, then the parallel evaluation).  ``opaq experiment NAME`` and the
#: EXPERIMENTS.md generator both resolve through this registry.
EXPERIMENTS = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "figure3": figure3,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "table12": table12,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}

__all__ = [
    "AsciiChart",
    "TableResult",
    "EXPERIMENTS",
    "full_scale",
    "resolve_n",
    "paper_dataset",
    "sorted_copy",
    "opaq_error_report",
    "parallel_error_reports",
    "DEFAULT_SEED",
    "PAPER_RUNS",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
]
