"""Reproduction of the paper's figures (Figures 3-6) as data series.

The originals are line plots; here each ``figureN()`` returns the plotted
series as numbers (and a rendered text table), which is what the shape
claims are checked against:

* Figure 3 — bitonic vs sample merge execution time: a crossover exists
  (bitonic wins small, sample merge wins large);
* Figure 4 — scale-up: near-flat total time at fixed n/p;
* Figure 5 — size-up: near-linear total time in n/p at fixed p;
* Figure 6 — speed-up: near-linear in p at fixed total size.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OPAQConfig
from repro.experiments.ascii_plot import AsciiChart
from repro.experiments.harness import (
    DEFAULT_SEED,
    PAPER_RUNS,
    TableResult,
    resolve_n,
    paper_dataset,
)
from repro.parallel import (
    MachineModel,
    ParallelOPAQ,
    SimulatedMachine,
    bitonic_merge,
    sample_merge,
    scaleup_series,
    sizeup_series,
    speedup_series,
)

__all__ = ["figure3", "figure4", "figure5", "figure6"]


def _sorted_blocks(p: int, keys_each: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [np.sort(rng.uniform(0.0, 1.0, size=keys_each)) for _ in range(p)]


def figure3(seed: int = DEFAULT_SEED) -> TableResult:
    """Merge execution time: bitonic vs sample, sizes 1K-128K bytes/proc.

    Reproduces the paper's Figure 3 axes exactly: x is the per-processor
    list size in Kbytes (8-byte keys), curves for p = 2, 4, 8 and both
    merge methods; the times come from executing the real merges on the
    simulated machine.
    """
    result = TableResult(
        title="Figure 3: global merge execution time (ms) vs list size",
        header=["KB/proc"]
        + [f"bitonic p={p}" for p in (2, 4, 8)]
        + [f"sample p={p}" for p in (2, 4, 8)],
        paper_reference={
            "claim": (
                "bitonic wins for small lists/machines, sample merge wins "
                "for large — the curves cross"
            )
        },
    )
    sizes_kb = (1, 2, 4, 8, 16, 32, 64, 128)
    series: dict[tuple[str, int], list[float]] = {}
    for kb in sizes_kb:
        keys = kb * 1024 // 8
        cells = [str(kb)]
        for method in ("bitonic", "sample"):
            for p in (2, 4, 8):
                machine = SimulatedMachine(p, MachineModel.sp2())
                blocks = _sorted_blocks(p, keys, seed + kb + p)
                if method == "bitonic":
                    bitonic_merge(blocks, machine)
                else:
                    sample_merge(blocks, machine)
                t = machine.elapsed()
                series.setdefault((method, p), []).append(t)
                cells.append(f"{t * 1e3:.3f}")
        result.add_row(*cells)
    # Record where each p's crossover falls for the shape check.
    for p in (2, 4, 8):
        bit = np.array(series[("bitonic", p)])
        sam = np.array(series[("sample", p)])
        crossed = np.flatnonzero(bit > sam)
        result.paper_reference[f"crossover_p{p}"] = (
            f"{sizes_kb[crossed[0]]}KB" if crossed.size else "none"
        )
    chart = AsciiChart(
        width=56, height=14, logx=True, logy=True,
        title="merge time (ms, log) vs KB/proc (log)",
    )
    for p in (2, 8):
        chart.add_series(
            f"bitonic p={p}", sizes_kb, [t * 1e3 for t in series[("bitonic", p)]]
        )
        chart.add_series(
            f"sample p={p}", sizes_kb, [t * 1e3 for t in series[("sample", p)]]
        )
    result.notes.append("\n" + chart.render())
    return result


def _timing(per_proc: int, p: int, seed: int, sample_size: int = 1024) -> float:
    n = per_proc * p
    data = paper_dataset("uniform", n, seed)
    run_size = max(sample_size, -(-per_proc // PAPER_RUNS))
    config = OPAQConfig(run_size=run_size, sample_size=min(sample_size, run_size))
    res = ParallelOPAQ(p, config, merge_method="sample").run(np.asarray(data))
    return res.total_time


def figure4(seed: int = DEFAULT_SEED) -> TableResult:
    """Scale-up: total time vs p at fixed per-processor size."""
    per_proc_sizes = [resolve_n(s) for s in (500_000, 1_000_000, 2_000_000, 4_000_000)]
    procs = (1, 2, 4, 8, 16)
    result = TableResult(
        title="Figure 4: scale-up — total time (s) vs processors",
        header=["p"] + [f"n/p={s:,}" for s in per_proc_sizes],
        paper_reference={"claim": "curves near-flat (global merge cost small)"},
    )
    series = {}
    for s in per_proc_sizes:
        series[s] = {p: _timing(s, p, seed) for p in procs}
    for p in procs:
        result.add_row(p, *(f"{series[s][p]:.3f}" for s in per_proc_sizes))
    for s in per_proc_sizes:
        sc = scaleup_series(series[s])
        result.paper_reference[f"scaleup_ratio_{s}"] = float(
            sc.values[-1] / sc.values[0]
        )
    chart = AsciiChart(
        width=56, height=12, title="total time (s) vs processors (flat = perfect)"
    )
    for s in per_proc_sizes:
        chart.add_series(f"n/p={s:,}", list(procs), [series[s][p] for p in procs])
    result.notes.append("\n" + chart.render())
    return result


def figure5(seed: int = DEFAULT_SEED) -> TableResult:
    """Size-up: total time vs per-processor size at fixed p."""
    per_proc_sizes = [resolve_n(s) for s in (500_000, 1_000_000, 2_000_000, 4_000_000)]
    procs = (1, 2, 4, 8, 16)
    result = TableResult(
        title="Figure 5: size-up — total time (s) vs per-processor elements",
        header=["n/p"] + [f"p={p}" for p in procs],
        paper_reference={"claim": "near-linear in n/p"},
    )
    series = {}
    for p in procs:
        series[p] = {s: _timing(s, p, seed) for s in per_proc_sizes}
    for s in per_proc_sizes:
        result.add_row(f"{s:,}", *(f"{series[p][s]:.3f}" for p in procs))
    for p in procs:
        su = sizeup_series(series[p])
        # Linearity: time(4M)/time(0.5M) should be ~8.
        result.paper_reference[f"sizeup_ratio_p{p}"] = float(
            su.values[-1] / su.values[0]
        )
    chart = AsciiChart(
        width=56, height=12,
        title="total time (s) vs per-processor elements (linear = perfect)",
    )
    for p in (1, 16):
        chart.add_series(
            f"p={p}", per_proc_sizes, [series[p][s] for s in per_proc_sizes]
        )
    result.notes.append("\n" + chart.render())
    return result


def figure6(seed: int = DEFAULT_SEED) -> TableResult:
    """Speed-up at a fixed total size (paper: 4M elements, p = 1..8)."""
    total = resolve_n(4_000_000)
    procs = (1, 2, 4, 8)
    result = TableResult(
        title=f"Figure 6: speed-up, total n={total:,}",
        header=["p", "time (s)", "speed-up"],
        paper_reference={"claim": "near-linear speed-up up to 8 processors"},
    )
    times = {}
    for p in procs:
        per_proc = -(-total // p)
        times[p] = _timing(per_proc, p, seed)
    sp = speedup_series(times)
    for p, v in zip(procs, sp.values):
        result.add_row(p, f"{times[p]:.3f}", f"{v:.2f}")
    result.paper_reference["speedup_at_8"] = float(sp.values[-1])
    chart = AsciiChart(width=48, height=12, title="speed-up vs processors")
    chart.add_series("measured", list(procs), list(sp.values))
    chart.add_series("ideal", list(procs), list(procs))
    result.notes.append("\n" + chart.render())
    return result
