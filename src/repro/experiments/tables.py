"""Reproduction of every table in the paper's evaluation (Tables 3-12).

Each ``tableN()`` function runs the corresponding experiment at the active
scale and returns a :class:`~repro.experiments.harness.TableResult` whose
``paper_reference`` carries the numbers printed in the paper for
side-by-side comparison.  The benchmark suite calls these and prints the
rendered tables; EXPERIMENTS.md records a snapshot.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    AdaptiveIntervalEstimator,
    RandomSamplingEstimator,
    consume,
)
from repro.core.config import OPAQConfig
from repro.experiments.harness import (
    DEFAULT_SEED,
    PAPER_RUNS,
    TableResult,
    opaq_error_report,
    paper_dataset,
    resolve_n,
    sorted_copy,
)
from repro.metrics import (
    dectile_fractions,
    rera_point_estimates,
    true_quantiles,
)
from repro.obs import MemorySink, phase_seconds, tracing
from repro.parallel import MachineModel, ParallelOPAQ, predict_merge_time
from repro.metrics import score_bounds

__all__ = [
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "parallel_error_reports",
]

_DECTILE_LABELS = [f"{k}0%" for k in range(1, 10)]
_SAMPLE_SIZES = (250, 500, 1000)


# ----------------------------------------------------------------------
# Tables 3/4: error rates versus sample size (n = 1M)
# ----------------------------------------------------------------------

def table3(seed: int = DEFAULT_SEED) -> TableResult:
    """RERA per dectile for s in {250, 500, 1000}, uniform and Zipf."""
    n = resolve_n(1_000_000)
    result = TableResult(
        title=(
            f"Table 3: RERA (%) of OPAQ, n={n:,}, "
            f"s in {_SAMPLE_SIZES} (paper: n=1M)"
        ),
        header=["Dectile"]
        + [f"unif s={s}" for s in _SAMPLE_SIZES]
        + [f"zipf s={s}" for s in _SAMPLE_SIZES],
        paper_reference={
            # Paper Table 3, 50% row.
            "median_row": {"unif": (0.38, 0.18, 0.09), "zipf": (0.30, 0.16, 0.07)},
            "bound": "RERA <= 2/s*100 (0.8 / 0.4 / 0.2)",
        },
    )
    reports = {
        (dist, s): opaq_error_report(dist, n, s, seed=seed)
        for dist in ("uniform", "zipf")
        for s in _SAMPLE_SIZES
    }
    for k, label in enumerate(_DECTILE_LABELS):
        cells = [label]
        for dist in ("uniform", "zipf"):
            for s in _SAMPLE_SIZES:
                cells.append(f"{reports[(dist, s)].rera[k]:.2f}")
        result.add_row(*cells)
    result.notes.append(
        "doubling s should roughly halve RERA; all values must stay under "
        "the analytic bound 200/s"
    )
    return result


def table4(seed: int = DEFAULT_SEED) -> TableResult:
    """RERL and RERN for s in {250, 500, 1000}, uniform and Zipf."""
    n = resolve_n(1_000_000)
    result = TableResult(
        title=(
            f"Table 4: RERL/RERN (%) of OPAQ, n={n:,}, "
            f"s in {_SAMPLE_SIZES} (paper: n=1M)"
        ),
        header=["Rate"]
        + [f"unif s={s}" for s in _SAMPLE_SIZES]
        + [f"zipf s={s}" for s in _SAMPLE_SIZES],
        paper_reference={
            "RERL": {"unif": (1.88, 0.99, 0.46), "zipf": (1.88, 0.89, 0.52)},
            "RERN": {"unif": (2.62, 1.15, 0.60), "zipf": (2.68, 1.09, 0.53)},
            "bound": "RERL, RERN <= q/s*100 (4.0 / 2.0 / 1.0)",
        },
    )
    reports = {
        (dist, s): opaq_error_report(dist, n, s, seed=seed)
        for dist in ("uniform", "zipf")
        for s in _SAMPLE_SIZES
    }
    for rate in ("RERL", "RERN"):
        cells = [rate]
        for dist in ("uniform", "zipf"):
            for s in _SAMPLE_SIZES:
                rep = reports[(dist, s)]
                cells.append(f"{(rep.rerl if rate == 'RERL' else rep.rern):.2f}")
        result.add_row(*cells)
    return result


# ----------------------------------------------------------------------
# Tables 5/6: error rates versus data size (s = 1000)
# ----------------------------------------------------------------------

_PAPER_SIZES = (1_000_000, 5_000_000, 10_000_000)


def table5(seed: int = DEFAULT_SEED) -> TableResult:
    """RERA per dectile for n in {1M, 5M, 10M}, s = 1000."""
    sizes = [resolve_n(n) for n in _PAPER_SIZES]
    labels = [f"{n/1e6:g}M" for n in _PAPER_SIZES]
    result = TableResult(
        title=(
            f"Table 5: RERA (%) of OPAQ, s=1000, n={sizes} "
            "(paper: 1M/5M/10M)"
        ),
        header=["Dectile"]
        + [f"unif {L}" for L in labels]
        + [f"zipf {L}" for L in labels],
        paper_reference={
            "typical": 0.09,
            "claim": "accuracy independent of n at fixed s",
        },
    )
    reports = {
        (dist, n): opaq_error_report(dist, n, 1000, seed=seed)
        for dist in ("uniform", "zipf")
        for n in sizes
    }
    for k, label in enumerate(_DECTILE_LABELS):
        cells = [label]
        for dist in ("uniform", "zipf"):
            for n in sizes:
                cells.append(f"{reports[(dist, n)].rera[k]:.2f}")
        result.add_row(*cells)
    return result


def table6(seed: int = DEFAULT_SEED) -> TableResult:
    """RERL and RERN for n in {1M, 5M, 10M}, s = 1000."""
    sizes = [resolve_n(n) for n in _PAPER_SIZES]
    labels = [f"{n/1e6:g}M" for n in _PAPER_SIZES]
    result = TableResult(
        title=f"Table 6: RERL/RERN (%) of OPAQ, s=1000, n={sizes}",
        header=["Rate"]
        + [f"unif {L}" for L in labels]
        + [f"zipf {L}" for L in labels],
        paper_reference={
            "RERL": {"unif": (0.46, 0.51, 0.53), "zipf": (0.52, 0.53, 0.54)},
            "RERN": {"unif": (0.60, 0.58, 0.55), "zipf": (0.53, 0.54, 0.54)},
        },
    )
    reports = {
        (dist, n): opaq_error_report(dist, n, 1000, seed=seed)
        for dist in ("uniform", "zipf")
        for n in sizes
    }
    for rate in ("RERL", "RERN"):
        cells = [rate]
        for dist in ("uniform", "zipf"):
            for n in sizes:
                rep = reports[(dist, n)]
                cells.append(f"{(rep.rerl if rate == 'RERL' else rep.rern):.2f}")
        result.add_row(*cells)
    return result


# ----------------------------------------------------------------------
# Table 7: OPAQ versus [AS95] and random sampling at equal memory
# ----------------------------------------------------------------------

def table7(seed: int = DEFAULT_SEED) -> TableResult:
    """Per-dectile RERA of OPAQ, the [AS95] interval algorithm and random
    sampling, all given the same memory (3000 keys, the paper's setup)."""
    n = resolve_n(1_000_000)
    memory = 3000  # r*s = 3*1000 in the paper's footnote
    phis = dectile_fractions()
    result = TableResult(
        title=(
            f"Table 7: RERA (%) comparison at equal memory "
            f"({memory} keys), n={n:,}"
        ),
        header=["Dectile"]
        + [f"unif {alg}" for alg in ("OPAQ", "AS95", "RSamp")]
        + [f"zipf {alg}" for alg in ("OPAQ", "AS95", "RSamp")],
        paper_reference={
            "median_row": {
                "unif": {"OPAQ": 0.13, "AS95": 0.5, "RSamp": 0.5},
                "zipf": {"OPAQ": 0.12, "AS95": 0.5, "RSamp": 0.1},
            },
            "claim": (
                "OPAQ comparable or better; only OPAQ's error is "
                "deterministically bounded"
            ),
        },
    )
    per_alg: dict[tuple[str, str], np.ndarray] = {}
    for dist in ("uniform", "zipf"):
        data = paper_dataset(dist, n, seed)
        sd = sorted_copy(dist, n, seed)
        trues = true_quantiles(sd, phis)
        # OPAQ: r=3 runs of s=1000 -> exactly 3000 retained sample keys.
        rep = opaq_error_report(dist, n, memory // PAPER_RUNS, seed=seed)
        per_alg[(dist, "OPAQ")] = rep.rera
        # Stream in run-sized chunks: a one-pass algorithm must not see
        # the whole data set at once (its seeding would then be exact).
        chunk = -(-n // (PAPER_RUNS * 8))
        as95 = consume(
            AdaptiveIntervalEstimator(intervals=memory // 2),
            np.asarray(data),
            run_size=chunk,
        )
        per_alg[(dist, "AS95")] = rera_point_estimates(
            sd, trues, as95.query_many(phis)
        )
        rsamp = consume(
            RandomSamplingEstimator(capacity=memory, seed=seed),
            np.asarray(data),
            run_size=chunk,
        )
        per_alg[(dist, "RSamp")] = rera_point_estimates(
            sd, trues, rsamp.query_many(phis)
        )
    for k, label in enumerate(_DECTILE_LABELS):
        cells = [label]
        for dist in ("uniform", "zipf"):
            for alg in ("OPAQ", "AS95", "RSamp"):
                cells.append(f"{per_alg[(dist, alg)][k]:.2f}")
        result.add_row(*cells)
    result.notes.append(
        "paper reports AS95/random-sampling numbers from [AS95]; here all "
        "three run on the same data"
    )
    result.notes.append(
        "memory parity counts retained sample keys (r*s = 3000), as the "
        "paper does; this implementation carries two bookkeeping words "
        "per sample for merge/compaction generality, which a divisible-"
        "case deployment compresses to O(1) (constant gaps, closed-form "
        "bounds)"
    )
    return result


# ----------------------------------------------------------------------
# Table 8: analytic cost of the two global merges
# ----------------------------------------------------------------------

def table8(model: MachineModel | None = None) -> TableResult:
    """The paper's Table 8 formulas, evaluated: predicted global-merge
    time for both methods across p and per-processor list sizes."""
    model = model or MachineModel.sp2()
    result = TableResult(
        title="Table 8: predicted global merge time (ms), two-level model",
        header=["rs per proc"]
        + [f"bitonic p={p}" for p in (2, 4, 8, 16)]
        + [f"sample p={p}" for p in (2, 4, 8, 16)],
        paper_reference={
            "bitonic": "O((n/p log s + rs(1+log p)log p)mu + (1+log p)log p(tau+rs beta))",
            "sample": "O((n/p log s + s' + (p-1)log rs + rs log p)mu + ...)",
            "claim": "bitonic better for small p and small lists",
        },
    )
    for rs in (125, 500, 2000, 8000, 16000):
        cells = [str(rs)]
        for method in ("bitonic", "sample"):
            for p in (2, 4, 8, 16):
                t = predict_merge_time(p, rs, model, method)
                cells.append(f"{t * 1e3:.3f}")
        result.add_row(*cells)
    return result


# ----------------------------------------------------------------------
# Tables 9/10: parallel error rates (p = 8)
# ----------------------------------------------------------------------

_PAPER_PARALLEL_SIZES = (
    500_000,
    1_000_000,
    2_000_000,
    4_000_000,
    8_000_000,
    16_000_000,
    32_000_000,
)


def parallel_error_reports(
    sizes=None,
    p: int = 8,
    sample_size: int = 1024,
    seed: int = DEFAULT_SEED,
):
    """Run parallel OPAQ for each total size; return {n: ErrorReport}.

    Matches the paper's setup: 8 processors, 1024 samples per run, uniform
    data, run size fixed so each processor holds a few runs.
    """
    if sizes is None:
        sizes = [resolve_n(n) for n in _PAPER_PARALLEL_SIZES]
    phis = dectile_fractions()
    reports = {}
    for n in sizes:
        data = paper_dataset("uniform", n, seed)
        per_proc = -(-n // p)
        run_size = max(sample_size, -(-per_proc // PAPER_RUNS))
        config = OPAQConfig(
            run_size=run_size, sample_size=min(sample_size, run_size)
        )
        par = ParallelOPAQ(p, config, merge_method="sample")
        res = par.run(np.asarray(data), phis=phis)
        bounds = res.bounds(phis)
        reports[n] = score_bounds(
            np.sort(np.asarray(data)),
            phis,
            np.array([b.lower for b in bounds]),
            np.array([b.upper for b in bounds]),
            sample_size=sample_size,
            p=p,
            total_time=res.total_time,
        )
    return reports


def table9(seed: int = DEFAULT_SEED) -> TableResult:
    """Parallel RERA per dectile versus total data size (p = 8)."""
    sizes = [resolve_n(n) for n in _PAPER_PARALLEL_SIZES]
    labels = [f"{n/1e6:g}M" for n in _PAPER_PARALLEL_SIZES]
    reports = parallel_error_reports(sizes=sizes, seed=seed)
    result = TableResult(
        title=f"Table 9: parallel RERA (%), p=8, 1024 samples/run, n={sizes}",
        header=["Dectile"] + labels,
        paper_reference={"typical": 0.09, "claim": "independent of n"},
    )
    for k, label in enumerate(_DECTILE_LABELS):
        result.add_row(label, *(f"{reports[n].rera[k]:.2f}" for n in sizes))
    return result


def table10(seed: int = DEFAULT_SEED) -> TableResult:
    """Parallel RERL and RERN versus total data size (p = 8)."""
    sizes = [resolve_n(n) for n in _PAPER_PARALLEL_SIZES]
    labels = [f"{n/1e6:g}M" for n in _PAPER_PARALLEL_SIZES]
    reports = parallel_error_reports(sizes=sizes, seed=seed)
    result = TableResult(
        title=f"Table 10: parallel RERL/RERN (%), p=8, n={sizes}",
        header=["Rate"] + labels,
        paper_reference={
            "RERL": (0.62, 0.62, 0.54, 0.61, 0.53, 0.54, 0.51),
            "RERN": (0.67, 0.60, 0.59, 0.61, 0.56, 0.54, 0.52),
        },
    )
    result.add_row("RERL", *(f"{reports[n].rerl:.2f}" for n in sizes))
    result.add_row("RERN", *(f"{reports[n].rern:.2f}" for n in sizes))
    return result


# ----------------------------------------------------------------------
# Tables 11/12: where the time goes
# ----------------------------------------------------------------------

_PER_PROC_SIZES = (500_000, 1_000_000, 2_000_000, 4_000_000)
_PROC_COUNTS = (1, 2, 4, 8, 16)


def _parallel_timing_run(
    per_proc: int, p: int, seed: int = DEFAULT_SEED, sample_size: int = 1024
):
    """One simulated parallel run sized by per-processor elements."""
    n = per_proc * p
    data = paper_dataset("uniform", n, seed)
    run_size = max(sample_size, -(-per_proc // PAPER_RUNS))
    config = OPAQConfig(run_size=run_size, sample_size=min(sample_size, run_size))
    par = ParallelOPAQ(p, config, merge_method="sample")
    return par.run(np.asarray(data), phis=dectile_fractions())


def _traced_phase_seconds(per_proc: int, p: int, seed: int) -> dict[str, float]:
    """Phase -> simulated seconds, read back from the emitted trace events.

    Tables 11 and 12 consume the observability stream rather than poking
    at the machine object: the run executes under an in-memory sink and
    the phase times come from the ``spmd.phase_seconds`` counters, which
    cross-checks that the emitted events carry the full cost model.
    """
    sink = MemorySink()
    with tracing(sink):
        _parallel_timing_run(per_proc, p, seed=seed)
    return phase_seconds(sink.events)


def table11(seed: int = DEFAULT_SEED) -> TableResult:
    """Fraction of the total time spent in I/O (paper: ~0.5 everywhere)."""
    sizes = [resolve_n(s) for s in _PER_PROC_SIZES]
    labels = [f"{s/1e6:g}M" for s in _PER_PROC_SIZES]
    result = TableResult(
        title=f"Table 11: I/O fraction of total time, n/p={sizes}",
        header=["Size"] + [f"{p} Proc." for p in _PROC_COUNTS],
        paper_reference={
            "rows": {
                "0.5M": (0.54, 0.53, 0.52, 0.52, 0.50),
                "1M": (0.53, 0.40, 0.52, 0.51, 0.50),
                "2M": (0.53, 0.57, 0.51, 0.51, 0.53),
                "4M": (0.52, 0.49, 0.51, 0.52, 0.51),
            }
        },
    )
    for label, per_proc in zip(labels, sizes):
        cells = [label]
        for p in _PROC_COUNTS:
            phases = _traced_phase_seconds(per_proc, p, seed)
            total = sum(phases.values())
            cells.append(f"{phases.get('io', 0.0) / total if total else 0.0:.2f}")
        result.add_row(*cells)
    result.notes.append("fractions computed from emitted trace events")
    return result


def table12(seed: int = DEFAULT_SEED) -> TableResult:
    """Per-phase fraction of the total time at n/p = 4M (scaled)."""
    per_proc = resolve_n(4_000_000)
    result = TableResult(
        title=f"Table 12: phase fractions of total time, n/p={per_proc:,}",
        header=["Phase"] + [f"{p} Proc." for p in _PROC_COUNTS],
        paper_reference={
            "I/O": (0.52, 0.49, 0.51, 0.52, 0.51),
            "Sampling": (0.47, 0.44, 0.47, 0.46, 0.45),
            "Local Merg.": (0.004, 0.051, 0.003, 0.004, 0.009),
            "Global Merg.": (0.0, 0.002, 0.005, 0.010, 0.015),
        },
    )
    fractions = {}
    for p in _PROC_COUNTS:
        phases = _traced_phase_seconds(per_proc, p, seed)
        total = sum(phases.values())
        fractions[p] = (
            {ph: t / total for ph, t in phases.items()} if total else {}
        )
    for phase, label in (
        ("io", "I/O"),
        ("sampling", "Sampling"),
        ("local_merge", "Local Merg."),
        ("global_merge", "Global Merg."),
    ):
        result.add_row(
            label,
            *(f"{fractions[p].get(phase, 0.0):.3f}" for p in _PROC_COUNTS),
        )
    result.notes.append(
        "paper: I/O + sampling >= 83% of the total, merges small"
    )
    result.notes.append("fractions computed from emitted trace events")
    return result
