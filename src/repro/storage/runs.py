"""Run-at-a-time reading with single-pass enforcement and I/O accounting.

OPAQ's defining property is that it reads the data **once**, as ``r = n/m``
runs of ``m`` elements.  :class:`RunReader` is the gatekeeper that makes the
property checkable: it hands out runs in order, counts every element and byte
that crosses it, and refuses to start more passes than its budget allows
(one, by default; the exact-quantile extension of the paper's section 4
explicitly requests a budget of two).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigError, SinglePassViolation
from repro.obs import current_tracer
from repro.storage.datafile import DiskDataset

__all__ = ["IOStats", "RunReader"]


@dataclass
class IOStats:
    """Counters for everything a reader pulled off disk."""

    elements_read: int = 0
    bytes_read: int = 0
    read_ops: int = 0
    passes_started: int = 0
    runs_read: int = 0

    def charge(self, elements: int, element_size: int) -> None:
        """Record one contiguous read of ``elements`` keys."""
        self.elements_read += elements
        self.bytes_read += elements * element_size
        self.read_ops += 1


@dataclass
class RunReader:
    """Iterate a :class:`DiskDataset` as runs of ``run_size`` elements.

    Parameters
    ----------
    dataset:
        The disk-resident data.
    run_size:
        ``m`` in the paper — how many keys fit in the run buffer.  The last
        run may be shorter when ``m`` does not divide ``n``.
    max_passes:
        How many full passes over the data are permitted.  OPAQ proper uses
        1; the two-pass exact extension uses 2.  Exceeding the budget raises
        :class:`~repro.errors.SinglePassViolation`.
    """

    dataset: DiskDataset
    run_size: int
    max_passes: int = 1
    stats: IOStats = field(default_factory=IOStats)

    def __post_init__(self) -> None:
        if self.run_size <= 0:
            raise ConfigError("run_size must be positive")
        if self.max_passes <= 0:
            raise ConfigError("max_passes must be positive")

    @property
    def num_runs(self) -> int:
        """``r = ceil(n/m)`` — the number of runs one pass yields."""
        return -(-self.dataset.count // self.run_size)

    def runs(self) -> Iterator[np.ndarray]:
        """Yield the runs of one pass, charging I/O as they are read.

        Each call to :meth:`runs` starts a new pass and draws down the pass
        budget *when the first run is actually read*, so constructing the
        generator is free.
        """
        if self.stats.passes_started >= self.max_passes:
            raise SinglePassViolation(
                f"pass budget exhausted: {self.max_passes} pass(es) allowed "
                f"over {self.dataset.path}"
            )
        self.stats.passes_started += 1
        tracer = current_tracer()
        tracer.count("io.pass", 1)
        element_size = self.dataset.dtype.itemsize
        for index, start in enumerate(range(0, self.dataset.count, self.run_size)):
            count = min(self.run_size, self.dataset.count - start)
            run = self.dataset.read_range(start, count)
            self.stats.charge(count, element_size)
            self.stats.runs_read += 1
            tracer.count("io.elements", count, run=index)
            tracer.count("io.bytes", count * element_size, run=index)
            yield run

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.runs()
