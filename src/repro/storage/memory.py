"""The paper's main-memory model.

Section 2.3 constrains the algorithm's parameters by the size of main
memory ``M`` (in keys): during the sample phase the algorithm must hold one
run buffer (``m`` keys) *and* the growing merged sample list (``r*s`` keys)
at the same time, so

    ``r*s + m  <=  M``        with ``r = n/m``.

Since good bounds need ``s >= 2q``, the largest number of quantiles
obtainable within a memory budget is ``O(M^2 / n)`` (choose ``m ~ M/2``).
:class:`MemoryModel` validates configurations against this constraint and
derives good default run/sample sizes from a budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Feasibility checks for OPAQ parameter choices.

    Parameters
    ----------
    capacity:
        ``M`` — main-memory budget measured in keys.
    """

    capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("memory capacity must be positive")

    def footprint(self, n: int, run_size: int, sample_size: int) -> int:
        """Peak working-set size in keys: run buffer + merged sample list."""
        num_runs = -(-n // run_size)
        return num_runs * sample_size + run_size

    def validate(self, n: int, run_size: int, sample_size: int) -> None:
        """Raise :class:`~repro.errors.ConfigError` if ``r*s + m > M``."""
        if run_size <= 0 or sample_size <= 0 or n <= 0:
            raise ConfigError("n, run_size and sample_size must be positive")
        if sample_size > run_size:
            raise ConfigError(
                f"sample_size ({sample_size}) cannot exceed run_size "
                f"({run_size}): each run contributes s of its m elements"
            )
        need = self.footprint(n, run_size, sample_size)
        if need > self.capacity:
            raise ConfigError(
                f"configuration needs {need} keys of memory "
                f"(r*s + m with r={-(-n // run_size)}) but the budget is "
                f"{self.capacity}; shrink sample_size or grow run_size"
            )

    def max_quantiles(self, n: int) -> int:
        """Largest ``q`` estimable under this budget (the paper's O(M²/n)).

        Derived by choosing ``m = M/2`` and ``s = 2q`` in the constraint.
        """
        if n <= 0:
            raise ConfigError("n must be positive")
        m = max(1, self.capacity // 2)
        r = -(-n // m)
        s = (self.capacity - m) // r
        return max(0, s // 2)

    def suggest(self, n: int, sample_size: int) -> int:
        """Suggest a run size ``m`` for a given ``n`` and ``s``.

        Picks the smallest power-of-two-ish ``m`` that satisfies the
        constraint with at least two runs when the data does not fit in
        memory, preferring more runs (cheaper sample phase per run) while
        staying feasible.
        """
        if sample_size <= 0:
            raise ConfigError("sample_size must be positive")
        if sample_size > n:
            raise ConfigError(
                f"sample_size ({sample_size}) cannot exceed n ({n})"
            )
        if n + sample_size <= self.capacity:
            # Data fits as a single run alongside its sample list.
            return n
        # footprint(m) = ceil(n/m)*s + m is U-shaped in m with its minimum
        # near m* = sqrt(n*s).  Feasibility is checked at the minimum; the
        # smallest feasible m is then found by binary search on the
        # decreasing branch [s, m*].
        m_star = max(sample_size, int(math.isqrt(n * sample_size)))
        if self.footprint(n, m_star, sample_size) > self.capacity:
            best = -1
        else:
            lo, hi = sample_size, m_star
            best = m_star
            while lo <= hi:
                mid = (lo + hi) // 2
                if self.footprint(n, mid, sample_size) <= self.capacity:
                    best = mid
                    hi = mid - 1
                else:
                    lo = mid + 1
        if best < 0:
            raise ConfigError(
                f"no feasible run size: n={n}, s={sample_size}, "
                f"M={self.capacity} (need r*s + m <= M)"
            )
        return best

    @staticmethod
    def required_capacity(n: int, run_size: int, sample_size: int) -> int:
        """Memory a configuration needs — handy for sizing budgets in tests."""
        num_runs = -(-n // run_size)
        return num_runs * sample_size + run_size
