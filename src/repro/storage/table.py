"""Multi-column (columnar) disk-resident tables.

The paper frames OPAQ as database infrastructure — optimizer statistics
are per-*attribute*, so a realistic deployment summarises many columns of
one table.  :class:`TableDataset` is the minimal columnar layout that
supports it: a directory holding one :class:`~repro.storage.DiskDataset`
per column plus a JSON manifest, with row-aligned streaming writes.

Each column is independently readable run-at-a-time, which is exactly
what per-column OPAQ passes need (and mirrors how a column store feeds
statistics collection).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, DataError
from repro.storage.datafile import DatasetWriter, DiskDataset

__all__ = ["TableDataset", "TableWriter"]

_MANIFEST = "table.json"


@dataclass(frozen=True)
class TableDataset:
    """A read-only columnar table on disk."""

    path: Path
    columns: tuple[str, ...]
    row_count: int

    @classmethod
    def open(cls, path: str | os.PathLike) -> "TableDataset":
        """Open and validate a table directory."""
        path = Path(path)
        manifest_path = path / _MANIFEST
        if not manifest_path.exists():
            raise DataError(f"not a table (no {_MANIFEST}): {path}")
        try:
            manifest = json.loads(manifest_path.read_text())
            columns = tuple(manifest["columns"])
            row_count = int(manifest["rows"])
        except (KeyError, ValueError, TypeError) as exc:
            raise DataError(f"malformed table manifest in {path}: {exc}") from None
        table = cls(path=path, columns=columns, row_count=row_count)
        # Validate every column file agrees on the row count.
        for name in columns:
            ds = table.column(name)
            if ds.count != row_count:
                raise DataError(
                    f"column {name!r} holds {ds.count} rows, manifest says "
                    f"{row_count}"
                )
        return table

    @classmethod
    def create(
        cls, path: str | os.PathLike, data: dict[str, np.ndarray]
    ) -> "TableDataset":
        """Write an in-memory dict of equal-length columns as a table."""
        with TableWriter(path, columns=list(data)) as writer:
            writer.append(data)
        return cls.open(path)

    def column(self, name: str) -> DiskDataset:
        """Open one column as a dataset."""
        if name not in self.columns:
            raise DataError(
                f"no column {name!r}; table has {list(self.columns)}"
            )
        return DiskDataset.open(self.path / f"{name}.opaq")

    def read_columns(self, names=None) -> dict[str, np.ndarray]:
        """Materialise some (default: all) columns — test/truth helper."""
        names = list(names) if names is not None else list(self.columns)
        return {name: self.column(name).read_all() for name in names}


class TableWriter:
    """Row-aligned streaming writer for :class:`TableDataset`.

    Chunks are dicts of per-column arrays; every append must cover every
    column with arrays of one common length, so the columns can never
    drift out of alignment.

    ::

        with TableWriter("t", columns=["a", "b"]) as w:
            w.append({"a": chunk_a, "b": chunk_b})
    """

    def __init__(self, path: str | os.PathLike, columns: list[str]) -> None:
        if not columns:
            raise ConfigError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigError("duplicate column names")
        for name in columns:
            if not name or "/" in name or name.startswith("."):
                raise ConfigError(f"invalid column name {name!r}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.columns = list(columns)
        self.rows = 0
        self._writers = {
            name: DatasetWriter(self.path / f"{name}.opaq", dtype=np.float64)
            for name in columns
        }
        self._closed = False

    def append(self, chunk: dict[str, np.ndarray]) -> None:
        """Append one row-aligned chunk."""
        if self._closed:
            raise DataError("writer is closed")
        if set(chunk) != set(self.columns):
            raise ConfigError(
                f"chunk must cover exactly the columns {self.columns}"
            )
        lengths = {name: np.asarray(values).shape[0] for name, values in chunk.items()}
        if len(set(lengths.values())) != 1:
            raise ConfigError(f"ragged chunk: {lengths}")
        for name in self.columns:
            self._writers[name].append(np.asarray(chunk[name], dtype=np.float64))
        self.rows += next(iter(lengths.values()))

    def close(self) -> TableDataset:
        """Finalise every column and the manifest."""
        if not self._closed:
            for writer in self._writers.values():
                writer.close()
            (self.path / _MANIFEST).write_text(
                json.dumps({"columns": self.columns, "rows": self.rows})
            )
            self._closed = True
        return TableDataset.open(self.path)

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif not self._closed:
            for writer in self._writers.values():
                writer._file.close()
                writer._closed = True
            self._closed = True
