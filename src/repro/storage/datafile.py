"""Binary on-disk datasets.

The paper's data is *disk-resident*: larger than memory, read strictly in
runs.  :class:`DiskDataset` is the on-disk representation — a tiny
self-describing header followed by a flat array of little-endian keys — and
offers only bulk, offset-based reads so every byte that moves from disk to
memory is observable and chargeable to the I/O cost model.

The header makes files self-describing (dtype + count) so a dataset written
on one machine can be validated when opened on another, and so truncation is
detected instead of silently yielding garbage.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ConfigError, DataError

__all__ = ["DiskDataset", "DatasetWriter"]

_MAGIC = b"OPAQDS01"
_DTYPES = {b"f8": np.dtype("<f8"), b"i8": np.dtype("<i8")}
_DTYPE_CODES = {np.dtype("<f8"): b"f8", np.dtype("<i8"): b"i8"}
_HEADER = struct.Struct("<8s2sxxxxxxq")  # magic, dtype code, pad, count


@dataclass(frozen=True)
class DiskDataset:
    """A read-only disk-resident array of keys.

    Attributes
    ----------
    path:
        Location of the backing file.
    dtype:
        Element dtype (``<f8`` or ``<i8``).
    count:
        Number of elements in the dataset (``n`` in the paper).
    """

    path: Path
    dtype: np.dtype
    count: int

    @classmethod
    def open(cls, path: str | os.PathLike) -> "DiskDataset":
        """Open and validate an existing dataset file."""
        path = Path(path)
        try:
            with open(path, "rb") as f:
                raw = f.read(_HEADER.size)
        except FileNotFoundError:
            raise DataError(f"dataset file does not exist: {path}") from None
        if len(raw) != _HEADER.size:
            raise DataError(f"dataset header truncated: {path}")
        magic, code, count = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise DataError(f"not an OPAQ dataset (bad magic): {path}")
        if code not in _DTYPES:
            raise DataError(f"unsupported dtype code {code!r} in {path}")
        dtype = _DTYPES[code]
        expected = _HEADER.size + count * dtype.itemsize
        actual = path.stat().st_size
        if actual != expected:
            raise DataError(
                f"dataset {path} truncated or padded: header promises "
                f"{count} elements ({expected} bytes), file has {actual} bytes"
            )
        return cls(path=path, dtype=dtype, count=count)

    @classmethod
    def create(
        cls, path: str | os.PathLike, values: np.ndarray
    ) -> "DiskDataset":
        """Write ``values`` to ``path`` and return the opened dataset.

        Convenience for data that already fits in memory; use
        :class:`DatasetWriter` to stream paper-scale data to disk chunk by
        chunk.
        """
        with DatasetWriter(path, dtype=np.asarray(values).dtype) as writer:
            writer.append(values)
        return cls.open(path)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (excluding the header)."""
        return self.count * self.dtype.itemsize

    def read_range(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` elements starting at element index ``start``.

        This is the *only* read primitive: one contiguous range per call,
        mirroring a sequential disk read of part of a run.
        """
        if start < 0 or count < 0 or start + count > self.count:
            raise DataError(
                f"read_range({start}, {count}) out of bounds for "
                f"dataset of {self.count} elements"
            )
        offset = _HEADER.size + start * self.dtype.itemsize
        with open(self.path, "rb") as f:
            f.seek(offset)
            data = np.fromfile(f, dtype=self.dtype, count=count)
        if data.size != count:
            raise DataError(
                f"short read from {self.path}: wanted {count}, got {data.size}"
            )
        return data

    def read_all(self) -> np.ndarray:
        """Read the entire dataset (test/ground-truth helper, not the API
        the estimator uses — the estimator goes through
        :class:`repro.storage.RunReader`)."""
        return self.read_range(0, self.count)

    def iter_ranges(self, chunk: int) -> Iterator[np.ndarray]:
        """Yield the dataset in contiguous chunks of ``chunk`` elements."""
        if chunk <= 0:
            raise ConfigError("chunk size must be positive")
        for start in range(0, self.count, chunk):
            yield self.read_range(start, min(chunk, self.count - start))


class DatasetWriter:
    """Streaming writer for :class:`DiskDataset` files.

    Writes the header up front with a placeholder count, appends chunks,
    and patches the true count on close — so a writer crash leaves a file
    that :meth:`DiskDataset.open` rejects (count mismatch) rather than a
    silently short dataset.

    Use as a context manager::

        with DatasetWriter("keys.opaq") as w:
            for chunk in generator:
                w.append(chunk)
    """

    def __init__(
        self, path: str | os.PathLike, dtype: np.dtype | str = np.float64
    ) -> None:
        dtype = np.dtype(dtype).newbyteorder("<")
        if dtype not in _DTYPE_CODES:
            raise ConfigError(
                f"unsupported dtype {dtype}; use float64 or int64"
            )
        self.path = Path(path)
        self.dtype = dtype
        self.count = 0
        self._file = open(self.path, "wb")  # opaq: transfer[self._file] writer owns it; released in close()
        self._file.write(_HEADER.pack(_MAGIC, _DTYPE_CODES[dtype], -1))
        self._closed = False

    def append(self, values: np.ndarray) -> None:
        """Append a chunk of keys to the file."""
        if self._closed:
            raise DataError("writer is closed")
        chunk = np.ascontiguousarray(values, dtype=self.dtype)
        chunk.tofile(self._file)
        self.count += chunk.size

    def close(self) -> DiskDataset:
        """Finalise the header and return the opened dataset."""
        if not self._closed:
            self._file.seek(0)
            self._file.write(_HEADER.pack(_MAGIC, _DTYPE_CODES[self.dtype], self.count))
            self._file.close()
            self._closed = True
        return DiskDataset.open(self.path)

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # leave the placeholder count so open() rejects the file
            if not self._closed:
                self._file.close()
                self._closed = True
