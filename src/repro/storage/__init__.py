"""Disk-resident storage substrate.

Binary dataset files (:class:`DiskDataset`, :class:`DatasetWriter`),
run-at-a-time single-pass reading with I/O accounting (:class:`RunReader`,
:class:`IOStats`), and the paper's main-memory feasibility model
(:class:`MemoryModel`).
"""

from repro.storage.datafile import DatasetWriter, DiskDataset
from repro.storage.memory import MemoryModel
from repro.storage.runs import IOStats, RunReader
from repro.storage.table import TableDataset, TableWriter

__all__ = [
    "DiskDataset",
    "DatasetWriter",
    "RunReader",
    "IOStats",
    "MemoryModel",
    "TableDataset",
    "TableWriter",
]
