"""Ground truth and the paper's error measures (RERA, RERL, RERN)."""

from repro.metrics.error_rates import (
    ErrorReport,
    rera_bound,
    rera_per_quantile,
    rera_point_estimates,
    rerl,
    rerl_bound,
    rern,
    rern_bound,
    score_bounds,
)
from repro.metrics.true_quantiles import (
    decile_fractions,
    dectile_fractions,
    equidepth_fractions,
    quantile_rank,
    rank_of_value,
    true_quantiles,
)

__all__ = [
    "ErrorReport",
    "score_bounds",
    "rera_per_quantile",
    "rera_point_estimates",
    "rerl",
    "rern",
    "rera_bound",
    "rerl_bound",
    "rern_bound",
    "quantile_rank",
    "true_quantiles",
    "dectile_fractions",
    "decile_fractions",
    "equidepth_fractions",
    "rank_of_value",
]
