"""The paper's three relative error rates: RERA, RERL, RERN (section 2.4).

All three score a set of ``q-1`` equi-spaced quantile estimates (the paper
uses dectiles, ``q = 10``) against ground truth on the sorted data:

``RERA`` (*A for Almaden*, from [AS95])
    Per quantile: ``(Ne - Nt) / n * 100`` where ``Ne`` is the number of
    elements between the estimated lower and upper bounds and ``Nt`` the
    number of duplicates of the exact quantile value inside those bounds.
    Analytic bound for OPAQ: ``2/s * 100`` (Lemma 3).

``RERL`` (*L for Load balancing*)
    ``max_i max(|Ni - NLi|, |Ni - NUi|) / Ni * 100`` where ``Ni`` is the
    population of the i-th true quantile interval and ``NLi``/``NUi`` the
    populations of the intervals induced by the lower/upper bound
    sequences.  Analytic bound: ``q/s * 100``.

``RERN`` (*N for Normalised*)
    ``max_i max(DLi, DUi) / (n/q) * 100`` where ``DLi``/``DUi`` count the
    elements between the true i-th quantile and its lower/upper bound.
    Analytic bound: ``q/s * 100`` (Lemmas 1 and 2 give ``DLi, DUi <= n/s``).

For point estimators that produce a single value per quantile (the paper's
baselines), pass the same array as both ``lowers`` and ``uppers``; ``Ne``
then counts the elements between the estimate and itself and RERA degrades
gracefully to the displacement-style measure [AS95] reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EstimationError
from repro.metrics.true_quantiles import true_quantiles

__all__ = [
    "ErrorReport",
    "score_bounds",
    "rera_per_quantile",
    "rerl",
    "rern",
    "rera_bound",
    "rerl_bound",
    "rern_bound",
    "rera_point_estimates",
]


def rera_bound(s: int) -> float:
    """Analytic RERA upper bound ``2/s * 100`` from Lemma 3."""
    return 200.0 / s


def rerl_bound(q: int, s: int) -> float:
    """Analytic RERL upper bound ``q/s * 100``."""
    return 100.0 * q / s


def rern_bound(q: int, s: int) -> float:
    """Analytic RERN upper bound ``q/s * 100``."""
    return 100.0 * q / s


def _check(sorted_data, trues, lowers, uppers) -> tuple[np.ndarray, ...]:
    data = np.asarray(sorted_data, dtype=np.float64)
    trues = np.asarray(trues, dtype=np.float64)
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    if data.size == 0:
        raise EstimationError("empty data set")
    if not (trues.shape == lowers.shape == uppers.shape):
        raise EstimationError("trues, lowers, uppers must have equal shape")
    if np.any(lowers > uppers):
        raise EstimationError("every lower bound must be <= its upper bound")
    return data, trues, lowers, uppers


def rera_per_quantile(
    sorted_data: np.ndarray,
    trues: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
) -> np.ndarray:
    """RERA for each quantile, in percent."""
    data, trues, lowers, uppers = _check(sorted_data, trues, lowers, uppers)
    n = data.size
    n_in_bounds = np.searchsorted(data, uppers, side="right") - np.searchsorted(
        data, lowers, side="left"
    )
    n_true_dups = np.searchsorted(data, trues, side="right") - np.searchsorted(
        data, trues, side="left"
    )
    return np.maximum(n_in_bounds - n_true_dups, 0) / n * 100.0


def _interval_populations(data: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Populations of the q intervals induced by q-1 cut values.

    Intervals are ``(-inf, c1], (c1, c2], ..., (c_{q-1}, +inf)`` measured by
    rank (searchsorted right), so duplicates on a cut all land in the
    interval that ends at the cut — the partitioning an external sort or a
    load balancer would actually use.
    """
    ranks = np.searchsorted(data, cuts, side="right")
    return np.diff(np.concatenate([[0], ranks, [data.size]]))


def rerl(
    sorted_data: np.ndarray,
    trues: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
) -> float:
    """RERL in percent (max over quantile intervals).

    Intervals whose true population is zero (possible under extreme
    duplication, where successive dectiles coincide) use a denominator of 1
    element so an estimator that also produces an empty interval scores 0
    rather than 0/0.
    """
    data, trues, lowers, uppers = _check(sorted_data, trues, lowers, uppers)
    n_true = _interval_populations(data, trues).astype(np.float64)
    n_low = _interval_populations(data, lowers)
    n_up = _interval_populations(data, uppers)
    denom = np.maximum(n_true, 1.0)
    rel = np.maximum(
        np.abs(n_true - n_low) / denom, np.abs(n_true - n_up) / denom
    )
    return float(rel.max() * 100.0)


def rern(
    sorted_data: np.ndarray,
    trues: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    q: int | None = None,
) -> float:
    """RERN in percent.

    ``q`` defaults to ``len(trues) + 1`` — the paper's dectiles give
    ``q = 10`` from 9 quantiles — and sets the normalising interval size
    ``n/q``.
    """
    data, trues, lowers, uppers = _check(sorted_data, trues, lowers, uppers)
    if q is None:
        q = trues.size + 1
    if q < 2:
        raise EstimationError("q must be at least 2")
    d_low = np.searchsorted(data, trues, side="left") - np.searchsorted(
        data, lowers, side="right"
    )
    d_up = np.searchsorted(data, uppers, side="left") - np.searchsorted(
        data, trues, side="right"
    )
    worst = np.maximum(np.maximum(d_low, 0), np.maximum(d_up, 0)).max()
    return float(worst / (data.size / q) * 100.0)


def rera_point_estimates(
    sorted_data: np.ndarray, trues: np.ndarray, estimates: np.ndarray
) -> np.ndarray:
    """RERA for point estimators: rank displacement as a fraction of n.

    This is the form [AS95] reports for algorithms without bound pairs: the
    number of elements between the estimate and the true quantile, over
    ``n``, in percent.
    """
    data = np.asarray(sorted_data, dtype=np.float64)
    trues = np.asarray(trues, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    if trues.shape != estimates.shape:
        raise EstimationError("trues and estimates must have equal shape")
    lo = np.minimum(trues, estimates)
    hi = np.maximum(trues, estimates)
    between = np.searchsorted(data, hi, side="left") - np.searchsorted(
        data, lo, side="right"
    )
    return np.maximum(between, 0) / data.size * 100.0


@dataclass(frozen=True)
class ErrorReport:
    """All three error rates for one experiment, plus analytic bounds."""

    phis: np.ndarray
    rera: np.ndarray
    rerl: float
    rern: float
    sample_size: int | None = None
    meta: dict = field(default_factory=dict)

    @property
    def rera_max(self) -> float:
        """Worst per-quantile RERA, in percent."""
        return float(self.rera.max())

    def within_bounds(self) -> bool:
        """True when every measured rate respects its analytic bound.

        Only meaningful when :attr:`sample_size` is set (OPAQ runs); point
        estimators have no deterministic bounds to check.
        """
        if self.sample_size is None:
            raise EstimationError("no sample size recorded for this report")
        q = self.phis.size + 1
        return bool(
            self.rera_max <= rera_bound(self.sample_size) + 1e-9
            and self.rerl <= rerl_bound(q, self.sample_size) + 1e-9
            and self.rern <= rern_bound(q, self.sample_size) + 1e-9
        )


def score_bounds(
    sorted_data: np.ndarray,
    phis: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    sample_size: int | None = None,
    **meta,
) -> ErrorReport:
    """Score a bound-pair estimator on all three error rates at once."""
    phis = np.asarray(phis, dtype=np.float64)
    trues = true_quantiles(sorted_data, phis)
    return ErrorReport(
        phis=phis,
        rera=rera_per_quantile(sorted_data, trues, lowers, uppers),
        rerl=rerl(sorted_data, trues, lowers, uppers),
        rern=rern(sorted_data, trues, lowers, uppers, q=phis.size + 1),
        sample_size=sample_size,
        meta=dict(meta),
    )
