"""Ground truth: exact quantiles and ranks of a fully materialised data set.

Used by the tests and the evaluation harness to score the estimators.  The
paper defines the φ-quantile of an ordered sequence as the element of rank
``φ·n`` (1-based); for non-integral ``φ·n`` we take ``ceil(φ·n)``, the usual
"smallest element with at least a φ fraction at or below it" convention.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import EstimationError

__all__ = [
    "quantile_rank",
    "true_quantiles",
    "dectile_fractions",
    "decile_fractions",
    "equidepth_fractions",
    "rank_of_value",
]


def quantile_rank(phi: float, n: int) -> int:
    """1-based rank ``ψ = ceil(φ·n)`` of the φ-quantile in ``n`` elements."""
    if not 0.0 < phi <= 1.0:
        raise EstimationError(f"phi must lie in (0, 1], got {phi}")
    if n <= 0:
        raise EstimationError("n must be positive")
    return min(n, max(1, math.ceil(phi * n)))


def equidepth_fractions(q: int) -> np.ndarray:
    """The fractions ``1/q, 2/q, ..., (q-1)/q`` (paper's φ grid)."""
    if q < 2:
        raise EstimationError("q must be at least 2")
    return np.arange(1, q, dtype=np.float64) / q


def dectile_fractions() -> np.ndarray:
    """The paper's dectiles: 10%, 20%, ..., 90%."""
    return equidepth_fractions(10)


# The evaluation section calls them dectiles; "decile" is the common name.
decile_fractions = dectile_fractions


def true_quantiles(
    sorted_data: np.ndarray, phis: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Exact quantile values of ``sorted_data`` at the given fractions.

    ``sorted_data`` must be in non-decreasing order (callers keep a sorted
    copy of the data for scoring; the estimators themselves never sort the
    full data set).
    """
    data = np.asarray(sorted_data)
    if data.size == 0:
        raise EstimationError("cannot take quantiles of an empty data set")
    ranks = np.array(
        [quantile_rank(float(phi), data.size) for phi in np.asarray(phis)],
        dtype=np.int64,
    )
    return data[ranks - 1].astype(np.float64)


def rank_of_value(sorted_data: np.ndarray, value: float) -> tuple[int, int]:
    """The 1-based rank band ``[lo, hi]`` a value occupies in sorted data.

    ``lo`` is the rank the value would get inserted at; ``hi`` is the rank
    of its last duplicate (``lo-1 .. hi`` elements are ``<= value``).  For a
    value not present, ``lo = hi + 1`` degenerates to the insertion point.
    """
    data = np.asarray(sorted_data)
    left = int(np.searchsorted(data, value, side="left"))
    right = int(np.searchsorted(data, value, side="right"))
    return left + 1, right
