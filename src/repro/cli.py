"""Command-line interface: the OPAQ toolchain end to end.

::

    opaq generate --dist zipf --n 1000000 --out keys.opaq
    opaq info keys.opaq
    opaq summarize keys.opaq --sample-size 1000 --out keys.summary.npz
    opaq query keys.summary.npz --dectiles
    opaq query keys.summary.npz --phi 0.5 --phi 0.99
    opaq rank keys.summary.npz 123456.0
    opaq exact keys.opaq --phi 0.5 --sample-size 1000
    opaq run keys.opaq --dectiles --trace --metrics-out metrics.json
    opaq run keys.opaq --phi 0.5 --procs 8 --merge bitonic
    opaq run keys.opaq --phi 0.5 --procs 4 --backend process --kernel numpy
    opaq run keys.opaq --dectiles --engine kll        # portfolio engines
    opaq run keys.opaq --dectiles --engine smallest-memory   # policy alias
    opaq experiment table11 --metrics-out t11.json
    opaq sort keys.opaq sorted.opaq --memory 2000000
    opaq report            # regenerate EXPERIMENTS.md content on stdout
    opaq lint src/repro    # enforce the paper's disciplines statically
    opaq serve --shards 4 --snapshot-dir snaps/   # binary protocol v3 server
    opaq serve --tenant-engine acme=mergeable-sketch   # per-tenant engines
    opaq serve --proto http                       # JSON compatibility layer
    opaq query --server opaq://127.0.0.1:8629 --dectiles
    opaq query --server http://127.0.0.1:8629 --dectiles

Every subcommand is also reachable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import __version__
from repro.apps import external_sort
from repro.core import (
    OPAQ,
    OPAQConfig,
    OPAQSummary,
    estimate_rank,
    exact_quantiles,
)
from repro.errors import ConfigError, ReproError
from repro.metrics import dectile_fractions
from repro.storage import DiskDataset, MemoryModel, RunReader
from repro.workloads import GENERATOR_NAMES, make_generator, write_dataset

__all__ = ["main", "build_parser"]


def _config_for(n: int, args: argparse.Namespace) -> OPAQConfig:
    """Build an OPAQConfig from common CLI flags."""
    sample_size = args.sample_size
    if args.run_size:
        run_size = args.run_size
    elif args.memory:
        run_size = MemoryModel(args.memory).suggest(n, sample_size)
    else:
        run_size = max(sample_size, min(n, int(np.sqrt(float(n) * sample_size))))
    return OPAQConfig(
        run_size=run_size,
        sample_size=min(sample_size, run_size),
        memory=args.memory,
        strategy=args.strategy,
        kernel=getattr(args, "kernel", "python"),
    )


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample-size", type=int, default=1000, help="s: samples per run"
    )
    parser.add_argument(
        "--run-size", type=int, default=None, help="m: keys per run"
    )
    parser.add_argument(
        "--memory",
        type=int,
        default=None,
        help="M: memory budget in keys (derives m, enforces r*s + m <= M)",
    )
    parser.add_argument(
        "--strategy",
        default="numpy",
        help="selection strategy: numpy|sort|median_of_medians|floyd_rivest",
    )
    parser.add_argument(
        "--kernel",
        choices=("python", "numpy"),
        default="python",
        help="hot-path implementation: python (reference) or numpy "
        "(vectorised; bit-identical output)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the collected trace (spans + counters) after the run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write aggregated metrics (repro.obs/v1 JSON) to FILE",
    )


def _run_traced(args: argparse.Namespace, work):
    """Run ``work()`` under a tracer when the obs flags ask for one.

    Returns ``work()``'s result.  With ``--trace`` the span/counter
    aggregate is printed to stderr (stdout stays parseable); with
    ``--metrics-out`` the aggregate is written as JSON.
    """
    from repro.obs import MemorySink, aggregate, tracing, write_metrics

    if not (args.trace or args.metrics_out):
        return work()
    sink = MemorySink()
    with tracing(sink):
        result = work()
    if args.metrics_out:
        write_metrics(args.metrics_out, sink.events)
        print(
            f"metrics ({len(sink)} events) written to {args.metrics_out}",
            file=sys.stderr,
        )
    if args.trace:
        agg = aggregate(sink.events)
        print("trace:", file=sys.stderr)
        for name, span in sorted(agg["spans"].items()):
            print(
                f"  span     {name:<24} x{span['count']:<5} "
                f"{span['seconds']:.6f}s",
                file=sys.stderr,
            )
        for name, total in sorted(agg["counters"].items()):
            print(f"  counter  {name:<24} {total:g}", file=sys.stderr)
    return result


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.zipf_parameter is not None:
        kwargs["parameter"] = args.zipf_parameter
    if args.duplicate_fraction is not None:
        kwargs["duplicate_fraction"] = args.duplicate_fraction
    generator = make_generator(args.dist, **kwargs)
    ds = write_dataset(args.out, generator, args.n, seed=args.seed)
    print(f"wrote {ds.count:,} {args.dist} keys to {ds.path} ({ds.nbytes:,} bytes)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    if str(args.data).endswith(".npz"):
        summary = OPAQSummary.load(args.data)
        print(f"summary:    {args.data}")
        print(f"describes:  {summary.count:,} keys in {summary.num_runs} runs")
        print(f"samples:    {summary.num_samples:,} "
              f"({summary.memory_footprint:,} keys of memory)")
        print(f"range:      [{summary.minimum:.6g}, {summary.maximum:.6g}]")
        print(f"guarantee:  each bound within "
              f"{summary.guaranteed_rank_error():,} ranks "
              f"({summary.guaranteed_rank_error() / summary.count:.4%} of n)")
        return 0
    ds = DiskDataset.open(args.data)
    print(f"path:     {ds.path}")
    print(f"keys:     {ds.count:,}")
    print(f"dtype:    {ds.dtype}")
    print(f"payload:  {ds.nbytes:,} bytes")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    summary = OPAQSummary.load(args.summary)
    before = summary.guaranteed_rank_error()
    compacted = summary.compact_to(args.max_samples)
    compacted.save(args.out)
    print(
        f"{summary.num_samples:,} samples -> {compacted.num_samples:,}; "
        f"guarantee {before:,} -> {compacted.guaranteed_rank_error():,} ranks"
    )
    print(f"compacted summary saved to {args.out}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    ds = DiskDataset.open(args.data)
    config = _config_for(ds.count, args)
    reader = RunReader(ds, run_size=config.run_size)
    summary = OPAQ(config).summarize(reader)
    summary.save(args.out)
    print(
        f"one pass over {ds.count:,} keys: r={summary.num_runs} runs of "
        f"m={config.run_size:,}, s={config.sample_size} -> "
        f"{summary.num_samples:,} samples retained"
    )
    print(
        f"guarantee: each quantile bound within "
        f"{summary.guaranteed_rank_error():,} ranks of the truth"
    )
    print(f"summary saved to {args.out}")
    return 0


def _phis_from(args: argparse.Namespace) -> list[float]:
    if args.dectiles or not args.phi:
        return [float(p) for p in dectile_fractions()]
    return args.phi


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import quantile_bounds

    if args.server:
        from repro.service import ServiceClient

        answer = ServiceClient(args.server).quantiles(_phis_from(args)).to_dict()
        print(
            f"epoch {answer['epoch']}: {answer['count']:,} keys served, "
            f"guarantee {answer['guarantee']:,} ranks per bound, "
            f"staleness {answer['staleness']:,}"
        )
        print(f"{'phi':>6}  {'lower':>18}  {'upper':>18}  {'max between':>12}")
        for row in answer["results"]:
            print(
                f"{row['phi']:>6.3f}  {row['lower']:>18.6f}  "
                f"{row['upper']:>18.6f}  {row['max_between']:>12,}"
            )
        return 0
    if args.summary is None:
        raise ConfigError("pass a summary file or --server URL")
    summary = OPAQSummary.load(args.summary)
    print(f"{'phi':>6}  {'lower':>18}  {'upper':>18}  {'max between':>12}")
    for phi in _phis_from(args):
        b = quantile_bounds(summary, phi)
        print(
            f"{phi:>6.3f}  {b.lower:>18.6f}  {b.upper:>18.6f}  "
            f"{b.max_between:>12,}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import (
        QuantileService,
        ServiceConfig,
        ThreadedBinaryServer,
        make_server,
    )
    from repro.service.tenancy import RegistryConfig

    tenant_engines = {}
    for spec in args.tenant_engine:
        tenant, sep, engine = spec.partition("=")
        if not sep or not tenant or not engine:
            raise ConfigError(
                f"--tenant-engine {spec!r} must look like TENANT=ENGINE"
            )
        tenant_engines[tenant] = engine
    config = ServiceConfig(
        num_shards=args.shards,
        run_size=args.run_size or 100_000,
        sample_size=args.sample_size,
        queue_capacity=args.queue_capacity,
        max_shard_samples=args.max_shard_samples,
        max_merged_samples=args.max_merged_samples,
        snapshot_every=args.snapshot_every,
        snapshot_dir=args.snapshot_dir,
        kernel=args.kernel,
        router_policy=args.router_policy,
        tenancy=RegistryConfig(
            memory_budget=args.tenancy_budget,
            num_shards=args.tenancy_shards,
            per_key_epsilon=args.tenancy_epsilon,
            spill_dir=args.tenancy_spill_dir,
            engine=args.tenancy_engine,
            tenant_engines=tenant_engines,
        ),
    )
    service = QuantileService(config)
    if service.restored_epoch is not None:
        restored = service.restored_epoch
        print(
            f"warm restart: epoch {restored.epoch} "
            f"({restored.count:,} keys) restored from {args.snapshot_dir}",
            flush=True,
        )

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    if args.proto == "binary":
        server = ThreadedBinaryServer(service, host=args.host, port=args.port)
        server.start()
        print(
            f"serving on {server.url} (binary protocol v3, "
            f"shards={config.num_shards}, s={config.sample_size})",
            flush=True,
        )
        try:
            signal.pause()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
            service.close(final_snapshot=True)
            print("shut down cleanly (final snapshot flushed)", flush=True)
        return 0
    http_server = make_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(
        f"serving on {http_server.url} (HTTP compatibility protocol, "
        f"shards={config.num_shards}, s={config.sample_size})",
        flush=True,
    )
    try:
        http_server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        http_server.server_close()
        service.close(final_snapshot=True)
        print("shut down cleanly (final snapshot flushed)", flush=True)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    summary = OPAQSummary.load(args.summary)
    band = estimate_rank(summary, args.value)
    print(
        f"rank({args.value}) in [{band.low:,}, {band.high:,}] of "
        f"{band.n:,}  (phi in [{band.phi_low:.4f}, {band.phi_high:.4f}])"
    )
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    ds = DiskDataset.open(args.data)
    config = _config_for(ds.count, args)
    phis = _phis_from(args)
    values, bounds, _ = exact_quantiles(ds, phis, config)
    print(f"{'phi':>6}  {'exact value':>18}  {'one-pass bounds':>40}")
    for phi, value, b in zip(phis, values, bounds):
        print(
            f"{phi:>6.3f}  {value:>18.6f}  "
            f"[{b.lower:>18.6f}, {b.upper:>18.6f}]"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.portfolio import ENGINES, resolve_engine

    ds = DiskDataset.open(args.data)
    config = _config_for(ds.count, args)
    phis = _phis_from(args)
    engine_name = resolve_engine(args.engine)

    if engine_name != "opaq":
        if args.procs > 1 or args.backend != "simulated":
            raise ConfigError(
                f"--engine {engine_name} runs single-process; the parallel "
                "machine (--procs/--backend) is OPAQ-only"
            )
        # Equal-memory hand-off: the alternative engine gets exactly the
        # slots the OPAQ configuration would retain (3 per sample across
        # every run), so `opaq run --engine X` answers "same memory,
        # different algorithm" by construction.
        budget = 3 * config.sample_size * config.num_runs(ds.count)
        spec = ENGINES[engine_name]
        engine = spec.for_budget(budget, n_hint=ds.count)

        def sketch_work():
            summary = engine.summarize(ds)
            return engine.bounds(summary, phis), summary

        bounds, summary = _run_traced(args, sketch_work)
        print(f"{'phi':>6}  {'lower':>18}  {'upper':>18}  {'max between':>12}")
        for phi, b in zip(phis, bounds):
            print(
                f"{phi:>6.3f}  {b.lower:>18.6f}  {b.upper:>18.6f}  "
                f"{b.max_between:>12,}"
            )
        print(
            f"engine {engine_name} ({spec.guarantee} guarantee): "
            f"{summary.memory_footprint:,} of {budget:,} equal-memory "
            f"slots, rank guarantee {summary.guaranteed_rank_error():,}"
        )
        return 0

    def work():
        if args.procs > 1 or args.backend != "simulated":
            from repro.parallel import ParallelOPAQ

            par = ParallelOPAQ(
                max(1, args.procs),
                config,
                merge_method=args.merge,
                backend=args.backend,
            )
            res = par.run(ds, phis=phis)
            return res.bounds(phis), res
        est = OPAQ(config)
        return est.bounds(est.summarize(ds), phis), None

    bounds, parallel = _run_traced(args, work)
    print(f"{'phi':>6}  {'lower':>18}  {'upper':>18}  {'max between':>12}")
    for phi, b in zip(phis, bounds):
        print(
            f"{phi:>6.3f}  {b.lower:>18.6f}  {b.upper:>18.6f}  "
            f"{b.max_between:>12,}"
        )
    if parallel is not None:
        print(
            f"modelled: p={parallel.num_procs} ({parallel.merge_method} "
            f"merge), {parallel.total_time:.4f}s simulated wall-clock"
        )
        measured = parallel.measured_elapsed()
        if measured is not None:
            print(
                f"measured: {parallel.backend} backend, "
                f"{measured:.4f}s wall-clock across phases"
            )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.experiments import EXPERIMENTS

    try:
        fn = EXPERIMENTS[args.name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {args.name!r}; choose from "
            f"{tuple(EXPERIMENTS)}"
        ) from None
    result = _run_traced(args, fn)
    print(result.render())
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    ds = DiskDataset.open(args.data)
    report = external_sort(ds, args.out, memory=args.memory)
    print(
        f"sorted {ds.count:,} keys into {args.out} with "
        f"{report.passes_over_input} reads of the input"
    )
    print(
        f"buckets: {report.num_buckets} "
        f"(largest {report.max_bucket:,} <= guaranteed "
        f"{report.guaranteed_max_bucket:,} <= memory {args.memory:,})"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.apps import TableStatistics
    from repro.storage import TableDataset

    table = TableDataset.open(args.table)
    config = _config_for(table.row_count, args)
    stats = TableStatistics.collect(table, config)
    stats.save(args.out)
    print(
        f"analyzed {len(stats.columns)} columns x {table.row_count:,} rows "
        f"(one OPAQ pass per column); catalog saved to {args.out}"
    )
    return 0


def _parse_predicates(raw: list[str]) -> list:
    """Parse ``column:lo:hi`` strings into predicates."""
    from repro.apps import Predicate
    from repro.errors import ConfigError

    predicates = []
    for spec in raw:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"predicate {spec!r} must look like column:lo:hi"
            )
        predicates.append(Predicate(parts[0], float(parts[1]), float(parts[2])))
    return predicates


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.apps import TableStatistics

    stats = TableStatistics.load(args.stats)
    predicates = _parse_predicates(args.predicate)
    est = stats.conjunction(predicates)
    rows = stats.row_count
    print("predicates:")
    for p, band in zip(predicates, est.per_column):
        print(
            f"  {p.column} in [{p.lo:g}, {p.hi:g}]: selectivity "
            f"~{band.estimate:.4f} (guaranteed [{band.lower:.4f}, {band.upper:.4f}])"
        )
    print(
        f"conjunction: ~{est.independence * rows:,.0f} rows "
        f"(independence), guaranteed in "
        f"[{est.lower * rows:,.0f}, {est.upper * rows:,.0f}]"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    report_main(sys.stdout)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        lint_paths,
        render_json,
        render_rule_list,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    baseline = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        target = baseline or Path(".opaqlint-baseline.json")
        result = lint_paths(
            args.paths or ["src/repro"],
            select=args.select,
            ignore=args.ignore,
            deep=args.deep,
            cache=args.cache,
            jobs=args.jobs,
        )
        count = write_baseline(target, result.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {target}")
        return 0
    result = lint_paths(
        args.paths or ["src/repro"],
        select=args.select,
        ignore=args.ignore,
        deep=args.deep,
        baseline=baseline,
        cache=args.cache,
        jobs=args.jobs,
    )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="opaq",
        description="OPAQ: one-pass quantile estimation for disk-resident data",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic dataset")
    p.add_argument("--dist", choices=GENERATOR_NAMES, default="uniform")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.add_argument("--zipf-parameter", type=float, default=None)
    p.add_argument("--duplicate-fraction", type=float, default=None)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("info", help="describe a dataset or summary file")
    p.add_argument("data")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser(
        "compact", help="shrink a summary to a memory bound (looser bounds)"
    )
    p.add_argument("summary")
    p.add_argument("--max-samples", type=int, required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_compact)

    p = sub.add_parser("summarize", help="one OPAQ pass -> summary file")
    p.add_argument("data")
    p.add_argument("--out", required=True)
    _add_config_flags(p)
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser(
        "query", help="quantile bounds from a summary file or a running server"
    )
    p.add_argument("summary", nargs="?", default=None)
    p.add_argument("--phi", type=float, action="append", default=[])
    p.add_argument("--dectiles", action="store_true")
    p.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="query a running `opaq serve` instance instead of a file",
    )
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser(
        "serve",
        help="run the sharded quantile-serving subsystem (binary or HTTP)",
        description=(
            "Start a QuantileService: routed ingest across N shard "
            "workers (bounded queues, backpressure), epoch-based snapshot "
            "merging, and a wire layer — the framed binary protocol v3 "
            "(default; opaq://host:port) or the JSON/HTTP compatibility "
            "protocol (/ingest, /quantile, /stats, /snapshot).  With "
            "--snapshot-dir the server persists every epoch and "
            "warm-restarts from the newest one; SIGTERM/Ctrl-C flushes a "
            "final snapshot.  See docs/service.md."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8629,
        help="TCP port (0 picks a free one and prints it)",
    )
    p.add_argument(
        "--proto", choices=("binary", "http"), default="binary",
        help="wire protocol: binary (framed protocol v3, default) or "
        "http (JSON compatibility layer)",
    )
    p.add_argument("--shards", type=int, default=4, help="ingest shards")
    p.add_argument(
        "--kernel", choices=("python", "numpy"), default="numpy",
        help="shard estimator hot path (numpy is vectorised and "
        "bit-identical to the python reference; serving defaults to it)",
    )
    p.add_argument(
        "--router-policy", choices=("hash", "chunk"), default="hash",
        help="ingest partitioning: hash (per-key, batch-boundary-"
        "independent) or chunk (contiguous slices, zero routing cost)",
    )
    p.add_argument(
        "--sample-size", type=int, default=1000, help="s: samples per run"
    )
    p.add_argument(
        "--run-size", type=int, default=None, help="m: keys folded per run"
    )
    p.add_argument(
        "--queue-capacity", type=int, default=64,
        help="bounded ingest queue depth per shard, in batches",
    )
    p.add_argument(
        "--max-shard-samples", type=int, default=100_000,
        help="compaction bound of each shard's sample list",
    )
    p.add_argument(
        "--max-merged-samples", type=int, default=None,
        help="compaction bound of the merged epoch snapshot",
    )
    p.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="auto-advance the epoch every N ingested elements",
    )
    p.add_argument(
        "--snapshot-dir", default=None,
        help="persist epochs here and warm-restart from the newest",
    )
    p.add_argument(
        "--tenancy-budget", type=int, default=8_000_000, metavar="SLOTS",
        help="global memory budget of the multi-tenant registry, in "
        "float64 slots shared by every (tenant, metric) key",
    )
    p.add_argument(
        "--tenancy-shards", type=int, default=8,
        help="lock shards of the multi-tenant registry",
    )
    p.add_argument(
        "--tenancy-epsilon", type=float, default=0.01, metavar="EPS",
        help="per-key rank-error budget: every keyed answer serves "
        "(guarantee - 1) <= EPS * count for its own key",
    )
    p.add_argument(
        "--tenancy-spill-dir", default=None, metavar="DIR",
        help="spill cold keys here under budget pressure and "
        "warm-restart keyed answers from it (without it, keyed ingest "
        "over budget reports backpressure instead of spilling)",
    )
    p.add_argument(
        "--tenancy-engine", default="opaq", metavar="NAME",
        help="default portfolio engine for keyed summaries: opaq, kll, "
        "gk, as95, or a policy alias (deterministic-guarantee, "
        "mergeable-sketch, smallest-memory); see docs/portfolio.md",
    )
    p.add_argument(
        "--tenant-engine", action="append", default=[],
        metavar="TENANT=ENGINE",
        help="pin one tenant's keys to a specific engine (repeatable); "
        "tenants not listed use --tenancy-engine",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("rank", help="rank band of a value from a summary")
    p.add_argument("summary")
    p.add_argument("value", type=float)
    p.set_defaults(fn=_cmd_rank)

    p = sub.add_parser("exact", help="two-pass exact quantiles")
    p.add_argument("data")
    p.add_argument("--phi", type=float, action="append", default=[])
    p.add_argument("--dectiles", action="store_true")
    _add_config_flags(p)
    p.set_defaults(fn=_cmd_exact)

    p = sub.add_parser(
        "run",
        help="one-shot estimation with optional tracing/metrics",
        description=(
            "Run OPAQ end to end over a dataset (optionally on the "
            "simulated parallel machine) and print quantile bounds.  "
            "--trace/--metrics-out expose the per-phase spans and the "
            "cost-model counters (I/O, comparisons, SPMD messages)."
        ),
    )
    p.add_argument("data")
    p.add_argument("--phi", type=float, action="append", default=[])
    p.add_argument("--dectiles", action="store_true")
    p.add_argument(
        "--procs",
        type=int,
        default=1,
        help="run parallel OPAQ on this many processors (default 1)",
    )
    p.add_argument(
        "--merge",
        choices=("sample", "bitonic"),
        default="sample",
        help="global merge method for --procs > 1",
    )
    p.add_argument(
        "--backend",
        choices=("simulated", "serial", "thread", "process"),
        default="simulated",
        help="execution substrate for the parallel run: the SP-2 cost "
        "model (simulated, default) or real workers (see docs/parallel.md)",
    )
    p.add_argument(
        "--engine",
        default="opaq",
        metavar="NAME",
        help="estimation engine: opaq (default), kll, gk, as95, or a "
        "policy alias (deterministic-guarantee, mergeable-sketch, "
        "smallest-memory); non-opaq engines run at OPAQ's memory budget "
        "(see docs/portfolio.md)",
    )
    _add_config_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "experiment",
        help="run one reproduced table/figure by name",
    )
    p.add_argument("name", help="e.g. table11 (see repro.experiments)")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("sort", help="external sort via OPAQ splitters")
    p.add_argument("data")
    p.add_argument("out")
    p.add_argument("--memory", type=int, required=True)
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser(
        "analyze", help="per-column OPAQ statistics over a columnar table"
    )
    p.add_argument("table")
    p.add_argument("--out", required=True, help="catalog directory")
    _add_config_flags(p)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "explain", help="cardinality estimate from a saved catalog"
    )
    p.add_argument("stats", help="catalog directory from `opaq analyze`")
    p.add_argument(
        "--predicate",
        action="append",
        required=True,
        help="range predicate as column:lo:hi (repeatable)",
    )
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "report", help="regenerate the EXPERIMENTS.md content on stdout"
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "lint",
        help="statically check the one-pass/determinism/SPMD disciplines",
        description=(
            "opaqlint: AST-based enforcement of the paper's invariants "
            "(one-pass, memory, determinism, SPMD safety, exception "
            "hygiene).  Exits 1 when findings remain, 0 when clean."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (sarif: SARIF 2.1.0 for CI annotation)",
    )
    p.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only this rule id/code (repeatable)",
    )
    p.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip this rule id/code (repeatable)",
    )
    p.add_argument(
        "--deep", action="store_true",
        help="also run the project-wide flow/thread families "
        "(OPQ7xx/OPQ8xx): builds the cross-module index and per-function "
        "control-flow graphs",
    )
    p.add_argument(
        "--baseline", metavar="FILE",
        help="subtract adopted findings recorded in this baseline file; "
        "stale entries fail the run (OPQ903)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings as the new baseline "
        "(to --baseline, default .opaqlint-baseline.json) and exit 0",
    )
    p.add_argument(
        "--cache", metavar="FILE", nargs="?",
        const=".opaqlint-cache.json", default=None,
        help="reuse results for unchanged files from this incremental "
        "cache file (default name when given bare: .opaqlint-cache.json); "
        "output is byte-identical to an uncached run",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyse files across N worker processes (default 1); "
        "composes with --cache (only cache misses are fanned out) and "
        "output is byte-identical for every N",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; silence the default
        # traceback and let the flush-on-exit see a dead descriptor too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
