"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  Misconfiguration
(violating the paper's memory constraint, non-positive sizes, ...) raises
:class:`ConfigError`; violating the one-pass discipline of the disk layer
raises :class:`SinglePassViolation`; asking a summary for something it cannot
answer raises :class:`EstimationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value or combination of values.

    Raised, for example, when the paper's memory constraint ``r*s + m <= M``
    does not hold, when a run size does not divide the data size, or when a
    sample size exceeds the run size.
    """


class SinglePassViolation(ReproError, RuntimeError):
    """A disk-resident dataset was read more often than its pass budget allows.

    The whole point of OPAQ is to touch the data exactly once; the
    :class:`repro.storage.RunReader` enforces that discipline and raises this
    error when client code attempts a second pass without explicitly asking
    for one (the two-pass *exact* extension of the paper's section 4 requests
    a two-pass budget up front).
    """


class EstimationError(ReproError, RuntimeError):
    """A quantile/rank query could not be answered from the available state.

    Raised, for example, when querying an :class:`repro.core.OPAQSummary`
    that was built from zero runs, or when a quantile fraction lies outside
    ``(0, 1]``.
    """


class DataError(ReproError, ValueError):
    """Malformed on-disk data: truncated file, wrong dtype, bad header."""


class ParallelError(ReproError, RuntimeError):
    """A real execution backend failed to complete an SPMD program.

    Raised by :mod:`repro.parallel.backends` when a worker raises (the
    original exception type and traceback are carried in the message),
    when a worker process dies without reporting a result, or when a
    receive/join exceeds its timeout.  Real backends never surface bare
    ``multiprocessing`` tracebacks or hang on worker death — every
    failure path converges to this type.
    """


class ServiceError(ReproError, RuntimeError):
    """The serving subsystem could not accept or answer a request.

    Raised by :mod:`repro.service` when an ingest queue stays full past the
    backpressure timeout, when a shard worker has died, or when a request
    reaches a service that is already shut down.  Transport layers map it to
    a retryable status (the HTTP wire layer answers 503).
    """
