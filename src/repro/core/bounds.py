"""Quantile bound pairs with their deterministic guarantees."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QuantileBounds"]


@dataclass(frozen=True)
class QuantileBounds:
    """The result of one quantile query: ``e_phi ∈ [lower, upper]``.

    Attributes
    ----------
    phi:
        The quantile fraction queried.
    rank:
        ``ψ = ceil(φ·n)`` — the 1-based rank of the true quantile.
    lower, upper:
        The paper's ``e_l`` and ``e_u``.  The true φ-quantile value is
        guaranteed to lie in ``[lower, upper]``.
    max_below:
        Deterministic bound on the number of elements between ``lower`` and
        the true quantile (Lemma 1: at most ``n/s`` in the paper's
        divisible case).
    max_above:
        Same for ``upper`` (Lemma 2).
    lower_index, upper_index:
        1-based positions of the bounds in the sorted sample list, or 0
        when the formula fell off an end and the tracked global
        minimum/maximum was used instead.
    """

    phi: float
    rank: int
    lower: float
    upper: float
    max_below: int
    max_above: int
    lower_index: int = 0
    upper_index: int = 0

    @property
    def max_between(self) -> int:
        """Lemma 3: elements between the bounds (at most ``2n/s``)."""
        return self.max_below + self.max_above

    @property
    def midpoint(self) -> float:
        """A point estimate: the middle of the bound interval."""
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        """Value-space width of the bound interval."""
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper
