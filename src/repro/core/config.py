"""Configuration of the OPAQ estimator.

Collects the paper's knobs (run size ``m``, per-run sample size ``s``,
optional memory budget ``M``, selection strategy) in one validated place.
The memory budget is optional — when given, :meth:`OPAQConfig.validate_for`
enforces the paper's constraint ``r*s + m <= M`` for a concrete data size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.selection import SelectionStrategy, get_strategy, validate_kernel
from repro.storage import MemoryModel

__all__ = ["OPAQConfig"]


@dataclass(frozen=True)
class OPAQConfig:
    """Parameters of one OPAQ run.

    Parameters
    ----------
    run_size:
        ``m`` — keys per run (one run is read into memory at a time).
    sample_size:
        ``s`` — regular samples taken per (full) run.  The accuracy
        guarantee is ``n/s`` rank error per bound, so this is the
        accuracy/memory trade-off knob; the paper uses 250–1024.
    memory:
        Optional ``M`` (in keys).  When set, configurations that cannot run
        within the budget are rejected at :meth:`validate_for` time.
    strategy:
        Selection strategy name (see :mod:`repro.selection`): ``"numpy"``
        (default, vectorised introselect), ``"sort"``,
        ``"median_of_medians"`` or ``"floyd_rivest"``.
    kernel:
        Hot-path implementation switch (see
        :mod:`repro.selection.kernels`): ``"python"`` (default) runs the
        reference paths — the configured strategy's multiselect and the
        heap-based r-way merge — while ``"numpy"`` forces the vectorised
        C kernels for both regular-sample extraction and sample-list
        merging.  Output is bit-identical either way; only the constant
        factor changes.
    """

    run_size: int
    sample_size: int
    memory: int | None = None
    strategy: str | SelectionStrategy = "numpy"
    kernel: str = "python"

    def __post_init__(self) -> None:
        if self.run_size <= 0:
            raise ConfigError("run_size must be positive")
        if self.sample_size <= 0:
            raise ConfigError("sample_size must be positive")
        if self.sample_size > self.run_size:
            raise ConfigError(
                f"sample_size ({self.sample_size}) cannot exceed run_size "
                f"({self.run_size})"
            )
        # Resolve eagerly so a typo in either name fails at config time.
        get_strategy(self.strategy)
        validate_kernel(self.kernel)

    @classmethod
    def for_memory(
        cls,
        n: int,
        memory: int,
        sample_size: int = 1000,
        strategy: str | SelectionStrategy = "numpy",
    ) -> "OPAQConfig":
        """Derive a feasible configuration for ``n`` keys under ``memory``.

        Chooses the smallest feasible run size (maximising the number of
        runs keeps per-run selection cheap while the merged sample list
        still fits).
        """
        model = MemoryModel(memory)
        run_size = model.suggest(n, sample_size)
        return cls(
            run_size=run_size,
            sample_size=sample_size,
            memory=memory,
            strategy=strategy,
        )

    def selection_strategy(self) -> SelectionStrategy:
        """The resolved strategy instance."""
        return get_strategy(self.strategy)

    def num_runs(self, n: int) -> int:
        """``r = ceil(n/m)`` for a concrete data size."""
        if n <= 0:
            raise ConfigError("n must be positive")
        return -(-n // self.run_size)

    def total_samples(self, n: int) -> int:
        """Approximate merged sample list size ``r*s``."""
        return self.num_runs(n) * self.sample_size

    def validate_for(self, n: int) -> None:
        """Check the paper's memory constraint for a concrete data size."""
        if self.memory is not None:
            MemoryModel(self.memory).validate(n, self.run_size, self.sample_size)

    def with_sample_size(self, sample_size: int) -> "OPAQConfig":
        """A copy with a different ``s`` (used by the sweep experiments)."""
        return replace(self, sample_size=sample_size)
