"""Rank estimation of arbitrary elements (paper section 4).

"The sorted sample list can obviously be used to estimate the rank of any
arbitrary element in the whole data set. This does not require any extra
passes over the entire data set."

The same two regular-sampling properties that power the quantile phase give
a deterministic rank band for any value ``x``: with ``p`` samples at or
below ``x``,

* at least ``min_rank(p)`` elements are ``<= x`` (the cumulative sub-run
  sizes of those ``p`` samples), and
* fewer than ``max_below(next sample above x)`` elements are ``< x``
  (everything below ``x`` is below the next sample).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.core.summary import OPAQSummary

__all__ = ["RankBounds", "estimate_rank", "estimate_ranks", "approx_cdf"]


@dataclass(frozen=True)
class RankBounds:
    """Deterministic band for ``count(elements <= value)``."""

    value: float
    low: int
    high: int
    n: int

    @property
    def midpoint(self) -> float:
        """Point estimate of the rank."""
        return 0.5 * (self.low + self.high)

    @property
    def phi_low(self) -> float:
        """Smallest quantile fraction ``value`` can be."""
        return self.low / self.n

    @property
    def phi_high(self) -> float:
        """Largest quantile fraction ``value`` can be."""
        return self.high / self.n

    @property
    def width(self) -> int:
        return self.high - self.low


def estimate_rank(summary: OPAQSummary, value: float) -> RankBounds:
    """Estimate the rank band of ``value`` from a summary, in O(log(r·s)).

    The band is exact at the extremes: values below the tracked global
    minimum get ``[0, 0]``; values at or above the maximum get a band
    closing at ``n``.
    """
    n = summary.count
    if value < summary.minimum:
        return RankBounds(value=value, low=0, high=0, n=n)
    if value >= summary.maximum:
        return RankBounds(value=value, low=n, high=n, n=n)
    samples = summary.samples
    p = int(np.searchsorted(samples, value, side="right"))
    low = summary.min_rank_at(p - 1) if p >= 1 else 0
    if p < samples.size:
        # Everything <= value is < the next sample (strictly above value),
        # except possible ties of that sample with itself — max_below_at
        # already covers every element strictly below samples[p].
        high = summary.max_below_at(p)
    else:
        high = n
    return RankBounds(value=value, low=min(low, n), high=max(min(high, n), low), n=n)


def estimate_ranks(summary: OPAQSummary, values: ArrayLike) -> list[RankBounds]:
    """Rank bands for many probe values (one binary search each)."""
    return [estimate_rank(summary, float(v)) for v in np.asarray(values).ravel()]


def approx_cdf(summary: OPAQSummary, values: ArrayLike) -> np.ndarray:
    """Point estimates of the empirical CDF at many probe values.

    Vectorised midpoint-of-band estimate of ``P(X <= v)``; the bands
    themselves (with their deterministic guarantees) come from
    :func:`estimate_ranks`.  Useful for plotting and for the histogram
    application's batch mode.
    """
    probes = np.asarray(values, dtype=np.float64).ravel()
    bands = estimate_ranks(summary, probes)
    return np.array([b.midpoint / summary.count for b in bands])
