"""The public estimator interface.

Every OPAQ-family estimator exposes the same four-method surface —
``summarize`` (consume a data source into a summary), ``bounds`` /
``bound`` (query a summary), and ``estimate`` (both in one call) — so
experiment harnesses and applications can swap the one-pass estimator and
the incremental maintainer freely.  :class:`QuantileEstimator` is a
:func:`~typing.runtime_checkable` :class:`~typing.Protocol`: conformance is
structural, no inheritance required.
"""

from __future__ import annotations

from typing import (
    Iterable,
    Protocol,
    Sequence,
    TypeAlias,
    runtime_checkable,
)

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.summary import OPAQSummary
from repro.storage import DiskDataset, RunReader

__all__ = ["QuantileEstimator", "DataSource"]

#: Anything an estimator can consume: a disk-resident dataset (read through
#: a single-pass :class:`~repro.storage.RunReader`), an existing reader, an
#: in-memory array (chopped into runs), or any iterable of runs.
DataSource: TypeAlias = (
    "DiskDataset | RunReader | np.ndarray | Iterable[np.ndarray]"
)


@runtime_checkable
class QuantileEstimator(Protocol):
    """Structural interface shared by :class:`~repro.core.OPAQ` and
    :class:`~repro.core.IncrementalOPAQ`.

    The summary is an explicit value, not hidden state: ``summarize``
    produces it, ``bounds``/``bound`` query it, and the pairing is the
    caller's responsibility.  (The incremental estimator additionally keeps
    its *current* summary available as a property, but its query methods
    take the summary argument all the same.)
    """

    def summarize(self, source: DataSource) -> OPAQSummary:
        """Consume ``source`` and return a queryable summary."""
        ...

    def bounds(
        self, summary: OPAQSummary, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Quantile bounds for many fractions (O(1) each)."""
        ...

    def bound(self, summary: OPAQSummary, phi: float) -> QuantileBounds:
        """Quantile bounds for a single fraction."""
        ...

    def estimate(
        self, source: DataSource, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """``summarize`` + ``bounds`` in one call."""
        ...
