"""The OPAQ summary: a merged, sorted sample list plus rank bookkeeping.

The output of the sample phase (paper section 2.1 and Figure 1) is a sorted
list of ``r*s`` regular samples.  :class:`OPAQSummary` packages that list
together with what the quantile phase's rank arithmetic needs:

``gaps``
    The *group weight* of each sample — how many data elements the sample
    represents (its sub-run size, ``m/s`` for every sample in the paper's
    divisible case).  Every element belongs to exactly one group, and every
    element of a group is **at or below** its sample.  The cumulative sum
    of gaps is therefore an exact lower bound on
    ``count(elements <= samples[i])`` — regular sampling's first property.

``floors``
    A value every element of the group is **at or above**: for a fresh
    sample this is the previous regular sample of the same run (``-inf``
    for a run's first sample).  Floors power the second property — the
    upper bound on ``count(elements < samples[i])``: an element below a
    value ``v`` lives either in a group whose sample is below ``v``
    (fully counted by the gap prefix sum) or in a *straddling* group
    (``floor < v <= sample``), which can contribute at most ``gap - 1``
    elements (its sample is not below ``v``).  For a freshly built summary
    at most one group per run straddles any value, which reproduces the
    paper's ``i·m/s + (r-1)(m/s-1)`` bound exactly; after merging or
    compacting summaries the straddle accounting remains *sound* where
    closed-form run arithmetic would silently break.

``count`` / ``minimum`` / ``maximum``
    ``n`` and the global extremes — free to track during the pass, and
    they give finite bounds for extreme quantiles where the index
    arithmetic falls off either end of the sample list.

Summaries are the library's durable artifact: they can be merged (the
incremental extension of section 4), compacted to a memory bound (gap
groups collapse, floors take the group minimum), serialised to disk, and
queried for any number of quantiles at ``O(log(r·s))`` each.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DataError, EstimationError
from repro.selection import is_sorted, merge_two_with_payload

__all__ = ["OPAQSummary"]


@dataclass(frozen=True)
class OPAQSummary:
    """Sorted sample list + rank bookkeeping; the product of one pass."""

    samples: np.ndarray
    gaps: np.ndarray
    num_runs: int
    count: int
    minimum: float
    maximum: float
    #: Per-group lower value bound; defaults to the fully conservative
    #: ``-inf`` (sound for hand-built summaries, maximally pessimistic).
    floors: np.ndarray | None = None
    _cum: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        gaps = np.asarray(self.gaps, dtype=np.int64)
        if self.floors is None:
            floors = np.full(samples.shape, -np.inf)
        else:
            floors = np.asarray(self.floors, dtype=np.float64)
        object.__setattr__(self, "samples", samples)
        object.__setattr__(self, "gaps", gaps)
        object.__setattr__(self, "floors", floors)
        if self.count <= 0:
            raise EstimationError("summary must describe at least one element")
        if samples.size == 0:
            raise EstimationError("summary must hold at least one sample")
        if gaps.shape != samples.shape or floors.shape != samples.shape:
            raise EstimationError(
                "gaps and floors must align one-to-one with samples"
            )
        if self.num_runs <= 0:
            raise EstimationError("num_runs must be positive")
        if gaps.min() < 1:
            raise EstimationError("every sub-run must hold at least 1 element")
        if np.any(floors > samples):
            raise EstimationError("a group's floor cannot exceed its sample")
        if self.minimum > self.maximum:
            raise EstimationError("minimum exceeds maximum")
        if not is_sorted(samples):
            raise EstimationError("sample list must be sorted")
        cum = np.cumsum(gaps)
        if int(cum[-1]) != self.count:
            raise EstimationError(
                f"sub-run sizes sum to {int(cum[-1])} but the summary claims "
                f"{self.count} elements"
            )
        object.__setattr__(self, "_cum", cum)

    @property
    def _maxlt(self) -> np.ndarray:
        """The ``maxlt`` array, built on first use and cached.

        Summary construction is hot in the multi-tenant registry: a fold
        builds several short-lived summaries per key (the exact delta,
        then one candidate per compaction width), and only the survivor
        ever answers a rank query.  Deferring the argsort/searchsorted
        sweep here cuts construction to its validation cost.  Two
        threads racing on first use both build the same idempotent
        array, so the benign race costs one redundant build, never a
        wrong answer.
        """
        cached: np.ndarray | None = self.__dict__.get("_maxlt_cache")
        if cached is None:
            cached = self._build_maxlt(
                self.samples, self.gaps, self.floors, self._cum
            )
            object.__setattr__(self, "_maxlt_cache", cached)
        return cached

    @staticmethod
    def _build_maxlt(
        samples: np.ndarray,
        gaps: np.ndarray,
        floors: np.ndarray,
        cum: np.ndarray,
    ) -> np.ndarray:
        """``maxlt[i]`` = guaranteed max of ``count(x < samples[i])``.

        For ``v = samples[i]``::

            maxlt(v) =   sum of gaps of groups with sample < v
                       + sum of (gap - 1) of straddling groups
                                (floor < v <= sample)

        Vectorised by inclusion-exclusion: the straddle indicator is
        ``[floor < v] - [sample < v]``, so two sorted prefix-sum lookups
        cover all positions in O(r·s log(r·s)).  The result is
        non-decreasing (it bounds a non-decreasing function and both event
        types only add mass as ``v`` grows).
        """
        gm1 = (gaps - 1).astype(np.float64)
        # Prefix sums of (gap-1) in sample order and in floor order.
        cum_gm1_by_sample = np.concatenate([[0.0], np.cumsum(gm1)])
        order = np.argsort(floors, kind="stable")
        floors_sorted = floors[order]
        cum_gm1_by_floor = np.concatenate([[0.0], np.cumsum(gm1[order])])
        # For each position i with value v = samples[i]:
        left = np.searchsorted(samples, samples, side="left")
        cum_full = np.concatenate([[0], cum])
        base = cum_full[left]  # gaps of groups with sample < v
        below_floor = cum_gm1_by_floor[
            np.searchsorted(floors_sorted, samples, side="left")
        ]
        below_sample = cum_gm1_by_sample[left]
        maxlt = base + (below_floor - below_sample)
        return np.minimum(maxlt, cum[-1] - 1).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"OPAQSummary(count={self.count:,}, runs={self.num_runs}, "
            f"samples={self.num_samples:,}, "
            f"range=[{self.minimum:.6g}, {self.maximum:.6g}], "
            f"rank_error<={self.guaranteed_rank_error():,})"
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        """Size of the merged sample list (``r*s`` in the paper)."""
        return int(self.samples.size)

    @property
    def subrun_floor(self) -> int:
        """Smallest group weight (``m/s`` in the divisible case)."""
        return int(self.gaps.min())

    @property
    def subrun_ceil(self) -> int:
        """Largest group weight (``m/s`` in the divisible case)."""
        return int(self.gaps.max())

    @property
    def memory_footprint(self) -> int:
        """Keys of memory the summary occupies (samples, gaps, floors)."""
        return 3 * self.num_samples

    def min_rank_at(self, index: int) -> int:
        """Guaranteed minimum of ``count(x <= samples[index])`` (0-based).

        Regular sampling's first property: the ``index+1`` smallest samples
        each own a disjoint group of elements at or below them.
        """
        if not 0 <= index < self.num_samples:
            raise EstimationError(f"sample index {index} out of range")
        return int(self._cum[index])

    def max_below_at(self, index: int) -> int:
        """Guaranteed maximum of ``count(x < samples[index])`` (0-based).

        Regular sampling's second property via the floor bookkeeping (see
        the module docstring); sound for fresh, merged and compacted
        summaries alike.
        """
        if not 0 <= index < self.num_samples:
            raise EstimationError(f"sample index {index} out of range")
        return int(self._maxlt[index])

    def cumulative_min_ranks(self) -> np.ndarray:
        """The whole ``min_rank_at`` array (read-only view)."""
        view = self._cum.view()
        view.flags.writeable = False
        return view

    def max_below_all(self) -> np.ndarray:
        """The whole ``max_below_at`` array (read-only view)."""
        view = self._maxlt.view()
        view.flags.writeable = False
        return view

    def guaranteed_rank_error(self) -> int:
        """Worst-case rank distance between either bound and the truth.

        Computed exactly from the bookkeeping:
        ``max_i (maxlt[i] - cum[i-1])``.  Equals Lemma 1/2's ``n/s``
        (= ``r·m/s``) in the paper's divisible case; degrades
        proportionally (not catastrophically) under compaction.
        """
        cum_prev = np.concatenate([[0], self._cum[:-1]])
        return int(np.max(self._maxlt - cum_prev)) + 1

    # ------------------------------------------------------------------
    # Incremental maintenance (paper section 4)
    # ------------------------------------------------------------------

    def _payload(self) -> np.ndarray:
        return np.column_stack([self.gaps.astype(np.float64), self.floors])

    def merge(self, other: "OPAQSummary") -> "OPAQSummary":
        """Combine two summaries built over disjoint data.

        This is the paper's incremental extension: keep the sorted samples
        of the old runs, sample only the new runs, and merge the two sorted
        lists (gap and floor bookkeeping ride along, so the merged
        guarantees stay exact).
        """
        if not isinstance(other, OPAQSummary):
            raise EstimationError("can only merge with another OPAQSummary")
        samples, payload = merge_two_with_payload(
            self.samples, self._payload(), other.samples, other._payload()
        )
        return OPAQSummary(
            samples=samples,
            gaps=payload[:, 0].astype(np.int64),
            floors=payload[:, 1],
            num_runs=self.num_runs + other.num_runs,
            count=self.count + other.count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def __add__(self, other: "OPAQSummary") -> "OPAQSummary":
        return self.merge(other)

    def compact(self, factor: int = 2) -> "OPAQSummary":
        """Shrink the sample list ``factor``-fold, trading accuracy for
        memory.

        Adjacent groups of ``factor`` samples collapse into their *last*
        member; the survivor's gap absorbs the group's combined weight and
        its floor drops to the group minimum.  Both regular-sampling
        properties survive (each element is still at or below its group's
        sample and at or above its floor), so all guarantees remain sound
        — just coarser, roughly as if ``s/factor`` samples had been drawn.

        This is what keeps long-lived :class:`~repro.core.IncrementalOPAQ`
        summaries bounded: without compaction the sample list grows by
        ``r·s`` per ingested batch forever.
        """
        if factor < 1:
            raise EstimationError("compaction factor must be at least 1")
        if factor == 1 or self.num_samples <= 1:
            return self
        # Group from the END so the global maximum (the last sample)
        # always survives; a short leading group is fine.
        survivors = np.arange(self.num_samples - 1, -1, -factor)[::-1]
        starts = np.concatenate([[0], survivors[:-1] + 1])
        new_gaps = np.add.reduceat(self.gaps, starts)
        new_floors = np.minimum.reduceat(self.floors, starts)
        return OPAQSummary(
            samples=self.samples[survivors].copy(),
            gaps=new_gaps,
            floors=new_floors,
            num_runs=self.num_runs,
            count=self.count,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def compact_to(self, max_samples: int) -> "OPAQSummary":
        """Compact (if needed) until at most ``max_samples`` remain."""
        if max_samples < 1:
            raise EstimationError("max_samples must be positive")
        if self.num_samples <= max_samples:
            return self
        factor = -(-self.num_samples // max_samples)
        return self.compact(factor)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    #: On-disk format identity: the magic marks the file as an OPAQ
    #: summary, the version gates compatibility.  History: 2 = pre-floor
    #: archives, 3 = interim floors, 4 = floors + extremes, 5 = adds the
    #: magic stamp (payload unchanged from 4).
    FORMAT_MAGIC = "OPAQSUM"
    FORMAT_VERSION = 5
    _SUPPORTED_FORMATS = (2, 3, 4, 5)

    def save(self, path: str | os.PathLike) -> None:
        """Persist the summary as an ``.npz`` archive (versioned)."""
        meta = {
            "magic": self.FORMAT_MAGIC,
            "num_runs": self.num_runs,
            "count": self.count,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "format": self.FORMAT_VERSION,
        }
        np.savez(
            path,
            samples=self.samples,
            gaps=self.gaps,
            floors=self.floors,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "OPAQSummary":
        """Load a summary saved with :meth:`save`.

        Accepts formats 2-5; pre-floor archives load with fully
        conservative ``-inf`` floors (sound, looser).  A wrong magic or an
        unknown version raises :class:`~repro.errors.DataError` here, with
        a message naming the problem — never an arbitrary failure three
        layers downstream.
        """
        path = Path(path)
        if path.suffix != ".npz" and not path.exists():
            path = path.with_suffix(path.suffix + ".npz")
        try:
            with np.load(path) as archive:
                samples = archive["samples"]
                gaps = archive["gaps"]
                floors = archive["floors"] if "floors" in archive else None
                meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        except FileNotFoundError:
            raise DataError(f"summary file does not exist: {path}") from None
        except (KeyError, ValueError) as exc:
            raise DataError(f"malformed summary file {path}: {exc}") from None
        magic = meta.get("magic", cls.FORMAT_MAGIC)  # absent pre-5: accept
        if magic != cls.FORMAT_MAGIC:
            raise DataError(
                f"{path} is not an OPAQ summary file (magic {magic!r}, "
                f"expected {cls.FORMAT_MAGIC!r})"
            )
        version = meta.get("format")
        if version not in cls._SUPPORTED_FORMATS:
            raise DataError(
                f"summary file {path} has format version {version!r}; this "
                f"build reads versions {cls._SUPPORTED_FORMATS} — upgrade "
                "the library or re-create the summary with `opaq summarize`"
            )
        return cls(
            samples=samples,
            gaps=gaps,
            floors=floors,
            num_runs=int(meta["num_runs"]),
            count=int(meta["count"]),
            minimum=float(meta["minimum"]),
            maximum=float(meta["maximum"]),
        )
