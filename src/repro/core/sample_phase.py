"""The sample phase (paper section 2.1, Figure 1).

One pass over the data as runs; from each run, extract the ``s`` regular
samples — the elements of rank ``m/s, 2m/s, ..., m`` — with a selection
algorithm rather than a sort, then merge the per-run sorted sample lists
into one sorted list of ``r*s`` samples.

Each sample carries its *sub-run size* (the number of run elements it
represents — exactly ``m/s`` when ``s`` divides ``m``) through the merge;
the summary's rank guarantees are computed from these.  Ragged runs (a last
run shorter than ``m``, or caller-supplied runs of varying sizes) get a
proportionally scaled sample count so every sample still represents a
sub-run of roughly ``m/s`` elements.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.config import OPAQConfig
from repro.core.summary import OPAQSummary
from repro.errors import EstimationError
from repro.obs import current_tracer
from repro.selection import (
    SelectionStrategy,
    kway_merge,
    multiselect_numpy,
    regular_sample_ranks,
)

__all__ = ["sample_run", "build_summary", "scaled_sample_count"]


def scaled_sample_count(run_size: int, nominal_run: int, nominal_s: int) -> int:
    """Sample count for a run of ``run_size`` when full runs get ``nominal_s``.

    Keeps the sub-run size (elements per sample) as close to
    ``nominal_run / nominal_s`` as possible: a half-size run gets half the
    samples.  Always at least 1 and at most ``run_size``.
    """
    if run_size <= 0:
        raise EstimationError("run must be non-empty")
    scaled = round(nominal_s * run_size / nominal_run)
    return max(1, min(run_size, scaled))


def sample_run(
    run: np.ndarray,
    sample_count: int,
    strategy: SelectionStrategy,
    kernel: str = "python",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract the regular samples of one run.

    Returns ``(samples, gaps, floors)``: the sorted samples at 0-based
    ranks ``floor(i*m/s) - 1`` for ``i = 1..s``; each sample's sub-run
    size (the gap to the previous sample rank; gaps sum to the run size);
    and each sub-run's floor — the previous sample's value (``-inf`` for
    the first), below which none of the sub-run's elements can fall.

    ``kernel="python"`` (default) extracts via the configured strategy's
    multiselect; ``kernel="numpy"`` forces the vectorised
    :func:`~repro.selection.multiselect_numpy` kernel regardless of
    strategy.  Both return bit-identical samples (order statistics are
    value-deterministic; see :mod:`repro.selection.kernels`).
    """
    run = np.asarray(run)
    if run.ndim != 1:
        raise EstimationError("a run must be a one-dimensional array")
    if np.isnan(run).any():
        # NaNs have no rank; letting them through would silently corrupt
        # every guarantee downstream.
        raise EstimationError("run contains NaN keys; quantiles are undefined")
    ranks = regular_sample_ranks(run.size, sample_count)
    if kernel == "numpy":
        samples = multiselect_numpy(run, ranks)
    else:
        samples = strategy.multiselect(run, ranks)
    gaps = np.diff(np.concatenate([[-1], ranks])).astype(np.int64)
    floors = np.concatenate([[-np.inf], samples[:-1]])
    return samples, gaps, floors


def build_summary(
    runs: Iterable[np.ndarray], config: OPAQConfig
) -> OPAQSummary:
    """Run the full sample phase over an iterable of runs.

    Parameters
    ----------
    runs:
        Any iterable of one-dimensional arrays — typically a
        :class:`repro.storage.RunReader`, which also enforces the one-pass
        discipline and accounts I/O.
    config:
        Run size ``m``, per-run sample count ``s`` and selection strategy.

    Returns
    -------
    OPAQSummary
        The merged sorted sample list with rank bookkeeping.
    """
    strategy = config.selection_strategy()
    tracer = current_tracer()
    sample_lists: list[np.ndarray] = []
    payload_lists: list[np.ndarray] = []
    num_runs = 0
    count = 0
    minimum = np.inf
    maximum = -np.inf
    with tracer.span("phase.sample"):
        for run in runs:
            run = np.asarray(run)
            if run.size == 0:
                continue
            s_k = scaled_sample_count(
                run.size, config.run_size, config.sample_size
            )
            samples, gaps, floors = sample_run(
                run, s_k, strategy, kernel=config.kernel
            )
            sample_lists.append(samples)
            payload_lists.append(
                np.column_stack([gaps.astype(np.float64), floors])
            )
            num_runs += 1
            count += run.size
            minimum = min(minimum, float(run.min()))
            maximum = max(maximum, float(run.max()))
        if not sample_lists:
            raise EstimationError("no data: the run iterable was empty")
        merged, merged_payload = kway_merge(
            sample_lists, payloads=payload_lists, kernel=config.kernel
        )
    tracer.count("sample.runs", num_runs)
    tracer.count("sample.elements", count)
    tracer.count("sample.list_length", int(merged.size))
    return OPAQSummary(
        samples=merged,
        gaps=merged_payload[:, 0].astype(np.int64),
        floors=merged_payload[:, 1],
        num_runs=num_runs,
        count=count,
        minimum=minimum,
        maximum=maximum,
    )
