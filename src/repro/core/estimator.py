"""The user-facing OPAQ estimator.

Ties the sample phase and the quantile phase together behind one object::

    from repro import OPAQ, OPAQConfig

    est = OPAQ(OPAQConfig(run_size=100_000, sample_size=1000))
    summary = est.summarize(dataset)          # the one pass over the data
    bounds = summary and est.bounds(summary, [0.25, 0.5, 0.75])

Accepted data sources: a :class:`repro.storage.DiskDataset` (read through a
single-pass :class:`~repro.storage.RunReader`), an in-memory numpy array
(chopped into runs of ``m``), an existing reader, or any iterable of runs.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.config import OPAQConfig
from repro.core.protocols import DataSource
from repro.core.quantile_phase import bounds_for, quantile_bounds, splitters
from repro.core.sample_phase import build_summary
from repro.core.summary import OPAQSummary
from repro.errors import ConfigError
from repro.storage import DiskDataset, RunReader

__all__ = ["OPAQ", "estimate_quantiles"]


class OPAQ:
    """One-pass quantile estimator (the paper's OPAQ algorithm)."""

    def __init__(self, config: OPAQConfig) -> None:
        self.config = config

    def _runs(self, source: DataSource) -> Iterable[np.ndarray]:
        """Normalise any supported source into an iterable of runs."""
        if isinstance(source, DiskDataset):
            self.config.validate_for(source.count)
            return RunReader(source, run_size=self.config.run_size)
        if isinstance(source, RunReader):
            if source.run_size != self.config.run_size:
                raise ConfigError(
                    f"reader run size {source.run_size} differs from the "
                    f"configured run size {self.config.run_size}"
                )
            self.config.validate_for(source.dataset.count)
            return source
        if isinstance(source, np.ndarray):
            if source.ndim != 1:
                raise ConfigError("in-memory data must be one-dimensional")
            self.config.validate_for(max(1, source.size))
            m = self.config.run_size
            return (source[i : i + m] for i in range(0, source.size, m))
        if isinstance(source, Iterable):
            # An iterable of runs: the total size is unknowable up front, so
            # the memory constraint is checked against the observed total
            # once the single pass completes.
            return self._validated_runs(source)
        raise ConfigError(
            f"unsupported data source {type(source).__name__!r}; expected a "
            "DiskDataset, RunReader, numpy array, or iterable of runs"
        )

    def _validated_runs(
        self, runs: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Pass runs through, validating the memory constraint on completion."""
        total = 0
        for run in runs:
            run = np.asarray(run)
            if run.ndim != 1:
                raise ConfigError("each run must be a one-dimensional array")
            total += run.size
            yield run
        self.config.validate_for(max(1, total))

    def summarize(self, source: DataSource) -> OPAQSummary:
        """The one pass: build the sorted sample list for ``source``."""
        return build_summary(self._runs(source), self.config)

    def bounds(
        self, summary: OPAQSummary, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Quantile bounds for many fractions (O(1) each)."""
        return bounds_for(summary, phis)

    def bound(self, summary: OPAQSummary, phi: float) -> QuantileBounds:
        """Quantile bounds for a single fraction."""
        return quantile_bounds(summary, phi)

    def estimate(
        self, source: DataSource, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Convenience: one pass + quantile phase in a single call."""
        return self.bounds(self.summarize(source), phis)

    def splitters(self, summary: OPAQSummary, q: int, which: str = "upper") -> np.ndarray:
        """Equi-depth cut points for partitioning applications."""
        return splitters(summary, q, which=which)

    @classmethod
    def quantiles(
        cls,
        source: DiskDataset | np.ndarray,
        phis: Sequence[float],
        sample_size: int = 1000,
        run_size: int | None = None,
        kernel: str = "python",
        backend: str | None = None,
        num_procs: int = 1,
    ) -> list[QuantileBounds]:
        """One-shot convenience: estimate quantile bounds of ``source``.

        Picks a run size of ``~sqrt(n*s)`` (the memory-optimal choice) when
        not given.  ``source`` must have a knowable size — a numpy array or
        a :class:`~repro.storage.DiskDataset` — since the run size is
        derived from it; use an explicit :class:`~repro.core.OPAQConfig`
        and :meth:`estimate` for run iterables.

        ``kernel`` selects the hot-path implementation (``"python"`` or
        ``"numpy"``; bit-identical output either way).  ``backend`` routes
        the estimate through the parallel formulation: ``"serial"``,
        ``"thread"`` or ``"process"`` run POPAQ over ``num_procs`` real
        workers (``"simulated"`` charges the cost model instead); ``None``
        — the default — runs the sequential single pass in this thread.
        Every combination produces the same bounds; see ``docs/parallel.md``.

        >>> import numpy as np
        >>> data = np.arange(100_000, dtype=float)
        >>> [b] = OPAQ.quantiles(data, [0.5], sample_size=100)
        >>> b.lower <= 49999.0 <= b.upper
        True
        """
        n = (
            source.count
            if isinstance(source, DiskDataset)
            else int(np.asarray(source).size)
        )
        if n <= 0:
            raise ConfigError("data must be non-empty")
        if run_size is None:
            run_size = max(sample_size, int(np.sqrt(float(n) * sample_size)))
            run_size = min(run_size, n)
        config = OPAQConfig(
            run_size=run_size,
            sample_size=min(sample_size, run_size),
            kernel=kernel,
        )
        if backend is not None:
            # Imported here: core must stay importable without parallel
            # (parallel already imports core, so a module-level import
            # would be a cycle).
            from repro.parallel import ParallelOPAQ

            popaq = ParallelOPAQ(num_procs, config, backend=backend)
            return popaq.run(source, phis).bounds(phis)
        return cls(config).estimate(source, phis)


def estimate_quantiles(
    data: DiskDataset | np.ndarray,
    phis: Sequence[float],
    sample_size: int = 1000,
    run_size: int | None = None,
) -> list[QuantileBounds]:
    """Deprecated alias of :meth:`OPAQ.quantiles`.

    .. deprecated:: 1.1
        Call ``OPAQ.quantiles(data, phis, ...)`` instead; this alias will
        be removed in a future release.
    """
    warnings.warn(
        "estimate_quantiles() is deprecated; use OPAQ.quantiles() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return OPAQ.quantiles(
        data, phis, sample_size=sample_size, run_size=run_size
    )
