"""OPAQ proper: the paper's primary contribution.

Sample phase (section 2.1), quantile phase (section 2.2), and the section 4
extensions (exact two-pass refinement, rank estimation, incremental
maintenance).
"""

from repro.core.bounds import QuantileBounds
from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ, estimate_quantiles
from repro.core.exact import exact_quantiles, refine_exact
from repro.core.incremental import IncrementalOPAQ
from repro.core.protocols import DataSource, QuantileEstimator
from repro.core.quantile_phase import (
    bounds_arrays,
    bounds_for,
    lower_bound_index,
    quantile_bounds,
    splitters,
    upper_bound_index,
)
from repro.core.rank import RankBounds, approx_cdf, estimate_rank, estimate_ranks
from repro.core.sample_phase import build_summary, sample_run, scaled_sample_count
from repro.core.summary import OPAQSummary

__all__ = [
    "OPAQ",
    "OPAQConfig",
    "OPAQSummary",
    "QuantileBounds",
    "QuantileEstimator",
    "DataSource",
    "estimate_quantiles",
    "quantile_bounds",
    "bounds_for",
    "bounds_arrays",
    "splitters",
    "lower_bound_index",
    "upper_bound_index",
    "build_summary",
    "sample_run",
    "scaled_sample_count",
    "exact_quantiles",
    "refine_exact",
    "IncrementalOPAQ",
    "RankBounds",
    "estimate_rank",
    "estimate_ranks",
    "approx_cdf",
]
