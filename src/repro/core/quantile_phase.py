"""The quantile phase (paper section 2.2): rank arithmetic on the samples.

Given the sorted sample list, the lower and upper bound of the φ-quantile
are array lookups at indices computed from regular sampling's two
properties:

1. the ``i``-th smallest sample has at least ``i·m/s`` elements at or
   below it (here: exactly tracked as the cumulative sum of sub-run sizes,
   ``summary.min_rank_at``), and
2. at most ``i·m/s + (r−1)(m/s−1)`` elements lie strictly below it
   (here: ``summary.max_below_at``).

For the paper's divisible case (``s | m``, equal runs) the closed forms

    ``i = floor(ψ·s/m − (r−1)(1 − s/m))``     (formula 2, lower bound)
    ``j = ceil(ψ·s/m)``                        (formula 5, upper bound)

are exposed as :func:`lower_bound_index` / :func:`upper_bound_index` and
agree with the general machinery exactly.

Tie safety: property 2 as implemented is one element tighter than the
paper states it (``i·m/s − 1 + (r−1)(m/s−1)``: the sample itself is not
*below* itself), which makes the enclosure ``e_l ≤ e_φ ≤ e_u`` hold
unconditionally — including under the heavy duplication the evaluation's
``n/10``-duplicates workloads exercise — while reproducing the paper's
indices verbatim in the divisible case.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.summary import OPAQSummary
from repro.errors import EstimationError
from repro.metrics.true_quantiles import quantile_rank
from repro.obs import current_tracer

__all__ = [
    "lower_bound_index",
    "upper_bound_index",
    "quantile_bounds",
    "bounds_at_rank",
    "bounds_for",
    "bounds_arrays",
    "splitters",
]


def lower_bound_index(rank: int, num_runs: int, subrun: int) -> int:
    """Paper formula (2) for the divisible case: 1-based index of ``e_l``.

    ``subrun`` is ``m/s``.  Returns 0 when no sample is guaranteed to sit
    at or below the true quantile (callers substitute the global minimum).

    The enclosure is tie-safe: the ``i``-th smallest sample has at most
    ``i·(m/s) − 1 + (r−1)(m/s−1)`` elements strictly below it (one tighter
    than the paper's property — the sample is not below itself), so the
    largest ``i`` with ``i·(m/s) ≤ ψ − (r−1)(m/s−1)`` already guarantees
    ``count(x < e_l) ≤ ψ−1``, hence ``e_l ≤ e_ψ`` under any duplication.
    """
    if rank < 1:
        raise EstimationError("rank must be at least 1")
    if subrun < 1 or num_runs < 1:
        raise EstimationError("num_runs and subrun must be positive")
    i = (rank - (num_runs - 1) * (subrun - 1)) // subrun
    return max(0, i)


def upper_bound_index(rank: int, num_runs: int, subrun: int) -> int:
    """Paper formula (5) for the divisible case: 1-based index of ``e_u``."""
    if rank < 1:
        raise EstimationError("rank must be at least 1")
    if subrun < 1 or num_runs < 1:
        raise EstimationError("num_runs and subrun must be positive")
    return -(-rank // subrun)  # ceil division


def quantile_bounds(summary: OPAQSummary, phi: float) -> QuantileBounds:
    """Compute ``[e_l, e_u]`` for one quantile fraction.

    Two binary searches over the cumulative sub-run ranks and two array
    lookups — O(log(r·s)), independent of ``n``.
    """
    return bounds_at_rank(summary, quantile_rank(phi, summary.count), phi=phi)


def bounds_at_rank(
    summary: OPAQSummary, rank: int, phi: float | None = None
) -> QuantileBounds:
    """Compute ``[e_l, e_u]`` for an explicit 1-based target rank.

    Rank-exact entry point (no float fraction round trip) used by the
    multi-pass selectors; :func:`quantile_bounds` delegates here.
    """
    if not 1 <= rank <= summary.count:
        raise EstimationError(
            f"rank {rank} out of range for {summary.count} elements"
        )
    psi = rank
    if phi is None:
        phi = rank / summary.count
    samples = summary.samples
    cum = summary.cumulative_min_ranks()
    maxlt = summary.max_below_all()

    # Lower bound: the largest index guaranteed to have at most psi - 1
    # elements strictly below it (so e_l <= e_psi even under ties).  The
    # max-below array is non-decreasing, so this is one binary search.
    lower_idx = int(np.searchsorted(maxlt, psi - 1, side="right")) - 1
    if lower_idx >= 0:
        lower = float(samples[lower_idx])
        # Lemma 1: at least cum[i] elements are <= e_l, so at most
        # psi - cum[i] elements separate e_l from the true quantile.
        max_below = psi - summary.min_rank_at(lower_idx)
    else:
        lower = summary.minimum
        max_below = psi - 1

    # Upper bound: the smallest index guaranteed to have >= psi elements
    # at or below it.  cum[-1] == n >= psi, so this always exists.
    upper_idx = int(np.searchsorted(cum, psi, side="left"))
    upper = float(samples[upper_idx])
    max_above = int(maxlt[upper_idx]) - psi

    max_above = max(0, min(max_above, summary.count - psi))
    max_below = max(0, min(max_below, psi - 1))

    if upper < lower:
        # Cannot happen for a consistent summary, but keep the enclosure
        # invariant robust against pathological float inputs (NaN-free
        # guaranteed by construction, but -0.0/ties cost nothing to guard).
        lower = upper

    return QuantileBounds(
        phi=phi,
        rank=psi,
        lower=lower,
        upper=upper,
        max_below=int(max_below),
        max_above=int(max_above),
        lower_index=lower_idx + 1,
        upper_index=upper_idx + 1,
    )


def bounds_for(
    summary: OPAQSummary, phis: Iterable[float] | Sequence[float]
) -> list[QuantileBounds]:
    """Bounds for many fractions — constant extra work per fraction."""
    fractions = [float(phi) for phi in phis]
    tracer = current_tracer()
    with tracer.span("phase.quantile", queries=len(fractions)):
        out = [quantile_bounds(summary, phi) for phi in fractions]
    tracer.count("quantile.queries", len(fractions))
    return out


def bounds_arrays(
    summary: OPAQSummary, phis: np.ndarray | Sequence[float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`bounds_for`: one ``searchsorted`` sweep for a
    whole φ-vector.

    Returns ``(psi, lower, upper, max_below, max_above, phis)`` as
    parallel arrays, bit-identical to the scalar path (the per-φ loop in
    :func:`bounds_at_rank`) — same rank arithmetic, same tie handling,
    same clamps — but with cost O(k·log(r·s)) in numpy instead of k
    python iterations.  The serving layer's query hot path.
    """
    fractions = np.ascontiguousarray(phis, dtype=np.float64)
    if fractions.ndim != 1:
        raise EstimationError("phis must be a one-dimensional vector")
    if fractions.size == 0:
        raise EstimationError("pass at least one quantile fraction")
    if not bool(np.all((fractions > 0.0) & (fractions <= 1.0))):
        raise EstimationError(
            f"every phi must lie in (0, 1]; got {fractions!r}"
        )
    n = summary.count
    # quantile_rank, vectorised: psi = clamp(ceil(phi*n), 1, n).  The
    # product and ceil are the same float64 operations math.ceil performs.
    psi = np.minimum(
        n, np.maximum(1, np.ceil(fractions * n).astype(np.int64))
    )
    samples = summary.samples
    cum = summary.cumulative_min_ranks()
    maxlt = summary.max_below_all()

    lower_idx = np.searchsorted(maxlt, psi - 1, side="right") - 1
    has_lower = lower_idx >= 0
    safe_lower_idx = np.maximum(lower_idx, 0)
    lower = np.where(has_lower, samples[safe_lower_idx], summary.minimum)
    max_below = np.where(has_lower, psi - cum[safe_lower_idx], psi - 1)

    upper_idx = np.searchsorted(cum, psi, side="left")
    upper = samples[upper_idx]
    max_above = maxlt[upper_idx] - psi

    max_above = np.maximum(0, np.minimum(max_above, n - psi))
    max_below = np.maximum(0, np.minimum(max_below, psi - 1))
    # Same guard as the scalar path: keep the enclosure non-inverted even
    # under pathological float inputs.
    lower = np.minimum(lower, upper)
    return psi, lower, upper, max_below, max_above, fractions


def splitters(summary: OPAQSummary, q: int, which: str = "upper") -> np.ndarray:
    """The ``q-1`` equi-depth cut points (for sorting/partitioning apps).

    ``which`` selects the bound used as the cut value: ``"upper"`` (each of
    the first ``q-1`` partitions is guaranteed to catch its quantile),
    ``"lower"``, or ``"mid"`` (midpoint — best point estimate, no one-sided
    guarantee).
    """
    if q < 2:
        raise EstimationError("q must be at least 2")
    if which not in ("upper", "lower", "mid"):
        raise EstimationError("which must be 'upper', 'lower' or 'mid'")
    cuts = []
    for k in range(1, q):
        b = quantile_bounds(summary, k / q)
        cuts.append(
            b.upper if which == "upper" else b.lower if which == "lower" else b.midpoint
        )
    return np.asarray(cuts, dtype=np.float64)
