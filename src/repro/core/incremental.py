"""Incremental OPAQ (paper section 4).

"It is easy to use the OPAQ algorithm to deal with new data incrementally.
If the sorted samples are kept from the runs of the old data, one need only
compute the sorted samples from the new runs and merge with the old sorted
samples."

:class:`IncrementalOPAQ` maintains a live :class:`~repro.core.OPAQSummary`
across batches: each :meth:`update` samples only the new data and merges,
so a nightly-ingest pipeline keeps query-ready quantile bounds without ever
re-reading history.
"""

from __future__ import annotations

from typing import Sequence


from repro.core.bounds import QuantileBounds
from repro.core.config import OPAQConfig
from repro.core.estimator import OPAQ
from repro.core.protocols import DataSource
from repro.core.quantile_phase import bounds_for, quantile_bounds
from repro.core.summary import OPAQSummary
from repro.errors import EstimationError

__all__ = ["IncrementalOPAQ"]


class IncrementalOPAQ:
    """Maintains an OPAQ summary over a growing data set."""

    def __init__(self, config: OPAQConfig, max_samples: int | None = None) -> None:
        """``max_samples`` bounds the retained sample list: whenever a
        merge would exceed it, the summary is compacted
        (:meth:`~repro.core.OPAQSummary.compact_to`), trading a
        proportionally looser guarantee for bounded memory — the sensible
        default for a summary that lives for months of ingests."""
        if max_samples is not None and max_samples < 2:
            raise EstimationError("max_samples must be at least 2")
        self.config = config
        self.max_samples = max_samples
        self._estimator = OPAQ(config)
        self._summary: OPAQSummary | None = None
        self._batches = 0

    @property
    def summary(self) -> OPAQSummary:
        """The current summary; raises until the first batch arrives."""
        if self._summary is None:
            raise EstimationError("no data ingested yet")
        return self._summary

    @property
    def count(self) -> int:
        """Total elements ingested so far."""
        return 0 if self._summary is None else self._summary.count

    @property
    def batches(self) -> int:
        """Number of :meth:`update` calls absorbed."""
        return self._batches

    def update(self, batch: DataSource) -> OPAQSummary:
        """Ingest one batch (array, dataset, or run iterable) and merge.

        Only the new batch is read; history is represented solely by the
        retained samples.  Returns the updated summary.
        """
        new = self._estimator.summarize(batch)
        self._summary = new if self._summary is None else self._summary.merge(new)
        if self.max_samples is not None:
            self._summary = self._summary.compact_to(self.max_samples)
        self._batches += 1
        return self._summary

    def summarize(self, source: DataSource) -> OPAQSummary:
        """Ingest ``source`` as one batch and return the merged summary.

        The :class:`~repro.core.QuantileEstimator` spelling of
        :meth:`update` — unlike :meth:`OPAQ.summarize` it *accumulates*:
        the returned summary covers everything ingested so far.
        """
        return self.update(source)

    def bounds(
        self, summary: OPAQSummary, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Quantile bounds from a summary (typically :attr:`summary`)."""
        return bounds_for(summary, phis)

    def bound(self, summary: OPAQSummary, phi: float) -> QuantileBounds:
        """Single-quantile convenience."""
        return quantile_bounds(summary, phi)

    def estimate(
        self, source: DataSource, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Ingest one batch and query the accumulated summary."""
        return self.bounds(self.update(source), phis)

    def guaranteed_rank_error(self) -> int:
        """Current worst-case rank error (grows with batch count: the
        bound is ``~n/s`` per *batch generation*, i.e. proportional to the
        number of runs merged — identical to a single pass that used the
        same run layout)."""
        return self.summary.guaranteed_rank_error()
