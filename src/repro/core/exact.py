"""Exact quantiles with one extra pass (paper section 4).

"The OPAQ algorithm can be extended to find the exact quantile value.  This
will require one extra pass over the data set.  In the extra pass, we keep
the elements which are in the interval [e_l..e_u].  We also count the number
of elements which are less than e_l to find the rank of e_l.  The number of
elements in the interval is at most 2n/s (Lemma 3); the exact value of the
quantile is the element (in the sorted retained list) with rank ψ − R_{e_l}."

This module implements the extension for *many* quantiles in the same extra
pass: the second pass filters each run against all bound windows at once,
so the total cost stays one read of the data plus O(q · 2n/s) retained keys.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.config import OPAQConfig
from repro.core.quantile_phase import bounds_for
from repro.core.sample_phase import build_summary
from repro.core.summary import OPAQSummary
from repro.errors import EstimationError
from repro.storage import DiskDataset, RunReader

__all__ = ["refine_exact", "exact_quantiles"]


def refine_exact(
    runs: Iterable[np.ndarray],
    bounds: Sequence[QuantileBounds],
) -> np.ndarray:
    """Second pass: turn bound pairs into exact quantile values.

    Parameters
    ----------
    runs:
        A fresh iteration over the same data the bounds were computed from
        (the caller provides the second pass; a
        :class:`~repro.storage.RunReader` with ``max_passes=2`` does this
        naturally).
    bounds:
        Bound pairs from the quantile phase.

    Returns
    -------
    numpy.ndarray
        The exact quantile values, one per input bound.
    """
    if not bounds:
        return np.empty(0, dtype=np.float64)
    lowers = np.array([b.lower for b in bounds])
    uppers = np.array([b.upper for b in bounds])
    kept: list[list[np.ndarray]] = [[] for _ in bounds]
    below = np.zeros(len(bounds), dtype=np.int64)
    total = 0
    for run in runs:
        run = np.asarray(run)
        total += run.size
        for k in range(len(bounds)):
            below[k] += int(np.count_nonzero(run < lowers[k]))
            window = run[(run >= lowers[k]) & (run <= uppers[k])]
            if window.size:
                kept[k].append(window)
    values = np.empty(len(bounds), dtype=np.float64)
    for k, b in enumerate(bounds):
        if b.rank > total:
            raise EstimationError(
                f"bound rank {b.rank} exceeds the {total} elements seen in "
                "the refinement pass; did the data change between passes?"
            )
        local_rank = b.rank - int(below[k])  # 1-based rank inside the window
        window = (
            np.sort(np.concatenate(kept[k]))
            if kept[k]
            else np.empty(0, dtype=np.float64)
        )
        if not 1 <= local_rank <= window.size:
            raise EstimationError(
                f"quantile phi={b.phi} fell outside its refinement window "
                f"(rank {local_rank} of {window.size} kept elements); the "
                "second pass must read exactly the data of the first"
            )
        values[k] = window[local_rank - 1]
    return values


def exact_quantiles(
    dataset: DiskDataset,
    phis: Sequence[float],
    config: OPAQConfig,
) -> tuple[np.ndarray, list[QuantileBounds], OPAQSummary]:
    """Two-pass exact quantiles of a disk-resident dataset.

    Pass 1 builds the OPAQ summary and bound pairs; pass 2 refines them to
    exact values.  Returns ``(values, bounds, summary)`` so callers can also
    inspect how tight the one-pass bounds already were.
    """
    config.validate_for(dataset.count)
    reader = RunReader(dataset, run_size=config.run_size, max_passes=2)
    summary = build_summary(reader.runs(), config)
    bounds = bounds_for(summary, phis)
    values = refine_exact(reader.runs(), bounds)
    return values, bounds, summary
