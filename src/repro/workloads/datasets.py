"""Materialising workloads as disk-resident datasets.

Bridges the generators to the storage layer: :func:`write_dataset` streams a
workload to disk in chunks (so paper-scale files never require ``n`` keys in
memory at once), and :func:`dataset_cache` memoises generated files across
experiments — every table in the evaluation reuses the same 1M/5M/10M files,
exactly as a real benchmark run would.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, DataError
from repro.storage import DatasetWriter, DiskDataset
from repro.workloads.generators import KeyGenerator

__all__ = ["write_dataset", "dataset_cache"]

_DEFAULT_CHUNK = 1 << 20


def write_dataset(
    path: str | os.PathLike,
    generator: KeyGenerator,
    n: int,
    seed: int,
    chunk: int = _DEFAULT_CHUNK,
) -> DiskDataset:
    """Generate ``n`` keys and stream them to ``path``.

    The generator is invoked once per chunk with a per-chunk seed derived
    from ``seed``, so memory stays bounded by ``chunk`` regardless of ``n``.
    Chunking changes which keys are duplicated relative to a single
    ``generator.generate(n, seed)`` call, but not the distribution or the
    total duplicate share, which is what the experiments depend on.
    """
    if n <= 0:
        raise ConfigError("n must be positive")
    if chunk <= 0:
        raise ConfigError("chunk must be positive")
    with DatasetWriter(path, dtype=np.float64) as writer:
        remaining = n
        piece = 0
        while remaining > 0:
            size = min(chunk, remaining)
            writer.append(generator.generate(size, seed=hash((seed, piece)) & 0x7FFFFFFF))
            remaining -= size
            piece += 1
    return DiskDataset.open(path)


def dataset_cache(
    cache_dir: str | os.PathLike,
    generator: KeyGenerator,
    n: int,
    seed: int,
) -> DiskDataset:
    """Return a cached on-disk dataset, generating it on first use.

    The cache key encodes the generator's name and parameters, ``n`` and the
    seed; a half-written file (e.g. from an interrupted run) fails
    validation on open and is regenerated.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    params = "_".join(
        f"{k}={getattr(generator, k)}"
        for k in sorted(vars(generator))
        if k != "name"
    )
    fname = f"{generator.name}_{params}_n{n}_seed{seed}.opaq".replace("/", "-")
    path = cache_dir / fname
    if path.exists():
        try:
            return DiskDataset.open(path)
        except (DataError, OSError):
            # A half-written or truncated cache file fails open()'s
            # validation (DataError) or plain I/O (OSError); anything
            # else — a real bug — must propagate, not trigger a silent
            # regeneration loop.
            path.unlink()
    return write_dataset(path, generator, n, seed)
