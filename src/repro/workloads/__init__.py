"""Synthetic workloads reproducing the paper's evaluation data (section 2.4)."""

from repro.workloads.datasets import dataset_cache, write_dataset
from repro.workloads.generators import (
    GENERATOR_NAMES,
    ConstantGenerator,
    FewDistinctGenerator,
    KeyGenerator,
    NormalGenerator,
    SortedGenerator,
    UniformGenerator,
    ZipfGenerator,
    make_generator,
)

__all__ = [
    "KeyGenerator",
    "UniformGenerator",
    "ZipfGenerator",
    "NormalGenerator",
    "SortedGenerator",
    "ConstantGenerator",
    "FewDistinctGenerator",
    "make_generator",
    "GENERATOR_NAMES",
    "write_dataset",
    "dataset_cache",
]
