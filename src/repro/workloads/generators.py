"""Synthetic key generators reproducing the paper's data sets (section 2.4).

The paper evaluates on data sets of 1M/5M/10M keys drawn from either a
uniform distribution or a Zipf distribution with parameter 0.86, with the
number of duplicate keys fixed at ``n/10``.

Two conventions need care:

**Zipf parameter.**  The paper uses the convention common in the parallel
sorting/database literature (e.g. [DNS91]): parameter ``1`` is uniform and
skew *increases as the parameter decreases*, with maximal skew at ``0``.
That is the mirror image of the textbook exponent, so we map
``exponent = 1 - parameter`` and sample frequencies proportional to
``1 / rank**exponent``.

**Duplicates.**  "The number of duplicates for each data set of size n is
set to n/10" — we realise this exactly: every data set is built from
``n - n/10`` *distinct* base keys plus ``n/10`` extra draws from those keys
(uniformly for the uniform workload, Zipf-weighted for the Zipf workload),
then shuffled.  The value *spacing* of the Zipf workload is also skewed
(keys bunch toward the low end of the domain) so that range/histogram
experiments see genuinely skewed value mass, not just skewed multiplicity.

All generators take an explicit seed and are bit-for-bit reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "KeyGenerator",
    "UniformGenerator",
    "ZipfGenerator",
    "NormalGenerator",
    "SortedGenerator",
    "ConstantGenerator",
    "FewDistinctGenerator",
    "make_generator",
    "GENERATOR_NAMES",
]

#: Fraction of the data set that is duplicate keys in the paper's setup.
PAPER_DUPLICATE_FRACTION = 0.1


def _finalize(
    base: np.ndarray,
    n: int,
    weights: np.ndarray | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add the duplicate draws and shuffle.

    ``base`` holds the distinct keys; ``n - base.size`` duplicates are drawn
    from it (with the given weights, or uniformly) and the result is
    shuffled so on-disk order carries no information.
    """
    n_dup = n - base.size
    if n_dup < 0:
        raise ConfigError("base pool larger than requested size")
    if n_dup:
        extra = rng.choice(base, size=n_dup, replace=True, p=weights)
        data = np.concatenate([base, extra])
    else:
        data = base.copy()
    rng.shuffle(data)
    return data


@dataclass(frozen=True)
class KeyGenerator(ABC):
    """A reproducible distribution over keys.

    Subclasses generate ``n`` float64 keys from a seed via
    :meth:`generate`; :attr:`duplicate_fraction` controls the share of
    exact-duplicate keys (the paper uses 0.1).
    """

    duplicate_fraction: float = PAPER_DUPLICATE_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ConfigError("duplicate_fraction must lie in [0, 1)")

    #: Registry name; subclasses override.
    name: str = "abstract"

    def _n_distinct(self, n: int) -> int:
        return n - int(n * self.duplicate_fraction)

    @abstractmethod
    def generate(self, n: int, seed: int) -> np.ndarray:
        """Return ``n`` keys as a float64 array."""


@dataclass(frozen=True)
class UniformGenerator(KeyGenerator):
    """Distinct keys uniform on ``[lo, hi)`` plus uniform duplicate draws."""

    lo: float = 0.0
    hi: float = 1.0e9
    name: str = "uniform"

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        rng = np.random.default_rng(seed)
        base = rng.uniform(self.lo, self.hi, size=self._n_distinct(n))
        return _finalize(base, n, None, rng)


@dataclass(frozen=True)
class ZipfGenerator(KeyGenerator):
    """The paper's Zipf workload (parameter 0.86, paper convention).

    Parameters
    ----------
    parameter:
        Skew knob in the paper's convention: ``1`` is uniform, ``0`` is
        maximally skewed.  Internally ``exponent = 1 - parameter``.
    lo, hi:
        Key domain.  Distinct key *values* are placed at the Zipf CDF grid
        over this domain, so value mass bunches toward ``lo``.
    """

    parameter: float = 0.86
    lo: float = 0.0
    hi: float = 1.0e9
    name: str = "zipf"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.parameter <= 1.0:
            raise ConfigError(
                "zipf parameter must lie in [0, 1] "
                "(1 = uniform, 0 = maximal skew; the paper uses 0.86)"
            )

    @property
    def exponent(self) -> float:
        """Textbook Zipf exponent ``1 - parameter``."""
        return 1.0 - self.parameter

    def _weights(self, k: int) -> np.ndarray:
        ranks = np.arange(1, k + 1, dtype=np.float64)
        w = ranks ** (-self.exponent)
        return w / w.sum()

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        rng = np.random.default_rng(seed)
        k = self._n_distinct(n)
        weights = self._weights(k)
        # Distinct key values at the complementary Zipf CDF grid:
        # key_i = lo + span*(1 - CDF(i)).  Consecutive keys are spaced by
        # their rank's probability, so the *tail* ranks (tiny weights) pack
        # tightly near ``lo`` — the value mass concentrates at the low end,
        # increasingly so as the parameter drops.
        cdf = np.cumsum(weights)
        base = self.lo + (self.hi - self.lo) * (1.0 - cdf)
        np.clip(base, self.lo, self.hi, out=base)
        return _finalize(base, n, weights, rng)


@dataclass(frozen=True)
class NormalGenerator(KeyGenerator):
    """Gaussian keys — a robustness workload beyond the paper's two."""

    mean: float = 0.0
    std: float = 1.0
    name: str = "normal"

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        rng = np.random.default_rng(seed)
        base = rng.normal(self.mean, self.std, size=self._n_distinct(n))
        return _finalize(base, n, None, rng)


@dataclass(frozen=True)
class SortedGenerator(KeyGenerator):
    """Already-sorted (or reverse-sorted) keys — adversarial run structure.

    Every run covers a disjoint slice of the value range, the worst case for
    interval/histogram methods and a good stress test for OPAQ's
    distribution independence.
    """

    descending: bool = False
    name: str = "sorted"

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        rng = np.random.default_rng(seed)
        base = np.sort(rng.uniform(0.0, 1.0e9, size=self._n_distinct(n)))
        n_dup = n - base.size
        if n_dup:
            positions = np.sort(rng.integers(0, base.size, size=n_dup))
            data = np.sort(np.concatenate([base, base[positions]]))
        else:
            data = base
        return data[::-1].copy() if self.descending else data


@dataclass(frozen=True)
class ConstantGenerator(KeyGenerator):
    """All keys equal — the degenerate extreme of duplication."""

    value: float = 42.0
    name: str = "constant"

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        return np.full(n, self.value, dtype=np.float64)


@dataclass(frozen=True)
class FewDistinctGenerator(KeyGenerator):
    """Only ``k`` distinct values — heavy-tie stress for rank arithmetic."""

    k: int = 16
    name: str = "few_distinct"

    def generate(self, n: int, seed: int) -> np.ndarray:
        if n <= 0:
            raise ConfigError("n must be positive")
        if self.k <= 0:
            raise ConfigError("k must be positive")
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 1.0e9, size=self.k)
        return values[rng.integers(0, self.k, size=n)]


_REGISTRY = {
    cls.name: cls
    for cls in (
        UniformGenerator,
        ZipfGenerator,
        NormalGenerator,
        SortedGenerator,
        ConstantGenerator,
        FewDistinctGenerator,
    )
}

GENERATOR_NAMES = tuple(sorted(_REGISTRY))


def make_generator(name: str, **kwargs) -> KeyGenerator:
    """Construct a generator from its registry name.

    >>> make_generator("zipf", parameter=0.86).name
    'zipf'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown generator {name!r}; choose from {GENERATOR_NAMES}"
        ) from None
    return cls(**kwargs)
