"""repro.obs — structured observability for the OPAQ pipeline.

The paper's entire evaluation is an observability exercise: per-phase
time breakdown, I/O fraction, and message counts on the SP-2 (section 5,
Tables 8-12).  This package makes every run of the repro watchable the
same way — span-based phase timers, storage/selection/SPMD counters, and
pluggable sinks — while keeping the un-observed path zero-cost and the
event stream deterministic (durations aside), so the counters double as
a correctness oracle against the paper's analytic cost model.

Quick tour::

    from repro import OPAQ, OPAQConfig
    from repro.obs import MemorySink, tracing

    sink = MemorySink()
    with tracing(sink):
        OPAQ(OPAQConfig(run_size=10_000, sample_size=100)).estimate(data, [0.5])

    sink.counter_total("io.elements")   # == data.size for disk sources
    sink.spans("phase.sample")          # the one-pass wall time

From the command line: ``opaq run data.opaq --metrics-out m.json`` and
``opaq experiment table12 --trace`` (``--trace`` prints the collected
spans and counters; ``--metrics-out FILE`` writes the aggregate JSON
document).  The event vocabulary and JSON-lines schema are documented
in ``docs/api.md``.
"""

from repro.obs.aggregate import aggregate, io_fraction, phase_seconds, write_metrics
from repro.obs.events import Event
from repro.obs.sink import JsonlSink, MemorySink, NullSink, Sink, TeeSink
from repro.obs.trace import Tracer, current_tracer, tracing

__all__ = [
    "Event",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "Tracer",
    "current_tracer",
    "tracing",
    "aggregate",
    "phase_seconds",
    "io_fraction",
    "write_metrics",
]
