"""Pluggable sinks: where emitted events go.

The :class:`Sink` protocol is a single method, ``emit(event)``.  Four
implementations cover the needs of the repro:

- :class:`NullSink` — discards everything; backs the disabled tracer so
  the un-observed hot path stays free of work.
- :class:`MemorySink` — collects events in order, with small aggregation
  helpers; what the tests and the experiments harness use.
- :class:`JsonlSink` — streams events as JSON lines to a file, one
  object per line (the ``opaq run --trace FILE`` format).
- :class:`TeeSink` — fans one event stream out to several sinks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.obs.events import Event

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "TeeSink"]


@runtime_checkable
class Sink(Protocol):
    """Receives every event a :class:`~repro.obs.Tracer` emits."""

    def emit(self, event: Event) -> None:
        """Accept one event.  Must not raise on well-formed events."""
        ...  # pragma: no cover - protocol body


class NullSink:
    """Discards every event (the disabled default)."""

    __slots__ = ()

    def emit(self, event: Event) -> None:
        """Drop the event."""


class MemorySink:
    """Collects events in emission order, with aggregation helpers."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        """Append the event."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def counters(self) -> dict[str, int | float]:
        """Counter name -> summed value over every counter event."""
        acc: dict[str, int | float] = {}
        for e in self.events:
            if e.kind == "counter" and e.value is not None:
                acc[e.name] = acc.get(e.name, 0) + e.value
        return acc

    def counter_total(self, name: str) -> int | float:
        """Summed value of one counter (0 when never emitted)."""
        return self.counters().get(name, 0)

    def spans(self, name: str | None = None) -> list[Event]:
        """Span events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == "span" and (name is None or e.name == name)
        ]

    def signatures(self) -> list[tuple[object, ...]]:
        """Deterministic identities of the whole stream, in order."""
        return [e.signature() for e in self.events]


class JsonlSink:
    """Writes events as JSON lines to a path or an open text stream."""

    __slots__ = ("_stream", "_owns", "count")

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(  # opaq: transfer[self._stream] sink owns it; released in close()
                target, "w", encoding="utf-8"
            )
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self.count = 0

    def emit(self, event: Event) -> None:
        """Write one JSON object line."""
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self.count += 1

    def close(self) -> None:
        """Flush, and close the stream if this sink opened it."""
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class TeeSink:
    """Forwards every event to each of several sinks, in order."""

    __slots__ = ("sinks",)

    def __init__(self, *sinks: Sink) -> None:
        if not sinks:
            raise ConfigError("TeeSink needs at least one sink")
        self.sinks: tuple[Sink, ...] = sinks

    def emit(self, event: Event) -> None:
        """Forward to every sink."""
        for sink in self.sinks:
            sink.emit(event)


def _iter_events(events: "Iterable[Event] | MemorySink") -> Iterable[Event]:
    """Accept either a raw event iterable or a MemorySink."""
    return events.events if isinstance(events, MemorySink) else events
