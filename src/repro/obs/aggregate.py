"""Turning an event stream into the paper's tables and a metrics file.

The raw stream (spans + counters) is the ground truth; these helpers
reduce it to the three shapes the repro needs:

- :func:`aggregate` — the ``opaq run --metrics-out`` JSON document:
  span totals, counter totals, and the simulated per-phase seconds.
- :func:`phase_seconds` — the SPMD phase breakdown (paper Table 12's
  raw material), read from the ``spmd.phase_seconds`` counters that
  :class:`~repro.parallel.ParallelOPAQ` emits.
- :func:`io_fraction` — the paper's Table 11 number, derived from the
  same events.

Everything here consumes events only — no timers, no machine handles —
so the experiments harness reproduces the phase-breakdown and
I/O-fraction tables *from the emitted stream*, which is exactly what a
production deployment of the estimator would have to work from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.events import Event
from repro.obs.sink import MemorySink, _iter_events

__all__ = ["aggregate", "phase_seconds", "io_fraction", "write_metrics"]

#: Version tag of the metrics document / JSON-lines schema.
SCHEMA = "repro.obs/v1"


def phase_seconds(events: "Iterable[Event] | MemorySink") -> dict[str, float]:
    """Simulated seconds per SPMD phase, from ``spmd.phase_seconds``.

    The values are mean-per-processor simulated times (what
    ``SimulatedMachine.phase_totals`` reports and ``ParallelOPAQ`` emits);
    they are deterministic, coming from the two-level cost model rather
    than any wall clock.
    """
    phases: dict[str, float] = {}
    for e in _iter_events(events):
        if e.kind != "counter" or e.name != "spmd.phase_seconds":
            continue
        phase = str(e.attributes.get("phase", "unknown"))
        phases[phase] = phases.get(phase, 0.0) + float(e.value or 0.0)
    return phases


def io_fraction(events: "Iterable[Event] | MemorySink") -> float:
    """Fraction of simulated time spent in I/O (paper Table 11)."""
    phases = phase_seconds(events)
    total = sum(phases.values())
    return phases.get("io", 0.0) / total if total else 0.0


def aggregate(events: "Iterable[Event] | MemorySink") -> dict[str, object]:
    """Reduce an event stream to the metrics document.

    Returns a JSON-serialisable dict::

        {
          "schema": "repro.obs/v1",
          "spans": {"phase.sample": {"count": 1, "seconds": 0.0123}, ...},
          "counters": {"io.elements": 100000, "io.bytes": 800000, ...},
          "spmd_phases": {"io": 1.7, "sampling": 1.5, ...},
        }

    Span seconds are wall time (nondeterministic, for humans); counters
    and spmd_phases are deterministic and safe to assert on.
    """
    spans: dict[str, dict[str, float]] = {}
    counters: dict[str, int | float] = {}
    for e in _iter_events(events):
        if e.kind == "span":
            agg = spans.setdefault(e.name, {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += e.duration or 0.0
        elif e.kind == "counter" and e.value is not None:
            counters[e.name] = counters.get(e.name, 0) + e.value
    doc: dict[str, object] = {
        "schema": SCHEMA,
        "spans": spans,
        "counters": counters,
    }
    phases = phase_seconds(events)
    if phases:
        doc["spmd_phases"] = phases
    return doc


def write_metrics(
    path: str | Path, events: "Iterable[Event] | MemorySink"
) -> dict[str, object]:
    """Aggregate and write the metrics document; returns it too."""
    doc = aggregate(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
