"""The tracer: spans and counters, with a zero-cost disabled path.

Instrumented layers never hold a tracer; they ask for the ambient one::

    from repro.obs import current_tracer

    tracer = current_tracer()
    with tracer.span("phase.sample"):
        ...
    tracer.count("io.run", run.size, bytes=run.size * 8)

With no sink configured, :func:`current_tracer` returns a shared disabled
tracer whose :meth:`~Tracer.span` hands back one preallocated no-op
context manager and whose :meth:`~Tracer.count` returns immediately — the
disabled path allocates nothing and reads no clock, so instrumentation
costs one attribute check where it is threaded through.

Observability is switched on for a scope with :func:`tracing`::

    from repro.obs import MemorySink, tracing

    with tracing(MemorySink()) as sink_tracer:
        OPAQ(config).summarize(data)

Durations come from :func:`time.perf_counter` — the sanctioned monotonic
timer for *reporting* (see ``docs/static_analysis.md`` on OPQ301): no
result or modelled time ever depends on it, and the wall-clock read lives
here in ``repro.obs``, outside the deterministic ``core``/``selection``/
``parallel`` layers that opaqlint guards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from types import TracebackType
from typing import Iterator

from repro.obs.events import Event
from repro.obs.sink import NullSink, Sink

__all__ = ["Tracer", "current_tracer", "tracing"]


class _NullSpan:
    """The shared no-op span of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures wall time, emits one event on exit."""

    __slots__ = ("_sink", "_name", "_attrs", "_t0")

    def __init__(
        self,
        sink: Sink,
        name: str,
        attrs: tuple[tuple[str, str | int | float], ...],
    ) -> None:
        self._sink = sink
        self._name = name
        self._attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._sink.emit(
            Event(
                kind="span",
                name=self._name,
                duration=time.perf_counter() - self._t0,
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Emits spans and counters into a :class:`~repro.obs.Sink`.

    ``enabled`` is the single flag instrumented code may branch on to
    skip preparing event payloads (e.g. the selection counters only
    allocate their accumulator when a tracer is live).
    """

    __slots__ = ("sink", "enabled")

    def __init__(self, sink: Sink, enabled: bool = True) -> None:
        self.sink = sink
        self.enabled = enabled

    def span(
        self, name: str, **attrs: str | int | float
    ) -> "_Span | _NullSpan":
        """Context manager timing one phase; emits on exit."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self.sink, name, tuple(sorted(attrs.items())))

    def record_span(
        self, name: str, seconds: float, **attrs: str | int | float
    ) -> None:
        """Emit a span whose duration was measured externally.

        Used by the real execution backends: a worker may run in a forked
        process whose ambient tracer cannot reach this sink, so it measures
        its phase with ``time.perf_counter`` and returns the seconds for
        the driver to record.  The duration is the event's only
        nondeterministic field, exactly as for live spans; the attributes
        (rank, phase, backend) stay deterministic.
        """
        if not self.enabled:
            return
        self.sink.emit(
            Event(
                kind="span",
                name=name,
                duration=seconds,
                attrs=tuple(sorted(attrs.items())),
            )
        )

    def count(
        self, name: str, value: int | float = 1, **attrs: str | int | float
    ) -> None:
        """Emit one counter event (a no-op when disabled)."""
        if not self.enabled:
            return
        self.sink.emit(
            Event(
                kind="counter",
                name=name,
                value=value,
                attrs=tuple(sorted(attrs.items())),
            )
        )


#: The shared disabled tracer: no sink work, no clock reads, no events.
_DISABLED = Tracer(NullSink(), enabled=False)

_current: Tracer = _DISABLED


def current_tracer() -> Tracer:
    """The ambient tracer (the disabled singleton unless inside
    :func:`tracing`)."""
    return _current


def _reset_to_disabled() -> None:
    """Detach the ambient tracer in a worker process.

    A forked child inherits the parent's tracer object, but the sink
    behind it is process-local state (a memory buffer the parent will
    never see, or a file descriptor that ``p`` children would interleave
    half-lines into).  Process-backend workers call this first thing so
    their instrumentation takes the zero-cost disabled path; measured
    timings travel back to the parent by value instead.
    """
    global _current
    _current = _DISABLED


@contextmanager
def tracing(sink: Sink) -> Iterator[Tracer]:
    """Route instrumentation into ``sink`` for the enclosed scope.

    Scopes nest *additively*: entering a tracing scope while another is
    active tees every event to both the new sink and the enclosing one
    (so e.g. ``opaq experiment --metrics-out`` still captures the events
    of an experiment that traces its own sub-runs internally).  Leaving a
    scope restores the previous tracer (the disabled singleton at the
    outermost level).  The tracer is process-global, so concurrent
    threads share whatever scope is active — fine for the repro's
    single-threaded pipelines, and the deliberate choice that keeps the
    disabled path a single attribute check.
    """
    from repro.obs.sink import TeeSink

    global _current
    previous = _current
    effective = TeeSink(sink, previous.sink) if previous.enabled else sink
    _current = Tracer(effective)
    try:
        yield _current
    finally:
        _current = previous
