"""The event vocabulary of the observability layer.

One event type covers everything the instrumentation emits:

- ``kind="span"`` — a timed phase (sample phase, one multiselect, the
  k-way merge, the quantile phase).  ``duration`` carries wall seconds
  from :func:`time.perf_counter` and is the **only** nondeterministic
  field: replaying a run with the same seed and configuration reproduces
  every event bit-for-bit except durations (the trace-determinism tests
  assert exactly this via :meth:`Event.signature`).
- ``kind="counter"`` — a named quantity (elements read, bytes read,
  comparisons, SPMD messages, simulated seconds).  Counter values derive
  only from the data and the configuration, so they are deterministic
  and serve as a correctness oracle against the paper's analytic cost
  model.

Events serialise to JSON lines via :meth:`Event.to_dict`; the schema is
documented in ``docs/api.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event", "AttrValue", "Attrs"]

#: Attribute values are restricted to JSON scalars so every sink can
#: serialise without a fallback path.
AttrValue = "str | int | float"

#: Attributes travel as a sorted tuple of pairs — hashable, so events can
#: be compared and deduplicated — rather than a dict.
Attrs = "tuple[tuple[str, str | int | float], ...]"


@dataclass(frozen=True)
class Event:
    """One observation: a completed span or a counter increment.

    Parameters
    ----------
    kind:
        ``"span"`` or ``"counter"``.
    name:
        Dotted event name, e.g. ``"phase.sample"`` or ``"io.run"``.
    value:
        Counter value (elements, bytes, messages, simulated seconds...).
        Always deterministic.  ``None`` for spans.
    duration:
        Span wall-clock seconds.  The only nondeterministic field;
        ``None`` for counters.
    attrs:
        Sorted ``(key, value)`` pairs of deterministic context (sizes,
        engine names, phase labels).
    """

    kind: str
    name: str
    value: int | float | None = None
    duration: float | None = None
    attrs: tuple[tuple[str, str | int | float], ...] = ()

    def signature(self) -> tuple[object, ...]:
        """Everything except the duration — the deterministic identity.

        Two runs with the same seed and configuration must produce
        identical signature streams (same events, same order, same
        values); only ``duration`` may differ.
        """
        return (self.kind, self.name, self.value, self.attrs)

    @property
    def attributes(self) -> dict[str, str | int | float]:
        """The attribute pairs as a plain dict."""
        return dict(self.attrs)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (one object per JSON line)."""
        out: dict[str, object] = {"kind": self.kind, "name": self.name}
        if self.value is not None:
            out["value"] = self.value
        if self.duration is not None:
            out["duration_s"] = self.duration
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out
