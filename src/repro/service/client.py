"""The service client: batched, transport-agnostic, dependency-free.

One :class:`ServiceClient` speaks both wire generations, chosen by the
address scheme:

* ``opaq://host:port`` — protocol v3, the framed binary transport of
  :mod:`repro.service.proto` over one persistent TCP socket.  Arrays
  travel as raw bytes; per-request cost is a 12-byte header.
* ``http://host:port`` — the JSON/HTTP compatibility transport
  (:mod:`repro.service.http`), kept for curl-ability and for peers that
  have not upgraded.

The API is array-in/array-out::

    with ServiceClient("opaq://127.0.0.1:9474") as client:
        client.ingest(np.random.default_rng(0).normal(size=100_000))
        client.snapshot()
        vec = client.quantiles([0.25, 0.5, 0.75, 0.99])
        vec.lower, vec.upper, vec.guarantee

The deprecation cycle for the protocol v1 spellings is complete: scalar
``ingest(x)`` and the dict-returning ``quantile(phis)`` were removed
after one release of :class:`DeprecationWarning` — pass an array to
``ingest`` and call ``quantiles`` (``.to_dict()`` recovers the old
shape).  See ``docs/api.md``.

Keyed (multi-tenant) calls ride the same transports:
``ingest_keyed({(tenant, metric): values, ...})`` and
``quantiles_keyed([(tenant, metric), ...], phis)``, with ``"*"``
selecting server-side rollups — see ``docs/service.md``.

Server-side failures arrive as their typed repro exceptions
(:class:`~repro.errors.DataError` and friends, re-raised by
:func:`~repro.service.proto.raise_remote_error`); transport failures are
:class:`~repro.errors.ServiceError`.  After a transport failure the
binary socket is dropped and the next call reconnects.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ConfigError, DataError, ServiceError
from repro.service import proto
from repro.service.proto import QuantileVector
from repro.service.tenancy.keys import compose_key, split_key
from repro.service.tenancy.registry import KeyAnswer

__all__ = ["ServiceClient"]

#: One keyed ingest call's input: a mapping from ``(tenant, metric)``
#: to that key's values, or a sequence of ``(tenant, metric, values)``.
KeyedBatches = (
    Mapping[tuple[str, str], "np.ndarray | Sequence[float]"]
    | Sequence[tuple[str, str, "np.ndarray | Sequence[float]"]]
)


def _as_batch(values: Any) -> np.ndarray:
    """Coerce ingest input to a 1-D float64 array."""
    if isinstance(values, (int, float)):
        # Scalar ingest completed its deprecation cycle (one release of
        # DeprecationWarning); per-element calls are exactly the
        # per-request overhead the batched API exists to amortise.
        raise DataError(
            "scalar ingest(x) was removed; pass a batched np.ndarray "
            "(ingest(np.asarray([x])))"
        )
    try:
        arr = np.ascontiguousarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataError(f"ingest batch is not numeric: {exc}") from None
    if arr.ndim != 1:
        raise DataError("ingest batches must be one-dimensional")
    return arr


def _as_phis(phis: Any) -> np.ndarray:
    try:
        arr = np.ascontiguousarray(phis, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataError(f"unparseable quantile fractions: {exc}") from None
    if arr.ndim != 1:
        raise DataError("pass quantile fractions as a one-dimensional vector")
    return arr


def _as_keyed_frame(
    batches: KeyedBatches,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Flatten keyed batches into the wire frame (keys, counts, values)."""
    if isinstance(batches, Mapping):
        items = [(t, m, v) for (t, m), v in batches.items()]
    else:
        items = [(t, m, v) for t, m, v in batches]
    keys = [compose_key(tenant, metric) for tenant, metric, _ in items]
    arrays = [_as_batch(values) for _, _, values in items]
    counts = np.array([a.size for a in arrays], dtype=np.int64)
    values = (
        np.concatenate(arrays) if arrays else np.empty(0, dtype=np.float64)
    )
    return keys, counts, values


def _composite_pairs(pairs: Sequence[tuple[str, str]]) -> list[str]:
    return [compose_key(tenant, metric) for tenant, metric in pairs]


# ----------------------------------------------------------------------
# Binary transport (protocol v3)
# ----------------------------------------------------------------------


class _BinaryTransport:
    """One persistent socket speaking framed protocol v3."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buf = bytearray()  # bytes received but not yet consumed

    # -- socket plumbing ----------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                # A client (and its socket) belongs to one caller at a
                # time; share work across threads with one client each.
                self._sock = socket.create_connection(  # opaq: ignore[thread-unguarded-write] single-owner client
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach opaq://{self.host}:{self.port}: {exc}"
                ) from None
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None  # opaq: ignore[thread-unguarded-write] single-owner client
        self._buf.clear()  # opaq: ignore[thread-unguarded-write] single-owner client

    def _recv_exactly(self, sock: socket.socket, n: int) -> bytes:
        # Buffered: each recv pulls as much as the kernel has ready, and
        # framing consumes from the buffer — pipelined replies then cost
        # ~one syscall per socket buffer instead of two per frame.
        while len(self._buf) < n:
            try:
                chunk = sock.recv(1 << 20)
            except socket.timeout:
                raise ServiceError(
                    f"server did not reply within {self.timeout:g}s"
                ) from None
            except OSError as exc:
                raise ServiceError(f"connection failed mid-read: {exc}") from None
            if not chunk:
                raise ServiceError(
                    "server closed the connection mid-frame "
                    f"({len(self._buf)} of {n} bytes)"
                )
            self._buf.extend(chunk)  # opaq: ignore[thread-unguarded-write] single-owner client
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    # -- framing -------------------------------------------------------

    def _send_frames(self, frames: list[bytes]) -> None:
        sock = self._connect()
        try:
            sock.sendall(b"".join(frames))
        except OSError as exc:
            self.close()
            raise ServiceError(f"connection failed mid-write: {exc}") from None

    def _read_reply(self, expect_opcode: int) -> bytes:
        sock = self._connect()
        try:
            header = self._recv_exactly(sock, proto.HEADER.size)
            opcode, length = proto.parse_header(header)
            payload = self._recv_exactly(sock, length)
        except (ServiceError, DataError):
            self.close()  # stream desync: force a fresh connection
            raise
        if opcode == proto.ERROR_OP:
            proto.raise_remote_error(payload)
        if opcode != (expect_opcode | proto.REPLY_BIT):
            self.close()
            raise ServiceError(
                f"out-of-order reply: opcode {opcode:#x} while awaiting "
                f"{expect_opcode | proto.REPLY_BIT:#x}"
            )
        return payload

    def request(self, opcode: int, payload: bytes = b"") -> bytes:
        self._send_frames([proto.encode_frame(opcode, payload)])
        return self._read_reply(opcode)

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        self.request(proto.Op.PING)
        return True

    def ingest(self, values: np.ndarray) -> dict[str, int]:
        reply = self.request(
            proto.Op.INGEST, proto.encode_ingest_request(values)
        )
        return proto.decode_ingest_reply(reply)

    def quantiles(self, phis: np.ndarray) -> QuantileVector:
        reply = self.request(
            proto.Op.QUANTILES, proto.encode_quantiles_request(phis)
        )
        return proto.decode_quantiles_reply(reply)

    def quantiles_many(
        self, phi_vectors: list[np.ndarray]
    ) -> list[QuantileVector]:
        """Pipelined queries: all request frames, then all replies.

        The server answers frames in order, so K requests cost one
        round-trip of latency instead of K — the batched-throughput mode
        the service benchmark measures.
        """
        self._send_frames(
            [
                proto.encode_frame(
                    proto.Op.QUANTILES, proto.encode_quantiles_request(phis)
                )
                for phis in phi_vectors
            ]
        )
        return [
            proto.decode_quantiles_reply(self._read_reply(proto.Op.QUANTILES))
            for _ in phi_vectors
        ]

    def ingest_keyed(
        self, keys: list[str], counts: np.ndarray, values: np.ndarray
    ) -> dict[str, int]:
        reply = self.request(
            proto.Op.INGEST_KEYED,
            proto.encode_ingest_keyed_request(keys, counts, values),
        )
        return proto.decode_ingest_keyed_reply(reply)

    def quantiles_keyed(
        self, keys: list[str], phis: np.ndarray
    ) -> list[KeyAnswer]:
        reply = self.request(
            proto.Op.QUANTILES_KEYED,
            proto.encode_quantiles_keyed_request(keys, phis),
        )
        return proto.decode_quantiles_keyed_reply(reply)

    def snapshot(self) -> dict[str, int]:
        return proto.decode_snapshot_reply(self.request(proto.Op.SNAPSHOT))

    def stats(self) -> dict[str, Any]:
        return proto.decode_stats_reply(self.request(proto.Op.STATS))


# ----------------------------------------------------------------------
# HTTP transport (protocol v1 compatibility)
# ----------------------------------------------------------------------


class _HttpTransport:
    """urllib against the JSON/HTTP layer; answers re-shaped to arrays."""

    def __init__(self, base_url: str, timeout: float) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def close(self) -> None:
        pass  # urllib opens one connection per request

    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=None if payload is None else json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return dict(json.loads(resp.read()))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: {message}"
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    def ping(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def ingest(self, values: np.ndarray) -> dict[str, int]:
        reply = self._request("POST", "/ingest", {"values": values.tolist()})
        return {"accepted": int(reply["accepted"]), "epoch": int(reply["epoch"])}

    def quantiles(self, phis: np.ndarray) -> QuantileVector:
        reply = self._request("POST", "/quantile", {"phis": phis.tolist()})
        rows = reply.get("results", [])
        # JSON round-trips float64 exactly (repr-based), so rebuilding
        # the arrays here is bit-identical to the binary transport.
        return QuantileVector(
            epoch=int(reply["epoch"]),
            count=int(reply["count"]),
            guarantee=int(reply["guarantee"]),
            staleness=int(reply["staleness"]),
            phis=np.array([r["phi"] for r in rows], dtype=np.float64),
            ranks=np.array([r["rank"] for r in rows], dtype=np.int64),
            lower=np.array([r["lower"] for r in rows], dtype=np.float64),
            upper=np.array([r["upper"] for r in rows], dtype=np.float64),
            max_below=np.array([r["max_below"] for r in rows], dtype=np.int64),
            max_above=np.array([r["max_above"] for r in rows], dtype=np.int64),
        )

    def quantiles_many(
        self, phi_vectors: list[np.ndarray]
    ) -> list[QuantileVector]:
        # HTTP/1.1 request/response cannot pipeline here: sequential.
        return [self.quantiles(phis) for phis in phi_vectors]

    def ingest_keyed(
        self, keys: list[str], counts: np.ndarray, values: np.ndarray
    ) -> dict[str, int]:
        reply = self._request(
            "POST",
            "/ingest_keyed",
            {
                "keys": [list(split_key(key)) for key in keys],
                "counts": np.asarray(counts).tolist(),
                "values": np.asarray(values).tolist(),
            },
        )
        return {"elements": int(reply["elements"]), "keys": int(reply["keys"])}

    def quantiles_keyed(
        self, keys: list[str], phis: np.ndarray
    ) -> list[KeyAnswer]:
        reply = self._request(
            "POST",
            "/quantile_keyed",
            {
                "keys": [list(split_key(key)) for key in keys],
                "phis": phis.tolist(),
            },
        )
        answers = reply.get("answers", [])
        # JSON round-trips float64 exactly, so these answers are
        # bit-identical to the binary transport's.
        return [
            KeyAnswer(
                tenant=str(a["tenant"]),
                metric=str(a["metric"]),
                source=str(a["source"]),
                count=int(a["count"]),
                guarantee=int(a["guarantee"]),
                epsilon_bound=float(a["epsilon_bound"]),
                compactions=int(a["compactions"]),
                phis=np.array(a["phis"], dtype=np.float64),
                psi=np.array(a["psi"], dtype=np.int64),
                lower=np.array(a["lower"], dtype=np.float64),
                upper=np.array(a["upper"], dtype=np.float64),
                max_below=np.array(a["max_below"], dtype=np.int64),
                max_above=np.array(a["max_above"], dtype=np.int64),
            )
            for a in answers
        ]

    def snapshot(self) -> dict[str, int]:
        reply = self._request("POST", "/snapshot")
        return {key: int(reply[key]) for key in ("epoch", "count", "guarantee", "samples")}

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")


# ----------------------------------------------------------------------
# The public client
# ----------------------------------------------------------------------


class ServiceClient:
    """Batched client for the quantile service (binary or HTTP wire)."""

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlparse(address)
        if parsed.scheme == "opaq":
            if parsed.hostname is None or parsed.port is None:
                raise ConfigError(
                    f"binary addresses need host and port: {address!r} "
                    "(expected opaq://host:port)"
                )
            self._transport: _BinaryTransport | _HttpTransport = (
                _BinaryTransport(parsed.hostname, parsed.port, timeout)
            )
        elif parsed.scheme in ("http", "https"):
            self._transport = _HttpTransport(address, timeout)
        else:
            raise ConfigError(
                f"unknown service address scheme {parsed.scheme!r} in "
                f"{address!r}: use opaq://host:port (binary protocol v3) "
                "or http://host:port (compatibility)"
            )
        self.address = address
        self.timeout = timeout

    # -- primary API (array-in / array-out) ---------------------------

    def ingest(
        self, values: Sequence[float] | np.ndarray
    ) -> dict[str, int]:
        """Send one batch; returns ``{"accepted": n, "epoch": current}``.

        Pass a 1-D array (or numeric sequence).  Scalar input was
        removed after its deprecation cycle — per-element calls are
        exactly the per-request overhead the batched API amortises.
        """
        return self._transport.ingest(_as_batch(values))

    def ingest_keyed(self, batches: KeyedBatches) -> dict[str, int]:
        """Send one multi-tenant frame; returns ``{"elements", "keys"}``.

        ``batches`` maps ``(tenant, metric)`` pairs to value arrays (or
        is a sequence of ``(tenant, metric, values)`` triples).  The
        whole frame travels as one request — composite keys, per-key
        counts and the concatenated values — and lands in the server's
        :class:`~repro.service.tenancy.SummaryRegistry` under its global
        memory budget.  Keyed data is independent of the unkeyed epoch
        stream.
        """
        keys, counts, values = _as_keyed_frame(batches)
        return self._transport.ingest_keyed(keys, counts, values)

    def quantiles_keyed(
        self,
        pairs: Sequence[tuple[str, str]],
        phis: Sequence[float] | np.ndarray,
    ) -> list[KeyAnswer]:
        """One :class:`~repro.service.tenancy.KeyAnswer` per key pair.

        Each answer carries its own ``count``/``guarantee``/
        ``epsilon_bound`` and provenance (``resident``, ``restored``, or
        a rollup).  Pass ``("*", metric)`` for a cross-tenant metric
        rollup and ``("*", "*")`` for the global rollup — served from
        the aggregation tree without touching cold keys.
        """
        return self._transport.quantiles_keyed(
            _composite_pairs(pairs), _as_phis(phis)
        )

    def quantiles(
        self, phis: Sequence[float] | np.ndarray
    ) -> QuantileVector:
        """Answer a whole φ-vector in one round-trip.

        Returns the wire-native :class:`~repro.service.QuantileVector`
        (parallel arrays plus epoch/count/guarantee/staleness);
        ``.to_dict()`` recovers the legacy JSON row shape.
        """
        return self._transport.quantiles(_as_phis(phis))

    def quantiles_many(
        self, phi_vectors: Sequence[Sequence[float] | np.ndarray]
    ) -> list[QuantileVector]:
        """Many φ-vectors, pipelined on the binary transport."""
        return self._transport.quantiles_many(
            [_as_phis(phis) for phis in phi_vectors]
        )

    def snapshot(self) -> dict[str, int]:
        """Advance one epoch; returns epoch/count/guarantee/samples."""
        return self._transport.snapshot()

    def stats(self) -> dict[str, Any]:
        """The service's operational counters."""
        return self._transport.stats()

    def health(self) -> bool:
        """Liveness: one PING (binary) or ``GET /healthz`` (HTTP)."""
        return self._transport.ping()

    def close(self) -> None:
        """Drop the transport connection (reconnects on next call)."""
        self._transport.close()

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
