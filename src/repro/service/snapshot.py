"""Epoch snapshots: merge, swap, persist, warm-restart.

The serving subsystem separates *ingest state* (per-shard incremental
summaries, written only by their worker threads) from *query state* (one
merged, compacted, immutable :class:`~repro.core.OPAQSummary` per epoch).
The :class:`Snapshotter` advances epochs: it barriers every shard (fold
everything submitted so far), merges the shard summaries **in shard-id
order** (deterministic; the merge algebra is order-insensitive for the
served bounds, but fixing the order makes snapshots byte-stable too),
optionally compacts to a memory bound, and swaps the new epoch in under
the swap lock (lint rule OPQ602).  Readers never take that lock — they
read the current epoch reference, which CPython swaps atomically.

Epochs are numbered densely from 1 and advance on *data volume*, never on
wall time, so a replayed ingest schedule reproduces identical epochs.

:class:`SnapshotStore` persists each epoch as a versioned summary file
plus a ``LATEST.json`` manifest (written atomically via rename), and a
restarted service warm-restarts from the newest manifest: queries answer
identically before and after the restart.
"""

from __future__ import annotations

import functools
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.summary import OPAQSummary
from repro.errors import DataError, EstimationError
from repro.obs import current_tracer
from repro.service.shard import ShardWorker

__all__ = ["EpochSnapshot", "SnapshotStore", "Snapshotter"]

#: Manifest file format: bump when the layout changes.
_MANIFEST_MAGIC = "OPAQSNAP"
_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class EpochSnapshot:
    """One served epoch: an immutable merged summary plus bookkeeping."""

    epoch: int
    summary: OPAQSummary

    @property
    def count(self) -> int:
        """Elements covered by this epoch."""
        return self.summary.count

    @functools.cached_property
    def guarantee(self) -> int:
        """Worst-case rank distance of either served bound from the truth
        (the paper's ``n/s``, recomputed exactly for the merged run
        layout; ``2×`` this bounds the elements between the bounds).

        Cached: the summary is immutable once the epoch is published, and
        the reduction over its bookkeeping arrays is pure query-path
        overhead if repeated per request.
        """
        return self.summary.guaranteed_rank_error()


class SnapshotStore:
    """Directory-backed persistence of epoch snapshots.

    Layout::

        <dir>/epoch-00000007.npz   # OPAQSummary.save payload (versioned)
        <dir>/LATEST.json          # atomic manifest -> newest epoch

    The manifest is written to a temporary name and ``os.replace``d into
    place, so a reader (or a warm-restarting service) always sees either
    the previous complete snapshot or the new complete snapshot, never a
    torn one.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Sweep temporaries torn off by a crash mid-save: a *.tmp.npz
        # or LATEST.json.tmp can only be an incomplete write (the commit
        # point is the os.replace), so removing them is always safe.
        for torn in self.directory.glob("*.tmp.npz"):
            torn.unlink(missing_ok=True)
        (self.directory / "LATEST.json.tmp").unlink(missing_ok=True)

    def _epoch_path(self, epoch: int) -> Path:
        return self.directory / f"epoch-{epoch:08d}.npz"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "LATEST.json"

    def save(self, snapshot: EpochSnapshot, retain: int = 3) -> Path:
        """Persist one epoch and point the manifest at it."""
        path = self._epoch_path(snapshot.epoch)
        tmp = path.with_name(path.name + ".tmp.npz")
        snapshot.summary.save(tmp)
        os.replace(tmp, path)
        manifest = {
            "magic": _MANIFEST_MAGIC,
            "version": _MANIFEST_VERSION,
            "epoch": snapshot.epoch,
            "file": path.name,
            "count": snapshot.count,
            "guarantee": snapshot.guarantee,
        }
        tmp_manifest = self.manifest_path.with_name("LATEST.json.tmp")
        tmp_manifest.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp_manifest, self.manifest_path)
        self.prune(retain)
        return path

    def load_latest(self) -> EpochSnapshot | None:
        """The newest complete snapshot, or ``None`` on a fresh store."""
        if not self.manifest_path.exists():
            # No manifest but epoch archives present: a crash landed an
            # epoch before the first manifest swap (or the manifest was
            # deleted).  Serve the newest complete archive over nothing.
            return self._latest_from_files()
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise DataError(
                f"unreadable snapshot manifest {self.manifest_path}: {exc}"
            ) from None
        if manifest.get("magic") != _MANIFEST_MAGIC:
            raise DataError(
                f"{self.manifest_path} is not an OPAQ snapshot manifest "
                f"(magic {manifest.get('magic')!r})"
            )
        version = manifest.get("version")
        if version != _MANIFEST_VERSION:
            raise DataError(
                f"snapshot manifest {self.manifest_path} has version "
                f"{version!r}; this build supports version "
                f"{_MANIFEST_VERSION} — upgrade the library or discard the "
                "snapshot directory"
            )
        referenced = self.directory / str(manifest["file"])
        try:
            summary = OPAQSummary.load(referenced)
        except (OSError, DataError):
            # The referenced archive vanished out from under the manifest
            # (external meddling, partial copy): fall back to the newest
            # epoch file that still loads rather than refusing to start.
            return self._latest_from_files()
        return EpochSnapshot(epoch=int(manifest["epoch"]), summary=summary)

    def _latest_from_files(self) -> EpochSnapshot | None:
        """Newest loadable ``epoch-*.npz``, ignoring the manifest.

        The recovery path for a store whose manifest is missing or
        points at a vanished file — e.g. a crash after the epoch archive
        landed but before the ``LATEST.json`` swap committed it.
        """
        for path in sorted(self.directory.glob("epoch-*.npz"), reverse=True):
            try:
                summary = OPAQSummary.load(path)
            except (OSError, DataError):
                continue  # torn or foreign file: keep scanning backwards
            epoch_digits = path.stem.rsplit("-", 1)[-1]
            if not epoch_digits.isdigit():
                continue
            return EpochSnapshot(epoch=int(epoch_digits), summary=summary)
        return None

    def _referenced_file(self) -> str | None:
        """Filename the manifest currently commits to, if readable."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        name = manifest.get("file")
        return str(name) if name is not None else None

    def prune(self, retain: int) -> None:
        """Drop all but the ``retain`` newest persisted epochs.

        The manifest-referenced archive is never unlinked, whatever its
        sort position: after a crash between an epoch write and the
        manifest swap, the newest *file* is an uncommitted orphan and
        the manifest still points one epoch back — pruning by recency
        alone could delete the only epoch a warm restart can serve.
        """
        keep = self._referenced_file()
        epochs = sorted(self.directory.glob("epoch-*.npz"))
        for stale in epochs[:-retain] if retain > 0 else epochs:
            if stale.name == keep:
                continue
            stale.unlink(missing_ok=True)


class Snapshotter:
    """Advances epochs: barrier, merge, compact, persist, swap."""

    def __init__(
        self,
        workers: list[ShardWorker],
        store: SnapshotStore | None = None,
        max_merged_samples: int | None = None,
        retain: int = 3,
    ) -> None:
        self._workers = workers
        self._store = store
        self._max_merged_samples = max_merged_samples
        self._retain = retain
        # The swap lock: serialises epoch advances against each other and
        # guards the served-reference assignment.  Readers never take it.
        self._lock = threading.Lock()
        self._snapshot: EpochSnapshot | None = None
        #: Summary restored from disk at startup; merged under every
        #: subsequent epoch (shard summaries only cover post-restart data).
        self._base: OPAQSummary | None = None

    @property
    def current(self) -> EpochSnapshot | None:
        """The served epoch — a lock-free atomic reference read."""
        return self._snapshot

    def restore(self) -> EpochSnapshot | None:
        """Warm-restart: adopt the newest persisted epoch, if any."""
        if self._store is None:
            return None
        restored = self._store.load_latest()
        if restored is not None:
            with self._lock:
                self._base = restored.summary
                self._snapshot = restored
        return restored

    def run_epoch(self, flush: bool = True) -> EpochSnapshot:
        """Advance one epoch and return the new served snapshot.

        With ``flush`` (the default) every shard first folds everything
        submitted before this call — the barrier that makes the epoch a
        consistent cut of the ingest stream.
        """
        tracer = current_tracer()
        with self._lock:
            if flush:
                # Two-phase barrier: enqueue every shard's flush first,
                # then wait — the tail folds run concurrently instead of
                # shard-by-shard.
                controls = [w.begin_flush() for w in self._workers]
                for worker, control in zip(self._workers, controls):
                    worker.finish_flush(control)
            parts = [w.summary for w in self._workers]
            merged = self._base
            with tracer.span("service.snapshot.merge", shards=len(parts)):
                for part in parts:  # shard-id order: deterministic
                    if part is not None:
                        merged = part if merged is None else merged.merge(part)
                if merged is None:
                    raise EstimationError(
                        "cannot snapshot an empty service: no data ingested yet"
                    )
                if self._max_merged_samples is not None:
                    merged = merged.compact_to(self._max_merged_samples)
            previous = self._snapshot
            snapshot = EpochSnapshot(
                epoch=(previous.epoch if previous else 0) + 1, summary=merged
            )
            if self._store is not None:
                with tracer.span("service.snapshot.persist", epoch=snapshot.epoch):
                    self._store.save(snapshot, retain=self._retain)
            self._snapshot = snapshot
        tracer.count("service.snapshot.epoch", 1, epoch=snapshot.epoch)
        tracer.count("service.snapshot.samples", snapshot.summary.num_samples)
        tracer.count("service.snapshot.count", snapshot.count)
        return snapshot
