"""Per-shard ingest workers.

Each shard is one worker thread that owns one
:class:`~repro.core.IncrementalOPAQ` — the *only* writer of that
estimator, ever, which is what makes the whole subsystem lock-free on the
ingest hot path.  Producers talk to a shard through a **bounded** queue
(lint rule OPQ601): when a shard falls behind, the queue fills and
producers block — backpressure, not unbounded buffering.

The worker coalesces queued batches into a buffer and folds the buffer
into the shard summary once ``flush_threshold`` elements are pending, so
many small ingest calls still produce full-size runs (the paper's
guarantee is per *run*, so fuller runs mean tighter bounds per retained
sample).  A ``flush`` control message forces the fold and acts as a
barrier: when it completes, everything submitted before it is reflected
in :attr:`ShardWorker.summary` — the consistency point the epoch
snapshotter builds on.

Summaries are immutable (:class:`~repro.core.OPAQSummary` is frozen), so
readers simply grab the current reference; there is nothing to lock.
"""

from __future__ import annotations

import queue
import threading
from typing import Union

import numpy as np

from repro.core.incremental import IncrementalOPAQ
from repro.core.summary import OPAQSummary
from repro.errors import ServiceError
from repro.obs import current_tracer
from repro.service.config import ServiceConfig

__all__ = ["ShardWorker"]


class _Control:
    """A queue sentinel carrying a completion event."""

    __slots__ = ("kind", "done")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.done = threading.Event()


_QueueItem = Union[np.ndarray, _Control]


class ShardWorker:
    """One ingest shard: bounded queue -> buffer -> IncrementalOPAQ."""

    def __init__(self, shard_id: int, config: ServiceConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        # Bounded by construction: ServiceConfig rejects capacity < 1.
        self._queue: "queue.Queue[_QueueItem]" = queue.Queue(
            maxsize=config.queue_capacity
        )
        self._estimator = IncrementalOPAQ(
            config.opaq_config(), max_samples=config.max_shard_samples
        )
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._latest: OPAQSummary | None = None
        self._error: BaseException | None = None
        self._ingested = 0
        self._folds = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"opaq-shard-{shard_id}", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()
        # Written once by the constructing thread before the worker is
        # shared; a monotonic bool latch thereafter.
        self._started = True  # opaq: ignore[thread-unguarded-write] monotonic latch

    def submit(self, batch: np.ndarray, timeout: float | None = None) -> None:
        """Enqueue one routed sub-batch; blocks when the queue is full.

        Blocking *is* the backpressure mechanism; once ``timeout`` (default
        the configured ingest timeout) elapses with no queue space, the
        submission fails with :class:`~repro.errors.ServiceError` so the
        caller can shed load instead of hanging forever.
        """
        self._check_alive()
        if batch.size == 0:
            return
        try:
            self._queue.put(
                batch,
                timeout=self.config.ingest_timeout if timeout is None else timeout,
            )
        except queue.Full:
            current_tracer().count(
                "service.ingest.rejected", batch.size, shard=self.shard_id
            )
            raise ServiceError(
                f"shard {self.shard_id} ingest queue full for "
                f"{self.config.ingest_timeout:g}s ({self.config.queue_capacity} "
                "batches pending); backpressure timeout — retry later or add "
                "shards"
            ) from None

    def flush(self, timeout: float = 60.0) -> None:
        """Barrier: fold everything submitted before this call."""
        self.finish_flush(self.begin_flush(timeout), timeout)

    def begin_flush(self, timeout: float = 60.0) -> _Control:
        """Enqueue a flush barrier without waiting for it.

        Returns the control message; pass it to :meth:`finish_flush` to
        wait.  Splitting the barrier lets the snapshotter issue one flush
        per shard *concurrently* — the tail folds of N shards overlap
        instead of serialising, which is what keeps epoch latency flat as
        shards rise.
        """
        self._check_alive()
        message = _Control("flush")
        self._enqueue_control(message, timeout)
        return message

    def finish_flush(self, message: _Control, timeout: float = 60.0) -> None:
        """Wait for a barrier from :meth:`begin_flush` to complete."""
        self._await_control(message, timeout)

    def stop(self, timeout: float = 60.0) -> None:
        """Flush, then terminate the worker thread."""
        if not self._started or not self._thread.is_alive():
            return
        message = _Control("stop")
        self._enqueue_control(message, timeout)
        self._await_control(message, timeout)
        self._thread.join(timeout)

    def _enqueue_control(self, message: _Control, timeout: float) -> None:
        try:
            self._queue.put(message, timeout=timeout)
        except queue.Full:
            raise ServiceError(
                f"shard {self.shard_id} queue full; cannot deliver "
                f"{message.kind}"
            ) from None

    def _await_control(self, message: _Control, timeout: float) -> None:
        if not message.done.wait(timeout):
            self._check_alive()
            raise ServiceError(
                f"shard {self.shard_id} did not acknowledge {message.kind} "
                f"within {timeout:g}s"
            )
        self._check_alive()

    def _check_alive(self) -> None:
        if self._error is not None:
            raise ServiceError(
                f"shard {self.shard_id} worker died: {self._error}"
            ) from self._error

    # ------------------------------------------------------------------
    # Reader side (any thread)
    # ------------------------------------------------------------------

    @property
    def summary(self) -> OPAQSummary | None:
        """The shard's current immutable summary (None before data)."""
        return self._latest

    @property
    def ingested(self) -> int:
        """Elements folded into the summary so far."""
        return self._ingested

    @property
    def pending(self) -> int:
        """Batches still waiting in the ingest queue."""
        return self._queue.qsize()

    @property
    def folds(self) -> int:
        """Times the buffer has been folded into the summary."""
        return self._folds

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if isinstance(item, _Control):
                    self._fold()
                    item.done.set()
                    if item.kind == "stop":
                        return
                    continue
                self._buffer.append(item)
                self._buffered += item.size
                if self._buffered >= self.config.effective_flush_threshold:
                    self._fold()
            except BaseException as exc:  # noqa: B036  # opaq: ignore[exception-broad-except] worker must not die silently
                self._error = exc
                if isinstance(item, _Control):
                    item.done.set()
                return
            finally:
                self._queue.task_done()

    def _fold(self) -> None:
        """Fold the buffered elements into the shard summary."""
        if not self._buffered:
            return
        batch = (
            self._buffer[0]
            if len(self._buffer) == 1
            else np.concatenate(self._buffer)
        )
        self._buffer.clear()
        self._buffered = 0
        tracer = current_tracer()
        with tracer.span("service.shard.fold", shard=self.shard_id, elements=batch.size):
            self._latest = self._estimator.update(batch)
        self._ingested += int(batch.size)
        self._folds += 1
        tracer.count("service.shard.folded", batch.size, shard=self.shard_id)
