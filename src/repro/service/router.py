"""Shard routing: deterministic partitioning of ingest batches.

Any partition of the data across shards yields the *same* merged summary
guarantees (summaries are mergeable over disjoint data), so routing is
purely a parallelism decision.  What matters is determinism: the same
batch must always split the same way, so that a replayed ingest schedule
reproduces byte-identical epoch snapshots.

Three policies are provided:

``hash``
    The default.  Each key's IEEE-754 bit pattern runs through a
    SplitMix64-style avalanche (vectorised over numpy's uint64 wrap-around
    arithmetic) and the result is reduced to a shard index with the
    multiply-shift trick (``(z >> 32) * shards >> 32`` — no integer
    division on the hot path).  This is process- and platform-independent
    — unlike ``hash(float)``, which is stable only within one interpreter
    configuration — and batch-boundary-independent: a key lands on the
    same shard however the stream is batched.

``chunk``
    Contiguous equal slices of each batch, one per shard — zero hashing,
    zero masking, views instead of copies.  The cheapest split there is,
    chosen by the serving layer's high-throughput ingest path.  Still
    deterministic for a replayed schedule, but the placement of a key
    depends on where its batch was cut, so per-key affinity (e.g. future
    tenant routing) needs ``hash`` or a ``key_fn``.

user-supplied ``key_fn``
    Any callable mapping a key array to an integer shard-index array
    (e.g. route by tenant bucket, by value range, round-robin on a
    counter the caller owns).  Outputs are validated to be in range.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, DataError

__all__ = ["ShardRouter", "hash_shard_indices", "ROUTER_POLICIES"]

_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX3 = np.uint64(0x94D049BB133111EB)

ROUTER_POLICIES = ("hash", "chunk")


def hash_shard_indices(values: np.ndarray, num_shards: int) -> np.ndarray:
    """SplitMix64 of each key's bit pattern, reduced to ``[0, num_shards)``.

    Deterministic across processes and platforms; uniform enough that the
    per-shard loads stay within a few percent of each other for any real
    key distribution (adjacent floats land on unrelated shards).  The
    reduction is multiply-shift on the avalanche's top 32 bits rather
    than a modulo — the same uniformity without a vector integer divide.
    """
    if num_shards < 1:
        raise ConfigError("num_shards must be at least 1")
    bits = np.ascontiguousarray(values, dtype="<f8").view(np.uint64)
    z = bits + _MIX1
    z = (z ^ (z >> np.uint64(30))) * _MIX2
    z = (z ^ (z >> np.uint64(27))) * _MIX3
    z ^= z >> np.uint64(31)
    reduced = ((z >> np.uint64(32)) * np.uint64(num_shards)) >> np.uint64(32)
    return reduced.astype(np.int64)


class ShardRouter:
    """Splits a batch of keys into one sub-batch per shard."""

    def __init__(
        self,
        num_shards: int,
        key_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        policy: str = "hash",
    ) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        if policy not in ROUTER_POLICIES:
            raise ConfigError(
                f"unknown router policy {policy!r}; choose from "
                f"{ROUTER_POLICIES}"
            )
        if key_fn is not None and policy != "hash":
            raise ConfigError(
                "key_fn replaces the routing policy; pass policy='hash' "
                "(the default) alongside it"
            )
        self.num_shards = num_shards
        self.key_fn = key_fn
        self.policy = policy

    def shard_indices(self, values: np.ndarray) -> np.ndarray:
        """The shard index of each key (vectorised, deterministic)."""
        if self.key_fn is None:
            return hash_shard_indices(values, self.num_shards)
        indices = np.asarray(self.key_fn(values), dtype=np.int64)
        if indices.shape != values.shape:
            raise ConfigError(
                "key_fn must return one shard index per key "
                f"(got shape {indices.shape} for {values.shape})"
            )
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.num_shards
        ):
            raise ConfigError(
                f"key_fn produced a shard index outside [0, {self.num_shards})"
            )
        return indices

    def split(self, values: Sequence[float] | np.ndarray) -> list[np.ndarray]:
        """Partition ``values`` into ``num_shards`` sub-arrays.

        Order is preserved within each shard (irrelevant to the summary,
        convenient for debugging).  NaNs are rejected up front — they are
        unorderable, so no quantile statement about them is possible.
        """
        try:
            arr = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataError(f"ingest batch is not numeric: {exc}") from None
        if arr.ndim != 1:
            raise DataError("ingest batches must be one-dimensional")
        if np.isnan(arr).any():
            raise DataError("ingest batch contains NaN; NaNs have no rank")
        if self.num_shards == 1:
            return [arr]
        if self.policy == "chunk" and self.key_fn is None:
            # Contiguous views — no hash, no masks, no copies.
            return np.array_split(arr, self.num_shards)
        indices = self.shard_indices(arr)
        return [arr[indices == shard] for shard in range(self.num_shards)]
