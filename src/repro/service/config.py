"""Configuration of the sharded quantile service.

One validated object carries every knob of the serving subsystem: how
ingest is partitioned (shards, queue bounds, backpressure timeout), how
each shard summarises (the per-shard :class:`~repro.core.OPAQConfig` and
its compaction bound), and how epochs advance (snapshot cadence in
*ingested elements* — never wall time, so a replayed ingest schedule
reproduces the exact same epoch boundaries and therefore the exact same
served answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.config import OPAQConfig
from repro.errors import ConfigError
from repro.parallel.backends import validate_backend
from repro.service.router import ROUTER_POLICIES
from repro.service.tenancy.config import RegistryConfig

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of one :class:`~repro.service.QuantileService`.

    Parameters
    ----------
    num_shards:
        Number of ingest shards, each a worker thread with its own
        :class:`~repro.core.IncrementalOPAQ`.
    run_size:
        ``m`` for the per-shard estimators: a shard folds its buffered
        elements into the summary in runs of at most this many keys.
    sample_size:
        ``s`` per run — the accuracy/memory knob, exactly as in the
        single-pass algorithm.
    queue_capacity:
        Bound of each shard's ingest queue, in *batches*.  The queues are
        deliberately bounded (lint rule OPQ601): a full queue blocks the
        producer — that blocking is the backpressure signal.
    ingest_timeout:
        Seconds a blocked producer waits for queue space before the
        submission fails with :class:`~repro.errors.ServiceError`.
    flush_threshold:
        A shard buffers routed elements and folds them into its summary
        once at least this many are pending (default: ``run_size``).
        Buffered-but-unfolded elements are invisible to queries until the
        next fold or snapshot; :meth:`QuantileService.stats` reports them
        as staleness.
    max_shard_samples:
        Compaction bound of each shard's retained sample list (forwarded
        to :class:`~repro.core.IncrementalOPAQ`); ``None`` grows without
        bound.
    max_merged_samples:
        Compaction bound applied to the merged epoch snapshot; ``None``
        keeps every sample of every shard.
    snapshot_every:
        Advance the epoch automatically once this many elements have been
        ingested since the last snapshot (``None``: epochs advance only on
        explicit :meth:`QuantileService.snapshot` calls).  Counted in
        elements, not seconds, so epoch boundaries are deterministic.
    snapshot_dir:
        Directory for persisted epoch snapshots (``None``: in-memory
        only).  The service warm-restarts from the newest snapshot found
        here.
    snapshot_retain:
        How many persisted epochs to keep on disk (older ones are
        pruned).
    kernel:
        Hot-path implementation for the per-shard estimators and epoch
        merges — ``"python"`` (reference) or ``"numpy"`` (vectorised,
        bit-identical output); forwarded into the per-shard
        :class:`~repro.core.OPAQConfig`.
    backend:
        Execution backend for :meth:`QuantileService.estimate`, the batch
        counterpart of the streaming path: ``"serial"`` (default),
        ``"thread"``, ``"process"`` or ``"simulated"`` (see
        :mod:`repro.parallel.backends`).  The streaming ingest path always
        uses its own shard worker threads regardless.
    router_policy:
        How ingest batches are partitioned across shards: ``"hash"``
        (default; per-key SplitMix64, batch-boundary-independent) or
        ``"chunk"`` (contiguous slices, zero routing cost — the serving
        layer's high-throughput choice).  Either way the merged epoch
        summary covers exactly the ingested multiset; see
        :mod:`repro.service.router`.
    tenancy:
        Configuration of the multi-tenant summary registry serving the
        keyed opcodes (``INGEST_KEYED`` / ``QUANTILES_KEYED``):
        memory budget, shard count, per-key epsilon, spill directory
        (see :class:`~repro.service.tenancy.RegistryConfig`).  ``None``
        runs the registry with its defaults — in-memory only, so under
        budget pressure keyed ingest reports backpressure instead of
        spilling.
    """

    num_shards: int = 4
    run_size: int = 100_000
    sample_size: int = 1000
    queue_capacity: int = 64
    ingest_timeout: float = 30.0
    flush_threshold: int | None = None
    max_shard_samples: int | None = 100_000
    max_merged_samples: int | None = None
    snapshot_every: int | None = None
    snapshot_dir: str | Path | None = None
    snapshot_retain: int = 3
    kernel: str = "python"
    backend: str = "serial"
    router_policy: str = "hash"
    tenancy: RegistryConfig | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        if self.queue_capacity < 1:
            raise ConfigError(
                "queue_capacity must be at least 1: unbounded ingest queues "
                "turn overload into memory exhaustion instead of backpressure"
            )
        if self.ingest_timeout <= 0:
            raise ConfigError("ingest_timeout must be positive seconds")
        if self.flush_threshold is not None and self.flush_threshold < 1:
            raise ConfigError("flush_threshold must be at least 1")
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise ConfigError("snapshot_every must be at least 1 element")
        if self.snapshot_retain < 1:
            raise ConfigError("snapshot_retain must be at least 1")
        if self.max_merged_samples is not None and self.max_merged_samples < 2:
            raise ConfigError("max_merged_samples must be at least 2")
        # Delegate run/sample/kernel validation (and strategy resolution)
        # to the core config so the two layers cannot drift apart; backend
        # names resolve against the parallel layer's registry.
        self.opaq_config()
        validate_backend(self.backend)
        if self.router_policy not in ROUTER_POLICIES:
            raise ConfigError(
                f"unknown router_policy {self.router_policy!r}; choose from "
                f"{ROUTER_POLICIES}"
            )

    def opaq_config(self) -> OPAQConfig:
        """The per-shard estimator configuration."""
        return OPAQConfig(
            run_size=self.run_size,
            sample_size=self.sample_size,
            kernel=self.kernel,
        )

    @property
    def effective_flush_threshold(self) -> int:
        """Elements a shard buffers before folding (defaults to ``m``)."""
        return self.flush_threshold or self.run_size
