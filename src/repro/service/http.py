"""The compatibility wire layer: JSON/HTTP (wire protocol v1).

The primary transport is the framed binary protocol v3
(:mod:`repro.service.proto`) served by :mod:`repro.service.aio`; this
module remains as the compatibility front end — curl-able, debuggable
with any HTTP tooling, and the bridge for peers that have not migrated
(``docs/service.md`` has the migration note).  Both layers answer from
the same vectorised query path, so their bounds are byte-identical.

Deliberately thin — ``ThreadingHTTPServer`` plus a request handler that
translates JSON bodies to :class:`~repro.service.QuantileService` calls
and repro errors to status codes.  No framework, no dependency; the
subsystem stays importable anywhere the library is.

Endpoints (see ``docs/service.md`` for the full protocol):

==========================  ===============================================
``POST /ingest``            body ``{"values": [..]}`` → ``{"accepted", "epoch"}``
``GET  /quantile``          ``?phi=0.5&phi=0.99`` → bounds + epoch metadata
``POST /quantile``          body ``{"phis": [..]}`` → same
``POST /ingest_keyed``      body ``{"keys": [[tenant, metric], ..], "counts": [..], "values": [..]}`` → ``{"elements", "keys"}``
``POST /quantile_keyed``    body ``{"keys": [[tenant, metric], ..], "phis": [..]}`` → ``{"answers": [..]}``
``POST /snapshot``          advance one epoch → ``{"epoch", "count", ...}``
``GET  /stats``             operational counters
``GET  /healthz``           liveness probe
==========================  ===============================================

Status codes: ``400`` for malformed requests (bad JSON, NaN, unknown φ),
``409`` for queries before the first epoch, ``503`` for backpressure
timeouts (retryable), ``404`` for unknown paths.

:class:`~repro.service.ServiceClient` (re-exported here for protocol v1
import sites) speaks this transport when given an ``http://`` address.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import (
    ConfigError,
    DataError,
    EstimationError,
    ReproError,
    ServiceError,
)
from repro.service.client import ServiceClient  # noqa: F401 - v1 import compat
from repro.service.engine import QuantileService
from repro.service.tenancy.keys import compose_key

__all__ = ["ServiceClient", "ServiceHTTPServer", "make_server"]

#: Refuse request bodies beyond this size; a bounded wire buffer is the
#: HTTP-side sibling of the bounded ingest queues.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths to service calls; JSON in, JSON out."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> QuantileService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # An error reply may leave an unread request body on the
            # socket; closing keeps keep-alive clients from desyncing.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise DataError("request body required (Content-Length missing)")
        if length > _MAX_BODY_BYTES:
            raise DataError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit; split the batch"
            )
        try:
            payload = json.loads(self.rfile.read(length))
        except ValueError as exc:
            raise DataError(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise DataError("JSON body must be an object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlparse(self.path)
        route = (method, parsed.path.rstrip("/") or "/")
        try:
            handler = _ROUTES.get(route)
            if handler is None:
                self._reply(404, {"error": f"no route {method} {parsed.path}"})
                return
            handler(self, urllib.parse.parse_qs(parsed.query))
        except (DataError, ConfigError) as exc:
            self._reply(400, {"error": str(exc)})
        except EstimationError as exc:
            self._reply(409, {"error": str(exc)})
        except ServiceError as exc:
            self._reply(503, {"error": str(exc), "retryable": True})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # opaq: ignore[exception-broad-except] last-resort 500 guard  # pragma: no cover
            self._reply(500, {"error": f"internal error: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # -- endpoints -----------------------------------------------------

    def _ep_health(self, query: dict[str, list[str]]) -> None:
        self._reply(200, {"ok": True})

    def _ep_stats(self, query: dict[str, list[str]]) -> None:
        self._reply(200, self.service.stats())

    def _ep_ingest(self, query: dict[str, list[str]]) -> None:
        payload = self._read_json()
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise DataError('body must be {"values": [number, ...]}')
        self._reply(200, dict(self.service.ingest(values)))

    def _ep_quantile_get(self, query: dict[str, list[str]]) -> None:
        raw = query.get("phi", [])
        if not raw:
            raise DataError("pass at least one ?phi= parameter")
        self._answer_quantiles(raw)

    def _ep_quantile_post(self, query: dict[str, list[str]]) -> None:
        payload = self._read_json()
        phis = payload.get("phis")
        if not isinstance(phis, list) or not phis:
            raise DataError('body must be {"phis": [fraction, ...]}')
        self._answer_quantiles(phis)

    def _answer_quantiles(self, raw: list[Any]) -> None:
        try:
            phis = [float(p) for p in raw]
        except (TypeError, ValueError):
            raise DataError(f"unparseable quantile fractions: {raw!r}") from None
        # Same vectorised kernel as the binary layer (bounds_arrays), so
        # the two transports serve byte-identical bounds.
        self._reply(200, self.service.query_arrays(phis).to_dict())

    @staticmethod
    def _composite_keys(raw: Any) -> list[str]:
        if not isinstance(raw, list) or not raw:
            raise DataError(
                'body must carry {"keys": [[tenant, metric], ...]}'
            )
        keys: list[str] = []
        for pair in raw:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise DataError(
                    f"each key must be a [tenant, metric] pair, got {pair!r}"
                )
            keys.append(compose_key(str(pair[0]), str(pair[1])))
        return keys

    def _ep_ingest_keyed(self, query: dict[str, list[str]]) -> None:
        payload = self._read_json()
        keys = self._composite_keys(payload.get("keys"))
        counts = payload.get("counts")
        values = payload.get("values")
        if not isinstance(counts, list) or not isinstance(values, list):
            raise DataError(
                'body must be {"keys": [[tenant, metric], ...], '
                '"counts": [n, ...], "values": [number, ...]}'
            )
        self._reply(200, dict(self.service.ingest_keyed(keys, counts, values)))

    def _ep_quantile_keyed(self, query: dict[str, list[str]]) -> None:
        payload = self._read_json()
        keys = self._composite_keys(payload.get("keys"))
        phis = payload.get("phis")
        if not isinstance(phis, list) or not phis:
            raise DataError('body must carry {"phis": [fraction, ...]}')
        answers = self.service.quantiles_keyed(keys, phis)
        self._reply(200, {"answers": [answer.to_dict() for answer in answers]})

    def _ep_snapshot(self, query: dict[str, list[str]]) -> None:
        snapshot = self.service.snapshot()
        self._reply(
            200,
            {
                "epoch": snapshot.epoch,
                "count": snapshot.count,
                "guarantee": snapshot.guarantee,
                "samples": snapshot.summary.num_samples,
            },
        )


_ROUTES = {
    ("GET", "/healthz"): _Handler._ep_health,
    ("GET", "/stats"): _Handler._ep_stats,
    ("POST", "/ingest"): _Handler._ep_ingest,
    ("GET", "/quantile"): _Handler._ep_quantile_get,
    ("POST", "/quantile"): _Handler._ep_quantile_post,
    ("POST", "/ingest_keyed"): _Handler._ep_ingest_keyed,
    ("POST", "/quantile_keyed"): _Handler._ep_quantile_keyed,
    ("POST", "/snapshot"): _Handler._ep_snapshot,
}


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QuantileService`."""

    daemon_threads = True

    def __init__(
        self,
        service: QuantileService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ``port=0``)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    service: QuantileService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not start) the wire layer for ``service``.

    ``port=0`` asks the OS for a free port; read the result off
    :attr:`ServiceHTTPServer.url`.
    """
    return ServiceHTTPServer(service, host=host, port=port, verbose=verbose)
