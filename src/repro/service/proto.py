"""Wire protocol v3: compact binary framing for the quantile service.

The JSON/HTTP layer (:mod:`repro.service.http`, protocol v1) spends its
time encoding numbers as text; at one million elements per ingest call
that dominates the wire cost by an order of magnitude.  Protocol v2+
frames numpy payloads directly, with the same dtype discipline as the
process backend's shared-memory transport
(:mod:`repro.parallel.backends.process`): every array travels as its
``dtype.str`` + shape + raw C-order bytes, and is rebuilt with
``np.dtype(...)`` on the far side — never pickled, never guessed.
Protocol v3 extends the keyed answer record with one byte naming the
portfolio engine that served the answer (see ``docs/portfolio.md``).

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic    b"OPAQ"
    4       1     version  3
    5       1     opcode   (request: Op.*; reply: Op.* | REPLY_BIT; error: ERROR_OP)
    6       2     flags    reserved, must be 0 in v3
    8       4     payload length in bytes (bounded by max_payload)
    12      ...   payload

Array blocks inside payloads::

    u8 dtype-string length | dtype string (ascii, e.g. "<f8")
    u8 ndim | u64 * ndim dimensions | raw C-order bytes

Request/reply payloads per opcode are documented on their codec
functions below; ``docs/service.md`` carries the wire-level view.

Version negotiation is deliberately dumb: the header carries the
version, a peer that sees one it does not speak replies with (or
raises) a typed error naming both versions, and the connection closes.
No capability bitmaps — a new version is a new byte.

Every malformed input raises :class:`~repro.errors.DataError` (corrupt
or hostile bytes) or :class:`~repro.errors.ServiceError` (the peer went
away), never a silent truncation and never a foreign exception type.
"""

from __future__ import annotations

import enum
import json
import struct
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    ConfigError,
    DataError,
    EstimationError,
    ReproError,
    ServiceError,
)
from repro.service.tenancy.keys import KEY_SEP

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.service.tenancy.registry import KeyAnswer

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "HEADER",
    "MAX_PAYLOAD",
    "REPLY_BIT",
    "ERROR_OP",
    "Op",
    "QuantileVector",
    "encode_frame",
    "parse_header",
    "pack_array",
    "unpack_array",
    "unpack_single_array",
    "encode_ingest_request",
    "decode_ingest_request",
    "encode_ingest_reply",
    "decode_ingest_reply",
    "encode_quantiles_request",
    "decode_quantiles_request",
    "encode_quantiles_reply",
    "decode_quantiles_reply",
    "encode_ingest_keyed_request",
    "decode_ingest_keyed_request",
    "encode_ingest_keyed_reply",
    "decode_ingest_keyed_reply",
    "encode_quantiles_keyed_request",
    "decode_quantiles_keyed_request",
    "encode_quantiles_keyed_reply",
    "decode_quantiles_keyed_reply",
    "encode_snapshot_reply",
    "decode_snapshot_reply",
    "encode_stats_reply",
    "decode_stats_reply",
    "encode_error",
    "raise_remote_error",
]

MAGIC = b"OPAQ"
WIRE_VERSION = 3

#: magic, version, opcode, flags (reserved), payload length.
HEADER = struct.Struct("!4sBBHI")

#: Refuse frames beyond this payload size (64 MiB, matching the HTTP
#: layer's body cap): a bounded wire buffer is the binary-side sibling
#: of the bounded ingest queues.
MAX_PAYLOAD = 64 * 1024 * 1024

#: A reply to opcode ``op`` carries opcode ``op | REPLY_BIT``.
REPLY_BIT = 0x80

#: Error replies carry this opcode; payload is the error codec below.
ERROR_OP = 0xFF


class Op(enum.IntEnum):
    """Request opcodes of wire protocol v3."""

    PING = 0x01
    INGEST = 0x02
    QUANTILES = 0x03
    SNAPSHOT = 0x04
    STATS = 0x05
    INGEST_KEYED = 0x06
    QUANTILES_KEYED = 0x07


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One complete frame: header + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise DataError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD}-byte "
            "frame limit; split the batch"
        )
    return HEADER.pack(MAGIC, WIRE_VERSION, opcode, 0, len(payload)) + payload


def parse_header(
    header: bytes, *, max_payload: int = MAX_PAYLOAD
) -> tuple[int, int]:
    """Validate one frame header; return ``(opcode, payload_length)``.

    Raises :class:`~repro.errors.DataError` for anything a peer cannot
    recover from in-stream: short header, wrong magic, version skew,
    nonzero reserved flags, oversized length.  After any of these the
    connection must close — the byte stream can no longer be trusted.
    """
    if len(header) != HEADER.size:
        raise DataError(
            f"truncated frame header: {len(header)} of {HEADER.size} bytes"
        )
    magic, version, opcode, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise DataError(
            f"not an OPAQ frame (magic {magic!r}, expected {MAGIC!r}); "
            "is the peer speaking HTTP at a binary port?"
        )
    if version != WIRE_VERSION:
        raise DataError(
            f"wire protocol version skew: peer speaks v{version}, this "
            f"build speaks v{WIRE_VERSION}; upgrade one side (the HTTP "
            "layer remains available as a compatibility transport)"
        )
    if flags != 0:
        raise DataError(
            f"reserved frame flags must be 0 in v{WIRE_VERSION}, "
            f"got {flags:#x}"
        )
    if length > max_payload:
        raise DataError(
            f"declared payload of {length} bytes exceeds the "
            f"{max_payload}-byte limit; split the batch"
        )
    return opcode, length


# ----------------------------------------------------------------------
# Array blocks (the process backend's dtype discipline, on the wire)
# ----------------------------------------------------------------------

_MAX_NDIM = 2


def pack_array(arr: np.ndarray) -> bytes:
    """Serialise one array as dtype string + shape + raw C-order bytes."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.hasobject:
        raise DataError("object arrays cannot travel on the wire")
    if arr.ndim > _MAX_NDIM:
        raise DataError(f"arrays over {_MAX_NDIM} dimensions are not framed")
    dtype_str = arr.dtype.str.encode("ascii")
    parts = [
        struct.pack("!B", len(dtype_str)),
        dtype_str,
        struct.pack("!B", arr.ndim),
        struct.pack(f"!{arr.ndim}Q", *arr.shape),
        arr.tobytes(),
    ]
    return b"".join(parts)


def unpack_array(buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode one array block at ``offset``; return ``(array, next_offset)``.

    The returned array owns its data (copied out of ``buf``), so callers
    may hand it to code that sorts or writes in place.
    """
    try:
        (dtype_len,) = struct.unpack_from("!B", buf, offset)
        offset += 1
        dtype_bytes = bytes(buf[offset : offset + dtype_len])
        if len(dtype_bytes) != dtype_len:
            raise DataError("truncated array block: dtype string cut short")
        try:
            dtype_str = dtype_bytes.decode("ascii")
        except UnicodeDecodeError:
            raise DataError(
                f"unknown wire dtype {dtype_bytes!r}: not ASCII"
            ) from None
        offset += dtype_len
        (ndim,) = struct.unpack_from("!B", buf, offset)
        offset += 1
        if ndim > _MAX_NDIM:
            raise DataError(
                f"array block declares {ndim} dimensions "
                f"(limit {_MAX_NDIM})"
            )
        shape = struct.unpack_from(f"!{ndim}Q", buf, offset)
        offset += 8 * ndim
    except struct.error as exc:
        raise DataError(f"truncated array block: {exc}") from None
    try:
        dtype = np.dtype(dtype_str)
    except (TypeError, ValueError) as exc:
        raise DataError(f"unknown wire dtype {dtype_str!r}: {exc}") from None
    if dtype.hasobject or dtype.itemsize == 0:
        raise DataError(f"wire dtype {dtype_str!r} is not a plain scalar type")
    count = 1
    for dim in shape:
        count *= int(dim)
    nbytes = count * dtype.itemsize
    if nbytes > len(buf) - offset:
        raise DataError(
            f"truncated array block: {nbytes} data bytes declared, "
            f"{len(buf) - offset} present"
        )
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    return arr.reshape(shape).copy(), offset + nbytes


def unpack_single_array(buf: bytes) -> np.ndarray:
    """Decode exactly one array block filling the whole payload."""
    arr, end = unpack_array(buf)
    if end != len(buf):
        raise DataError(
            f"{len(buf) - end} trailing bytes after the array block"
        )
    return arr


# ----------------------------------------------------------------------
# Per-opcode codecs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuantileVector:
    """A whole φ-vector answer as parallel arrays (the wire-native form).

    The array-of-objects view (:class:`~repro.service.QueryResult`) costs
    one dataclass per φ; this form is what the vectorised query path
    produces and what protocol v3 frames — construction cost independent
    of the number of fractions.
    """

    epoch: int
    count: int
    guarantee: int
    staleness: int
    phis: np.ndarray
    ranks: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    max_below: np.ndarray
    max_above: np.ndarray

    def to_dict(self) -> dict[str, object]:
        """The legacy JSON response shape (one row dict per φ)."""
        return {
            "epoch": self.epoch,
            "count": self.count,
            "guarantee": self.guarantee,
            "staleness": self.staleness,
            "results": [
                {
                    "phi": float(self.phis[i]),
                    "rank": int(self.ranks[i]),
                    "lower": float(self.lower[i]),
                    "upper": float(self.upper[i]),
                    "max_below": int(self.max_below[i]),
                    "max_above": int(self.max_above[i]),
                    "max_between": int(self.max_below[i] + self.max_above[i]),
                }
                for i in range(len(self.phis))
            ],
        }


_INGEST_REPLY = struct.Struct("!QQ")
_QUANTILES_HEAD = struct.Struct("!QQQq")
_SNAPSHOT_REPLY = struct.Struct("!QQQQ")


def encode_ingest_request(values: np.ndarray) -> bytes:
    """Request payload: one 1-D float64 array block."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    return pack_array(arr)


def decode_ingest_request(payload: bytes) -> np.ndarray:
    arr = unpack_single_array(payload)
    if arr.dtype.kind not in "fiu":
        raise DataError(
            f"ingest batches must be numeric, got dtype {arr.dtype.str!r}"
        )
    return arr


def encode_ingest_reply(accepted: int, epoch: int) -> bytes:
    """Reply payload: ``!QQ`` (accepted element count, current epoch)."""
    return _INGEST_REPLY.pack(accepted, epoch)


def decode_ingest_reply(payload: bytes) -> dict[str, int]:
    try:
        accepted, epoch = _INGEST_REPLY.unpack(payload)
    except struct.error as exc:
        raise DataError(f"malformed ingest reply: {exc}") from None
    return {"accepted": int(accepted), "epoch": int(epoch)}


def encode_quantiles_request(phis: np.ndarray) -> bytes:
    """Request payload: one 1-D float64 array block of fractions."""
    return pack_array(np.ascontiguousarray(phis, dtype=np.float64))


def decode_quantiles_request(payload: bytes) -> np.ndarray:
    arr = unpack_single_array(payload)
    if arr.dtype.kind not in "fiu":
        raise DataError(
            f"quantile fractions must be numeric, got {arr.dtype.str!r}"
        )
    return np.ascontiguousarray(arr, dtype=np.float64)


def encode_quantiles_reply(vec: QuantileVector) -> bytes:
    """Reply payload: ``!QQQq`` bookkeeping + six array blocks.

    Order: phis (f8), ranks (i8), lower (f8), upper (f8),
    max_below (i8), max_above (i8).
    """
    head = _QUANTILES_HEAD.pack(
        vec.epoch, vec.count, vec.guarantee, vec.staleness
    )
    return head + b"".join(
        pack_array(np.ascontiguousarray(a, dtype=d))
        for a, d in (
            (vec.phis, np.float64),
            (vec.ranks, np.int64),
            (vec.lower, np.float64),
            (vec.upper, np.float64),
            (vec.max_below, np.int64),
            (vec.max_above, np.int64),
        )
    )


def decode_quantiles_reply(payload: bytes) -> QuantileVector:
    try:
        epoch, count, guarantee, staleness = _QUANTILES_HEAD.unpack_from(
            payload, 0
        )
    except struct.error as exc:
        raise DataError(f"malformed quantiles reply: {exc}") from None
    offset = _QUANTILES_HEAD.size
    arrays = []
    for _ in range(6):
        arr, offset = unpack_array(payload, offset)
        arrays.append(arr)
    if offset != len(payload):
        raise DataError(
            f"{len(payload) - offset} trailing bytes after the quantile arrays"
        )
    phis, ranks, lower, upper, max_below, max_above = arrays
    sizes = {a.size for a in arrays}
    if len(sizes) != 1:
        raise DataError("quantile reply arrays disagree on length")
    return QuantileVector(
        epoch=int(epoch),
        count=int(count),
        guarantee=int(guarantee),
        staleness=int(staleness),
        phis=phis,
        ranks=ranks,
        lower=lower,
        upper=upper,
        max_below=max_below,
        max_above=max_above,
    )


# ----------------------------------------------------------------------
# Keyed (multi-tenant) codecs
# ----------------------------------------------------------------------

#: accepted element count, accepted key count.
_INGEST_KEYED_REPLY = struct.Struct("!QQ")
#: count, guarantee, compactions (signed: -1 for rollups),
#: epsilon_bound, source code, engine code (v3).
_KEYED_ANSWER_HEAD = struct.Struct("!QQqdBB")
_KEY_BLOB_LEN = struct.Struct("!Q")
_KEY_ECHO_LEN = struct.Struct("!H")
_ANSWER_COUNT = struct.Struct("!I")

#: ``KeyAnswer.source`` <-> its one-byte wire code.  Order is the code.
_SOURCE_NAMES = ("resident", "restored", "rollup:metric", "rollup:global")
_SOURCE_CODES = {name: code for code, name in enumerate(_SOURCE_NAMES)}

#: ``KeyAnswer.engine`` <-> its one-byte wire code.  Order is the code;
#: append-only (codes are wire format, not an alphabetical roster).
_ENGINE_NAMES = ("opaq", "kll", "gk", "as95")
_ENGINE_CODES = {name: code for code, name in enumerate(_ENGINE_NAMES)}


def _pack_keys(keys: Sequence[str]) -> bytes:
    """Key block: ``u64`` blob length + UTF-8 blob + i4 length array.

    Composite keys (``tenant\\x1fmetric``) travel concatenated; the
    length array carves the blob back apart.  One encode for the whole
    frame — no per-key framing overhead beyond 4 bytes.
    """
    encoded = [key.encode("utf-8") for key in keys]
    blob = b"".join(encoded)
    lengths = np.array([len(e) for e in encoded], dtype=np.int32)
    return _KEY_BLOB_LEN.pack(len(blob)) + blob + pack_array(lengths)


def _unpack_keys(buf: bytes, offset: int = 0) -> tuple[list[str], int]:
    """Inverse of :func:`_pack_keys`; returns ``(keys, next_offset)``."""
    try:
        (blob_len,) = _KEY_BLOB_LEN.unpack_from(buf, offset)
    except struct.error as exc:
        raise DataError(f"truncated key block: {exc}") from None
    offset += _KEY_BLOB_LEN.size
    blob = bytes(buf[offset : offset + blob_len])
    if len(blob) != blob_len:
        raise DataError(
            f"truncated key block: {blob_len} blob bytes declared, "
            f"{len(blob)} present"
        )
    offset += blob_len
    lengths, offset = unpack_array(buf, offset)
    if lengths.ndim != 1 or lengths.dtype.kind not in "iu":
        raise DataError("key lengths must be a 1-D integer array")
    if lengths.size and int(lengths.min()) < 0:
        raise DataError("key lengths cannot be negative")
    if int(lengths.sum()) != blob_len:
        raise DataError(
            f"key lengths sum to {int(lengths.sum())} but the blob "
            f"carries {blob_len} bytes"
        )
    try:
        text = blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DataError(f"key blob is not valid UTF-8: {exc}") from None
    keys: list[str] = []
    # Slice by character when the blob is pure ASCII (the common case);
    # otherwise re-decode per key so byte lengths stay authoritative.
    if len(text) == blob_len:
        pos = 0
        for n in lengths.tolist():
            keys.append(text[pos : pos + n])
            pos += n
    else:
        pos = 0
        for n in lengths.tolist():
            keys.append(blob[pos : pos + n].decode("utf-8"))
            pos += n
    return keys, offset


def encode_ingest_keyed_request(
    keys: Sequence[str],
    counts: np.ndarray,
    values: np.ndarray,
) -> bytes:
    """Request payload: key block + i8 per-key counts + f8 values.

    ``values`` is the concatenation of every key's elements in key
    order — the registry's native frame shape, framed verbatim.
    """
    return (
        _pack_keys(keys)
        + pack_array(np.ascontiguousarray(counts, dtype=np.int64))
        + pack_array(np.ascontiguousarray(values, dtype=np.float64))
    )


def decode_ingest_keyed_request(
    payload: bytes,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    keys, offset = _unpack_keys(payload)
    counts, offset = unpack_array(payload, offset)
    values, offset = unpack_array(payload, offset)
    if offset != len(payload):
        raise DataError(
            f"{len(payload) - offset} trailing bytes after the keyed frame"
        )
    if counts.dtype.kind not in "iu" or counts.ndim != 1:
        raise DataError("keyed counts must be a 1-D integer array")
    if values.dtype.kind not in "fiu" or values.ndim != 1:
        raise DataError("keyed values must be a 1-D numeric array")
    return (
        keys,
        np.ascontiguousarray(counts, dtype=np.int64),
        np.ascontiguousarray(values, dtype=np.float64),
    )


def encode_ingest_keyed_reply(accepted: int, keys: int) -> bytes:
    """Reply payload: ``!QQ`` (accepted elements, accepted keys)."""
    return _INGEST_KEYED_REPLY.pack(accepted, keys)


def decode_ingest_keyed_reply(payload: bytes) -> dict[str, int]:
    try:
        accepted, keys = _INGEST_KEYED_REPLY.unpack(payload)
    except struct.error as exc:
        raise DataError(f"malformed keyed ingest reply: {exc}") from None
    return {"elements": int(accepted), "keys": int(keys)}


def encode_quantiles_keyed_request(
    keys: Sequence[str], phis: np.ndarray
) -> bytes:
    """Request payload: key block + one f8 array block of fractions."""
    return _pack_keys(keys) + pack_array(
        np.ascontiguousarray(phis, dtype=np.float64)
    )


def decode_quantiles_keyed_request(
    payload: bytes,
) -> tuple[list[str], np.ndarray]:
    keys, offset = _unpack_keys(payload)
    phis, offset = unpack_array(payload, offset)
    if offset != len(payload):
        raise DataError(
            f"{len(payload) - offset} trailing bytes after the keyed query"
        )
    if phis.dtype.kind not in "fiu":
        raise DataError(
            f"quantile fractions must be numeric, got {phis.dtype.str!r}"
        )
    return keys, np.ascontiguousarray(phis, dtype=np.float64)


def encode_quantiles_keyed_reply(answers: Sequence["KeyAnswer"]) -> bytes:
    """Reply payload: shared φ block, then one record per answer.

    Each record: ``u16`` key-echo length + composite key bytes +
    ``!QQqdBB`` head (count, guarantee, compactions, epsilon_bound,
    source code, engine code) + five array blocks (psi i8, lower f8,
    upper f8, max_below i8, max_above i8).  The φ vector is hoisted —
    every answer in one reply shares the request's fractions.
    """
    phis = answers[0].phis if answers else np.empty(0, dtype=np.float64)
    parts = [
        pack_array(np.ascontiguousarray(phis, dtype=np.float64)),
        _ANSWER_COUNT.pack(len(answers)),
    ]
    for ans in answers:
        code = _SOURCE_CODES.get(ans.source)
        if code is None:
            raise DataError(f"unknown answer source {ans.source!r}")
        engine_code = _ENGINE_CODES.get(ans.engine)
        if engine_code is None:
            raise DataError(f"unknown answer engine {ans.engine!r}")
        key = (ans.tenant + KEY_SEP + ans.metric).encode("utf-8")
        parts.append(_KEY_ECHO_LEN.pack(len(key)))
        parts.append(key)
        parts.append(
            _KEYED_ANSWER_HEAD.pack(
                ans.count,
                ans.guarantee,
                ans.compactions,
                ans.epsilon_bound,
                code,
                engine_code,
            )
        )
        for arr, dtype in (
            (ans.psi, np.int64),
            (ans.lower, np.float64),
            (ans.upper, np.float64),
            (ans.max_below, np.int64),
            (ans.max_above, np.int64),
        ):
            parts.append(pack_array(np.ascontiguousarray(arr, dtype=dtype)))
    return b"".join(parts)


def decode_quantiles_keyed_reply(payload: bytes) -> list["KeyAnswer"]:
    from repro.service.tenancy.registry import KeyAnswer

    phis, offset = unpack_array(payload)
    try:
        (n_answers,) = _ANSWER_COUNT.unpack_from(payload, offset)
    except struct.error as exc:
        raise DataError(f"malformed keyed quantiles reply: {exc}") from None
    offset += _ANSWER_COUNT.size
    answers: list[KeyAnswer] = []
    for _ in range(n_answers):
        try:
            (key_len,) = _KEY_ECHO_LEN.unpack_from(payload, offset)
            offset += _KEY_ECHO_LEN.size
            key_bytes = bytes(payload[offset : offset + key_len])
            if len(key_bytes) != key_len:
                raise DataError("truncated key echo in keyed reply")
            offset += key_len
            head = _KEYED_ANSWER_HEAD.unpack_from(payload, offset)
            offset += _KEYED_ANSWER_HEAD.size
        except struct.error as exc:
            raise DataError(
                f"malformed keyed quantiles reply: {exc}"
            ) from None
        count, guarantee, compactions, epsilon_bound, code, engine_code = head
        if code >= len(_SOURCE_NAMES):
            raise DataError(f"unknown answer source code {code:#x}")
        if engine_code >= len(_ENGINE_NAMES):
            raise DataError(f"unknown answer engine code {engine_code:#x}")
        try:
            key = key_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DataError(f"key echo is not valid UTF-8: {exc}") from None
        tenant, sep, metric = key.partition(KEY_SEP)
        if not sep:
            raise DataError(f"malformed key echo {key!r} in keyed reply")
        arrays = []
        for _ in range(5):
            arr, offset = unpack_array(payload, offset)
            arrays.append(arr)
        psi, lower, upper, max_below, max_above = arrays
        answers.append(
            KeyAnswer(
                tenant=tenant,
                metric=metric,
                source=_SOURCE_NAMES[code],
                count=int(count),
                guarantee=int(guarantee),
                epsilon_bound=float(epsilon_bound),
                compactions=int(compactions),
                phis=phis,
                psi=psi,
                lower=lower,
                upper=upper,
                max_below=max_below,
                max_above=max_above,
                engine=_ENGINE_NAMES[engine_code],
            )
        )
    if offset != len(payload):
        raise DataError(
            f"{len(payload) - offset} trailing bytes after the keyed answers"
        )
    return answers


def encode_snapshot_reply(
    epoch: int, count: int, guarantee: int, samples: int
) -> bytes:
    """Reply payload: ``!QQQQ`` (epoch, count, guarantee, samples)."""
    return _SNAPSHOT_REPLY.pack(epoch, count, guarantee, samples)


def decode_snapshot_reply(payload: bytes) -> dict[str, int]:
    try:
        epoch, count, guarantee, samples = _SNAPSHOT_REPLY.unpack(payload)
    except struct.error as exc:
        raise DataError(f"malformed snapshot reply: {exc}") from None
    return {
        "epoch": int(epoch),
        "count": int(count),
        "guarantee": int(guarantee),
        "samples": int(samples),
    }


def encode_stats_reply(stats: dict[str, object]) -> bytes:
    """Reply payload: UTF-8 JSON (stats is a cold diagnostic path)."""
    return json.dumps(stats).encode()


def decode_stats_reply(payload: bytes) -> dict[str, object]:
    try:
        stats = json.loads(payload)
    except ValueError as exc:
        raise DataError(f"malformed stats reply: {exc}") from None
    if not isinstance(stats, dict):
        raise DataError("stats reply must be a JSON object")
    return stats


# ----------------------------------------------------------------------
# Typed errors on the wire
# ----------------------------------------------------------------------

#: Wire error kinds <-> the repro exception taxonomy.  The base classes
#: are ordered most-specific-first for the isinstance scan.
_KIND_OF = (
    ("data", DataError),
    ("config", ConfigError),
    ("estimation", EstimationError),
    ("service", ServiceError),
    ("repro", ReproError),
)
_ERROR_OF = {kind: cls for kind, cls in _KIND_OF}


def encode_error(exc: BaseException) -> bytes:
    """Error payload: UTF-8 JSON ``{"kind", "error", "retryable"}``."""
    kind = "service"
    for name, cls in _KIND_OF:
        if isinstance(exc, cls):
            kind = name
            break
    return json.dumps(
        {
            "kind": kind,
            "error": str(exc),
            "retryable": isinstance(exc, ServiceError),
        }
    ).encode()


def raise_remote_error(payload: bytes) -> None:
    """Re-raise a peer's error frame as its typed repro exception."""
    try:
        body = json.loads(payload)
        kind = str(body["kind"])
        message = str(body["error"])
    except (ValueError, KeyError, TypeError):
        raise ServiceError(
            f"peer sent an unreadable error frame: {payload[:80]!r}"
        ) from None
    raise _ERROR_OF.get(kind, ServiceError)(f"server error: {message}")
