"""The aggregation tree: shard → node → global rollups over cold keys.

Cross-key queries (``tenant=*``) must not touch cold keys — restoring a
million spilled summaries to answer "global p99" would defeat the point
of spilling them.  Instead the registry feeds every ingest frame's data
into this tree as an *exact delta summary* (one sorted run, unit gaps)
at the moment it arrives, while the per-key summaries go their own way.

The tree leans entirely on the merge algebra pinned by
``tests/core/test_merge_algebra.py``: merge is associative and
order-insensitive *in its bounds*, so folding deltas shard-by-shard and
then merging shards through an intermediate node level yields the same
class of guarantee as one flat merge — but recomputes only the paths
whose shard versions actually moved.  Each level is compacted to
``max_samples``; the resulting guarantee is the **rollup's own** (it is
reported per answer) and is deliberately *not* covered by the per-key
epsilon contract: a rollup summarises unbounded cross-key mass in
bounded space, which is exactly the trade the Cormode–Veselý lower
bound says must cost either memory or guarantee.

Alongside the shard level the tree keeps one rollup per *metric*
(``tenant=*, metric=m``).  Metric cardinality is assumed small (it is a
schema axis, not a data axis); per-tenant rollups are intentionally
absent — they would scale with key count, which is the thing this
subsystem exists to avoid.
"""

from __future__ import annotations

import math
import threading

from repro.core.summary import OPAQSummary
from repro.errors import ConfigError
from repro.service.tenancy.store import SpillStore

__all__ = ["AggregationTree"]

_SHARD_AUX = "rollup-shard-"
_METRIC_AUX = "rollup-metric-"


class AggregationTree:
    """Two cached levels over per-shard rollup summaries.

    ``absorb`` is called on the ingest path (per frame, per shard) and
    touches only that shard's lock.  ``global_summary`` rebuilds node
    and root caches lazily, keyed by the vector of shard versions — an
    idle tree answers from cache, a busy one recomputes only the nodes
    whose shards moved.  Summaries are frozen dataclasses, so a
    reference read under a lock stays valid outside it.
    """

    def __init__(self, num_shards: int, max_samples: int) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        self._num_shards = num_shards
        self._max_samples = max_samples
        self._fanout = max(2, math.isqrt(max(num_shards - 1, 0)) + 1)
        self._num_nodes = -(-num_shards // self._fanout)
        self._shards: list[OPAQSummary | None] = [None] * num_shards
        self._versions: list[int] = [0] * num_shards
        self._shard_locks = [threading.Lock() for _ in range(num_shards)]
        # node cache[i] = (shard-version vector it was built from, summary)
        self._nodes: list[tuple[tuple[int, ...], OPAQSummary | None] | None]
        self._nodes = [None] * self._num_nodes
        self._root: tuple[tuple[int, ...], OPAQSummary | None] | None = None
        self._cache_lock = threading.Lock()
        self._metrics: dict[str, OPAQSummary] = {}
        self._metric_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Ingest side
    # ------------------------------------------------------------------

    def absorb(self, shard: int, delta: OPAQSummary) -> None:
        """Fold one shard's frame delta into its level-0 rollup."""
        with self._shard_locks[shard]:
            current = self._shards[shard]
            merged = delta if current is None else current.merge(delta)
            self._shards[shard] = merged.compact_to(self._max_samples)  # opaq: ignore[thread-unguarded-write] guarded by _shard_locks[shard]
            self._versions[shard] += 1  # opaq: ignore[thread-unguarded-write,thread-concurrent-rmw] guarded by _shard_locks[shard]

    def absorb_metric(self, metric: str, delta: OPAQSummary) -> None:
        """Fold one frame's per-metric slice into that metric's rollup."""
        with self._metric_lock:
            current = self._metrics.get(metric)
            merged = delta if current is None else current.merge(delta)
            self._metrics[metric] = merged.compact_to(self._max_samples)

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def shard_summary(self, shard: int) -> OPAQSummary | None:
        with self._shard_locks[shard]:
            return self._shards[shard]

    def metric_summary(self, metric: str) -> OPAQSummary | None:
        with self._metric_lock:
            return self._metrics.get(metric)

    def metrics(self) -> list[str]:
        with self._metric_lock:
            return sorted(self._metrics)

    def _shard_state(
        self, lo: int, hi: int
    ) -> tuple[tuple[int, ...], list[OPAQSummary]]:
        versions: list[int] = []
        summaries: list[OPAQSummary] = []
        for i in range(lo, hi):
            with self._shard_locks[i]:
                versions.append(self._versions[i])
                if self._shards[i] is not None:
                    summaries.append(self._shards[i])  # type: ignore[arg-type]
        return tuple(versions), summaries

    @staticmethod
    def _merge_all(
        parts: list[OPAQSummary], max_samples: int
    ) -> OPAQSummary | None:
        merged: OPAQSummary | None = None
        for part in parts:
            merged = part if merged is None else merged.merge(part)
        if merged is not None:
            merged = merged.compact_to(max_samples)
        return merged

    def global_summary(self) -> OPAQSummary | None:
        """The root rollup: everything ever ingested, in bounded space.

        Lock order is strictly ``cache lock -> shard lock``; ``absorb``
        takes only shard locks, so the orders compose without a cycle.
        """
        with self._cache_lock:
            node_parts: list[OPAQSummary] = []
            all_versions: list[int] = []
            for node in range(self._num_nodes):
                lo = node * self._fanout
                hi = min(lo + self._fanout, self._num_shards)
                versions, summaries = self._shard_state(lo, hi)
                all_versions.extend(versions)
                cached = self._nodes[node]
                if cached is None or cached[0] != versions:
                    cached = (versions, self._merge_all(summaries, self._max_samples))
                    self._nodes[node] = cached
                if cached[1] is not None:
                    node_parts.append(cached[1])
            key = tuple(all_versions)
            if self._root is None or self._root[0] != key:
                self._root = (key, self._merge_all(node_parts, self._max_samples))
            return self._root[1]

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        root = self.global_summary()
        with self._metric_lock:
            metric_count = len(self._metrics)
        return {
            "num_shards": self._num_shards,
            "num_nodes": self._num_nodes,
            "fanout": self._fanout,
            "metrics": metric_count,
            "global_count": 0 if root is None else root.count,
            "global_samples": 0 if root is None else root.num_samples,
            "global_guarantee": (
                0 if root is None else root.guaranteed_rank_error()
            ),
        }

    def save_to(self, store: SpillStore) -> None:
        """Persist shard and metric rollups so a warm restart serves the
        same cross-key answers (node/root levels are derived caches)."""
        for i in range(self._num_shards):
            with self._shard_locks[i]:
                summary = self._shards[i]
            if summary is not None:
                store.save_aux(f"{_SHARD_AUX}{i}", summary)
        with self._metric_lock:
            metrics = dict(self._metrics)
        for metric, summary in metrics.items():
            store.save_aux(f"{_METRIC_AUX}{metric}", summary)

    def load_from(self, store: SpillStore) -> None:
        """Reload rollups saved by :meth:`save_to`.

        A shard rollup is just a partition of the ingest history, so if
        the shard count changed across the restart the extra partitions
        fold into ``index % num_shards`` — the global and metric answers
        do not depend on the partitioning.
        """
        for name in store.aux_names():
            summary = store.load_aux(name)
            if summary is None:
                continue
            if name.startswith(_SHARD_AUX):
                index = int(name[len(_SHARD_AUX):]) % self._num_shards
                self.absorb(index, summary)
            elif name.startswith(_METRIC_AUX):
                self.absorb_metric(name[len(_METRIC_AUX):], summary)
