"""The summary registry: millions of keyed summaries, one memory budget.

One :class:`SummaryRegistry` holds a summary per ``(tenant, metric)``
key.  Three ideas make millions of keys workable:

**Append-first ingest.**  The ingest hot path never touches OPAQ
machinery per key: values append to the key's *pending* buffer (a list
of small float64 chunks) and folding into an actual
:class:`~repro.core.OPAQSummary` happens lazily — at the fold
threshold, on query, on eviction, or at shutdown.  A fold sorts the
pending data into an **exact** delta summary (unit gaps, rank error 0)
and merges it in, so laziness costs no accuracy, only deferral.

**Slot accounting + LRU spill.**  Every key is billed in float64 slots
(pending elements + ``3 × num_samples`` folded + fixed overhead)
against a per-shard slice of the global budget.  Crossing the budget
folds and spills the *least-recently-used* keys to the
:class:`~repro.service.tenancy.SpillStore` (byte-identical restore);
without a spill directory the ingest fails with a retryable
:class:`~repro.errors.ServiceError` **before** mutating anything.
Spilled keys keep accepting pending data without being restored — the
disk copy is merged back in at the next fold or query of that key.

**Per-key error budgets.**  Compaction is the only accuracy-losing
operation, and it is gated per key: a fold compacts toward
``max_key_samples`` but *backs off* (retains more samples, doubling)
whenever the compacted guarantee ``g`` would break
``(g - 1) <= per_key_epsilon * count`` for that key's own count.  The
guarantee a key serves therefore reflects its own compaction history —
a hot key compacted fifty times and a cold key compacted never each
carry exactly the bound their history justifies, never a global
average.  Under memory pressure the budget is met by spilling more
keys, never by quietly loosening a key's epsilon.

Cross-key queries (``tenant="*"``) are answered by the
:class:`~repro.service.tenancy.AggregationTree`, which is fed one exact
delta per ingest frame per shard — rollups never touch (or restore)
cold keys.

The summary behind each key is pluggable: any engine in the algorithm
portfolio (:data:`repro.portfolio.ENGINES`) can serve a tenant's keys,
selected by :class:`~repro.service.tenancy.RegistryConfig` — the fold
paragraph above describes the default ``opaq`` engine; sketch engines
absorb the same sorted pending chunks into their own state, and every
answer records which engine served it.  Rollups always fold OPAQ deltas
regardless of per-key engines (mergeability across millions of keys is
exactly OPAQ's strength).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.summary import OPAQSummary
from repro.errors import DataError, EstimationError, ServiceError
from repro.obs import current_tracer
from repro.portfolio import ENGINES, EngineSpec

# The canonical fold primitives live with the OPAQ portfolio engine now;
# re-exported here (and aliased for ``_exact_delta``) so every historical
# import path through the registry keeps working.
from repro.portfolio.opaq import OpaqKeyState, compact_within_budget
from repro.portfolio.opaq import exact_delta as _exact_delta
from repro.service.tenancy.config import RegistryConfig
from repro.service.tenancy.keys import KEY_SEP, WILDCARD, compose_key
from repro.service.tenancy.store import SpillStore
from repro.service.tenancy.tree import AggregationTree

__all__ = ["SummaryRegistry", "KeyAnswer", "compact_within_budget"]


@dataclass(frozen=True)
class KeyAnswer:
    """One keyed quantile answer with its provenance and guarantee.

    ``source`` is ``"resident"``, ``"restored"`` (the key came back off
    disk for this query), ``"rollup:metric"`` or ``"rollup:global"``
    (wildcard answers — their guarantee is the rollup's own, not the
    per-key epsilon).  ``epsilon_bound`` is the served
    ``(guarantee - 1) / count``, the number the per-key contract caps.

    ``engine`` names the portfolio engine that served the answer — it
    also fixes how ``guarantee`` reads: deterministic for ``opaq``/
    ``gk``, per-query-probabilistic for ``kll``, vacuous for ``as95``
    (see ``docs/guarantees.md``).
    """

    tenant: str
    metric: str
    source: str
    count: int
    guarantee: int
    epsilon_bound: float
    compactions: int
    phis: np.ndarray
    psi: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    max_below: np.ndarray
    max_above: np.ndarray
    engine: str = "opaq"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (the HTTP compatibility shim's body).

        JSON round-trips float64 exactly (repr-based), so an answer
        rebuilt from this dict is bit-identical to the wire-native one.
        """
        return {
            "tenant": self.tenant,
            "metric": self.metric,
            "source": self.source,
            "engine": self.engine,
            "count": self.count,
            "guarantee": self.guarantee,
            "epsilon_bound": self.epsilon_bound,
            "compactions": self.compactions,
            "phis": self.phis.tolist(),
            "psi": self.psi.tolist(),
            "lower": self.lower.tolist(),
            "upper": self.upper.tolist(),
            "max_below": self.max_below.tolist(),
            "max_above": self.max_above.tolist(),
        }


class _Block:
    """One frame's worth of a shard's elements, shared by its keys.

    The ingest hot path copies each frame's per-shard segment **once**
    and hands every key a ``(block, lo, hi)`` view instead of a private
    chunk.  The whole block is billed against the shard until the last
    referencing key folds (``live`` hits zero) — deliberately
    conservative: the accounting tracks memory actually retained, not
    memory attributable, so ``used <= budget`` means the bytes are
    really bounded.
    """

    __slots__ = ("data", "live")

    def __init__(self, data: np.ndarray) -> None:
        self.data = data
        self.live = 0


class _KeyEntry:
    __slots__ = ("spec", "state", "pending", "pending_count", "charged")

    def __init__(self, spec: EngineSpec) -> None:
        self.spec = spec
        # The engine's per-key fold state (None until first fold or
        # restore).  For OPAQ it wraps an OPAQSummary with the
        # epsilon-gated fold; for the sketch engines it IS the sketch.
        self.state = None
        self.pending: list[tuple[_Block, int, int]] = []
        self.pending_count = 0
        self.charged = 0  # slots currently billed against the shard

    @property
    def compactions(self) -> int:
        return 0 if self.state is None else int(self.state.compactions)


class _Shard:
    __slots__ = (
        "lock", "entries", "used",
        "elements", "folds", "spills", "restores", "evictions",
    )

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[str, _KeyEntry] = OrderedDict()
        self.used = 0
        self.elements = 0
        self.folds = 0
        self.spills = 0
        self.restores = 0
        self.evictions = 0


def _strided_delta(data: np.ndarray, max_samples: int) -> OPAQSummary:
    """Sorted data -> pre-compacted delta of at most ``max_samples + 1``
    groups, built directly with strided slicing.

    Each group of ``k`` consecutive sorted elements is represented by its
    maximum (the sample) with the group minimum as floor — the same
    bookkeeping a full construction + :meth:`~OPAQSummary.compact` would
    produce, without materialising the frame-sized intermediate summary.
    The rollup feed's hot path: its guarantee (``~k``) is the rollup's
    own and never enters any per-key budget.
    """
    n = data.size
    if n <= max_samples:
        # Small path copies so the summary never pins a caller buffer.
        return _exact_delta(data.copy())
    k = -(-n // max_samples)
    q, r = divmod(n, k)
    last = np.arange(1, q + 1, dtype=np.int64) * k - 1
    samples = data[last]
    floors = data[last - (k - 1)]
    gaps = np.full(q, k, dtype=np.int64)
    if r:
        samples = np.append(samples, data[-1])
        floors = np.append(floors, data[n - r])
        gaps = np.append(gaps, r)
    return OPAQSummary(
        samples=samples,
        gaps=gaps,
        num_runs=1,
        count=n,
        minimum=float(data[0]),
        maximum=float(data[-1]),
        floors=floors,
    )


class SummaryRegistry:
    """Keyed summaries under one global budget; thread-safe.

    Each key is served by a portfolio engine (:data:`repro.portfolio.
    ENGINES`), selected per tenant via :class:`RegistryConfig` —
    ``opaq`` by default.  Pending-buffer accounting, folding, spilling
    and the budget arithmetic are engine-uniform; only the per-key fold
    state differs (an epsilon-gated OPAQ summary, a KLL/GK sketch, or
    an AS95 interval histogram).
    """

    def __init__(self, config: RegistryConfig | None = None) -> None:
        self._cfg = config or RegistryConfig()
        self._shards = [_Shard() for _ in range(self._cfg.num_shards)]
        self._tree = AggregationTree(
            self._cfg.num_shards, self._cfg.rollup_max_samples
        )
        self._store: SpillStore | None = None
        if self._cfg.spill_dir is not None:
            self._store = SpillStore(
                self._cfg.spill_dir,
                loaders={
                    name: spec.load for name, spec in ENGINES.items()
                },
            )
            self._tree.load_from(self._store)
        self._closed = False

    @property
    def config(self) -> RegistryConfig:
        return self._cfg

    def _shard_of(self, key: str) -> int:
        # CRC-32 is process- and run-independent, so a replayed ingest
        # reproduces the same placement and the same shard rollups.
        return zlib.crc32(key.encode("utf-8")) % self._cfg.num_shards

    def _spec_for(self, key: str) -> EngineSpec:
        """The portfolio engine serving this key (per-tenant config)."""
        tenant = key.partition(KEY_SEP)[0]
        return ENGINES[self._cfg.engine_for(tenant)]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self, tenant: str, metric: str, values: Sequence[float] | np.ndarray
    ) -> int:
        """Ingest one key's batch; returns elements absorbed."""
        data = np.ascontiguousarray(values, dtype=np.float64)
        result = self.ingest_frame(
            [compose_key(tenant, metric)],
            np.array([data.size], dtype=np.int64),
            data,
        )
        return int(result["elements"])

    def ingest_frame(
        self,
        keys: Sequence[str],
        counts: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> dict[str, int]:
        """Ingest one wire frame: ``counts[i]`` elements for ``keys[i]``.

        ``values`` is the concatenation of every key's elements in key
        order.  Frames are not transactional: a malformed key fails the
        frame partway (already-appended keys keep their data), which the
        wire layer surfaces as a non-retryable data error.
        """
        if self._closed:
            raise ServiceError("registry is closed")
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if counts.ndim != 1 or values.ndim != 1:
            raise DataError("counts and values must be one-dimensional")
        if len(keys) != counts.size:
            raise DataError(
                f"{len(keys)} keys but {counts.size} counts in keyed frame"
            )
        if counts.size == 0:
            return {"elements": 0, "keys": 0}
        if int(counts.min()) < 0:
            raise DataError("per-key counts cannot be negative")
        total = int(counts.sum())
        if total != values.size:
            raise DataError(
                f"counts sum to {total} but frame carries {values.size} values"
            )
        if total and not bool(np.all(np.isfinite(values))):
            raise DataError("keyed ingest requires finite values")
        num_shards = self._cfg.num_shards
        crc = zlib.crc32
        sep = KEY_SEP
        shard_ids = np.array(
            [crc(key.encode("utf-8")) % num_shards for key in keys],
            dtype=np.int64,
        )
        metrics = [key.partition(sep)[2] for key in keys]
        metric_names = list(dict.fromkeys(metrics))
        if len(metric_names) > 1:
            metric_index = {m: i for i, m in enumerate(metric_names)}
            metric_ids = np.array(
                [metric_index[m] for m in metrics], dtype=np.int64
            )

        # Group the frame's elements by shard in one stable argsort pass;
        # within a shard, elements stay in key order, so the per-key loop
        # just walks a cursor over its shard's contiguous slice.
        elem_shards = np.repeat(shard_ids, counts)
        order = np.argsort(elem_shards, kind="stable")
        grouped = values[order]
        edges = np.arange(num_shards + 1, dtype=np.int64)
        elem_bounds = np.searchsorted(elem_shards[order], edges)
        key_order = np.argsort(shard_ids, kind="stable")
        key_bounds = np.searchsorted(shard_ids[key_order], edges)
        counts_list = counts.tolist()

        touched = 0
        rollup_max = self._cfg.rollup_max_samples
        key_order_list = key_order.tolist()
        for s in range(num_shards):
            klo, khi = int(key_bounds[s]), int(key_bounds[s + 1])
            if klo == khi:
                continue
            elo, ehi = int(elem_bounds[s]), int(elem_bounds[s + 1])
            segment = grouped[elo:ehi]
            block = _Block(segment.copy())
            shard = self._shards[s]
            with shard.lock:
                touched += self._ingest_into_shard_locked(
                    shard, keys, counts_list, block,
                    key_order_list[klo:khi],
                )
                self._enforce_budget_locked(shard)
            if elo == ehi:
                continue
            # Rollup feed happens outside the shard lock (the tree has
            # its own locks and never calls back into a shard).  The
            # in-place sort is safe: the keys reference the block's
            # private copy, not ``grouped``.
            segment.sort()
            self._tree.absorb(s, _strided_delta(segment, rollup_max))

        if len(metric_names) == 1:
            chunk = np.sort(values)
            if chunk.size:
                self._tree.absorb_metric(
                    metric_names[0], _strided_delta(chunk, rollup_max)
                )
        else:
            elem_metrics = np.repeat(metric_ids, counts)
            morder = np.argsort(elem_metrics, kind="stable")
            mgrouped = values[morder]
            mbounds = np.searchsorted(
                elem_metrics[morder],
                np.arange(len(metric_names) + 1, dtype=np.int64),
            )
            for m, metric in enumerate(metric_names):
                chunk = mgrouped[int(mbounds[m]):int(mbounds[m + 1])]
                if chunk.size:
                    chunk.sort()
                    self._tree.absorb_metric(
                        metric, _strided_delta(chunk, rollup_max)
                    )

        tracer = current_tracer()
        tracer.count("service.tenancy.ingest.elements", total)
        tracer.count("service.tenancy.ingest.keys", touched)
        return {"elements": total, "keys": touched}

    def _ingest_into_shard_locked(
        self,
        shard: _Shard,
        keys: Sequence[str],
        counts: list[int],
        block: _Block,
        key_indices: list[int],
    ) -> int:
        if self._store is None:
            # Conservative pre-check (charges overhead for every key as
            # if new) so a budget failure is raised *before* any data is
            # appended — without a spill store the error is the only
            # enforcement mechanism, and it must leave state untouched.
            needed = block.data.size + self._cfg.per_key_overhead * len(
                key_indices
            )
            if shard.used + needed > self._cfg.shard_budget:
                raise ServiceError(
                    "registry memory budget exhausted and no spill_dir is "
                    "configured; retry later, raise memory_budget, or enable "
                    "spilling"
                )
        entries = shard.entries
        overhead = self._cfg.per_key_overhead
        fold_threshold = self._cfg.fold_threshold
        # The loop itself holds a reference so a mid-loop fold (threshold
        # hit) can never unbill the block while it is still being carved.
        shard.used += block.data.size
        block.live = 1
        touched = 0
        pos = 0
        for i in key_indices:
            size = counts[i]
            if size == 0:
                continue
            key = keys[i]
            entry = entries.get(key)
            if entry is None:
                self._validate_key(key)
                entry = _KeyEntry(self._spec_for(key))
                entries[key] = entry
                entry.charged = overhead
                shard.used += overhead
            else:
                entries.move_to_end(key)
            entry.pending.append((block, pos, pos + size))
            block.live += 1
            pos += size
            entry.pending_count += size
            shard.elements += size
            touched += 1
            if entry.pending_count >= fold_threshold:
                self._fold_entry_locked(shard, key, entry)
        self._release_block(shard, block)
        return touched

    @staticmethod
    def _release_block(shard: _Shard, block: _Block) -> None:
        block.live -= 1
        if block.live == 0:
            shard.used -= block.data.size

    @staticmethod
    def _validate_key(key: str) -> None:
        tenant, sep, metric = key.partition(KEY_SEP)
        if not sep or not tenant or not metric or KEY_SEP in metric:
            raise DataError(
                f"malformed registry key {key!r}: expected tenant\\x1fmetric"
            )
        if tenant == WILDCARD or metric == WILDCARD:
            raise DataError(
                "the wildcard component '*' selects rollups at query time "
                "and cannot be ingested into"
            )

    # ------------------------------------------------------------------
    # Fold / spill / budget
    # ------------------------------------------------------------------

    def _fold_entry_locked(
        self, shard: _Shard, key: str, entry: _KeyEntry
    ) -> None:
        """Merge a key's pending data (and any spilled residue) into its
        engine state, compacting under the key's own error budget."""
        cfg = self._cfg
        if entry.state is None and self._store is not None and key in self._store:
            restored, record, _ = self._store.restore(key)
            entry.state = entry.spec.restored_key_state(
                restored,
                record.compactions,
                epsilon=cfg.per_key_epsilon,
                max_samples=cfg.max_key_samples,
            )
            footprint = entry.state.memory_footprint
            entry.charged += footprint
            shard.used += footprint
            shard.restores += 1
        if entry.pending_count == 0:
            return
        pending = entry.pending
        if len(pending) == 1:
            b, lo, hi = pending[0]
            data = b.data[lo:hi].copy()
        else:
            data = np.concatenate([b.data[lo:hi] for b, lo, hi in pending])
        for b, _lo, _hi in pending:
            self._release_block(shard, b)
        entry.pending = []
        entry.pending_count = 0
        data.sort()
        if entry.state is None:
            # Seed randomized engines from the key bytes: deterministic
            # across restarts and replays, decorrelated across keys.
            entry.state = entry.spec.key_state(
                cfg.per_key_epsilon,
                cfg.max_key_samples,
                seed=zlib.crc32(key.encode("utf-8")),
            )
        old_footprint = entry.state.memory_footprint
        entry.state.absorb(data)
        delta_slots = entry.state.memory_footprint - old_footprint
        entry.charged += delta_slots
        shard.used += delta_slots
        shard.folds += 1
        current_tracer().count(f"service.tenancy.fold.{entry.spec.name}")

    def _enforce_budget_locked(self, shard: _Shard) -> None:
        budget = self._cfg.shard_budget
        if shard.used <= budget:
            return
        # Fold before evicting: folding converts pending slices into
        # compacted summaries and releases the shared ingest blocks —
        # pending is billed at block granularity, so without this pass a
        # single wide frame would keep ``used`` pinned above budget
        # until *every* key referencing the block was evicted, spilling
        # the whole shard to disk when an in-memory fold sufficed.
        for key, entry in list(shard.entries.items()):
            if shard.used <= budget:
                return
            if entry.pending_count:
                self._fold_entry_locked(shard, key, entry)
        while shard.used > budget and shard.entries:
            key, entry = shard.entries.popitem(last=False)
            self._fold_entry_locked(shard, key, entry)
            if entry.state is not None and self._store is not None:
                self._store.spill(
                    key,
                    entry.state,
                    compactions=entry.compactions,
                    epsilon=self._cfg.per_key_epsilon,
                    engine=entry.spec.name,
                )
                shard.spills += 1
            shard.used -= entry.charged
            shard.evictions += 1
            current_tracer().count("service.tenancy.evict")

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def quantiles(
        self,
        tenant: str,
        metric: str,
        phis: Sequence[float] | np.ndarray,
    ) -> KeyAnswer:
        """Serve quantile bounds for one key or (via ``"*"``) a rollup."""
        if self._closed:
            raise ServiceError("registry is closed")
        if tenant == WILDCARD:
            return self._rollup_answer(metric, phis)
        if metric == WILDCARD:
            raise DataError(
                "per-tenant rollups are not maintained (they would scale "
                "with key count); wildcard queries support tenant='*' with "
                "a concrete metric or metric='*' for the global rollup"
            )
        key = compose_key(tenant, metric)
        shard = self._shards[self._shard_of(key)]
        source = "resident"
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                if self._store is not None and key in self._store:
                    entry = _KeyEntry(self._spec_for(key))
                    shard.entries[key] = entry
                    entry.charged = self._cfg.per_key_overhead
                    shard.used += self._cfg.per_key_overhead
                    source = "restored"
                else:
                    raise EstimationError(
                        f"no data for tenant={tenant!r} metric={metric!r}"
                    )
            else:
                shard.entries.move_to_end(key)
            self._fold_entry_locked(shard, key, entry)
            state = entry.state
            compactions = entry.compactions
            engine = entry.spec.name
            self._enforce_budget_locked(shard)
        if state is None:
            raise EstimationError(
                f"no data for tenant={tenant!r} metric={metric!r}"
            )
        current_tracer().count("service.tenancy.query")
        return self._answer(
            tenant, metric, source, engine, state, compactions, phis
        )

    def quantiles_many(
        self,
        pairs: Sequence[tuple[str, str]],
        phis: Sequence[float] | np.ndarray,
    ) -> list[KeyAnswer]:
        """One :class:`KeyAnswer` per ``(tenant, metric)`` pair."""
        return [self.quantiles(tenant, metric, phis) for tenant, metric in pairs]

    def _rollup_answer(
        self, metric: str, phis: Sequence[float] | np.ndarray
    ) -> KeyAnswer:
        if metric == WILDCARD:
            summary = self._tree.global_summary()
            source = "rollup:global"
        else:
            summary = self._tree.metric_summary(metric)
            source = "rollup:metric"
        if summary is None:
            raise EstimationError(
                f"no rollup data for metric={metric!r}"
            )
        current_tracer().count("service.tenancy.query.rollup")
        # Rollups are always OPAQ summaries (the tree folds exact deltas
        # regardless of per-key engines); wrap one so the answer path is
        # engine-uniform.  Epsilon 1.0: the rollup's guarantee is its
        # own, not a per-key contract, and this state never absorbs.
        state = OpaqKeyState(
            epsilon=1.0,
            max_samples=summary.num_samples,
            summary=summary,
        )
        return self._answer(WILDCARD, metric, source, "opaq", state, -1, phis)

    @staticmethod
    def _answer(
        tenant: str,
        metric: str,
        source: str,
        engine: str,
        state: object,
        compactions: int,
        phis: Sequence[float] | np.ndarray,
    ) -> KeyAnswer:
        psi, lower, upper, max_below, max_above, fractions = (
            state.bounds_arrays(phis)
        )
        guarantee = int(state.guaranteed_rank_error())
        return KeyAnswer(
            tenant=tenant,
            metric=metric,
            source=source,
            count=state.count,
            guarantee=guarantee,
            epsilon_bound=(guarantee - 1) / state.count,
            compactions=compactions,
            phis=fractions,
            psi=psi,
            lower=lower,
            upper=upper,
            max_below=max_below,
            max_above=max_above,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Registry-wide gauges and counters (one consistent-ish pass)."""
        resident = pending = used = 0
        elements = folds = spills = restores = evictions = 0
        engines: dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                resident += len(shard.entries)
                used += shard.used
                for e in shard.entries.values():
                    pending += e.pending_count
                    name = e.spec.name
                    engines[name] = engines.get(name, 0) + 1
                elements += shard.elements
                folds += shard.folds
                spills += shard.spills
                restores += shard.restores
                evictions += shard.evictions
        return {
            "resident_keys": resident,
            "resident_keys_by_engine": engines,
            "default_engine": self._cfg.engine,
            "spilled_keys": 0 if self._store is None else len(self._store),
            "pending_elements": pending,
            "used_slots": used,
            "budget_slots": self._cfg.memory_budget,
            "num_shards": self._cfg.num_shards,
            "per_key_epsilon": self._cfg.per_key_epsilon,
            "ingested_elements": elements,
            "folds": folds,
            "spills": spills,
            "restores": restores,
            "evictions": evictions,
            "rollups": self._tree.stats(),
        }

    def spill_all(self) -> int:
        """Fold and spill every resident key; returns keys spilled.

        The persistence half of a warm restart: afterwards every key and
        rollup lives in the spill directory and a fresh registry over
        the same directory serves byte-identical answers.
        """
        if self._store is None:
            raise ServiceError("spill_all requires a configured spill_dir")
        spilled = 0
        for shard in self._shards:
            with shard.lock:
                while shard.entries:
                    key, entry = shard.entries.popitem(last=False)
                    self._fold_entry_locked(shard, key, entry)
                    if entry.state is not None:
                        self._store.spill(
                            key,
                            entry.state,
                            compactions=entry.compactions,
                            epsilon=self._cfg.per_key_epsilon,
                            engine=entry.spec.name,
                        )
                        shard.spills += 1
                        spilled += 1
                    shard.used -= entry.charged
        self._tree.save_to(self._store)
        return spilled

    def close(self) -> None:
        """Persist (when spilling is configured) and shut down.  Idempotent."""
        if self._closed:
            return
        if self._store is not None:
            self.spill_all()
            self._store.close()
        self._closed = True  # opaq: ignore[thread-unguarded-write] monotonic latch

    def __enter__(self) -> "SummaryRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
