"""Multi-tenant quantile registry: keyed summaries under one budget.

The tenancy subsystem scales :mod:`repro.service` from one stream to
millions of ``(tenant, metric)`` keys without abandoning the paper's
deterministic guarantees: each key serves the rank-error bound its own
compaction history justifies (``(g-1) <= ε·count`` per key), cold keys
spill to disk and restore byte-identically, and cross-key rollups are
served from an aggregation tree that never touches cold keys.

Entry points:

* :class:`SummaryRegistry` — the registry itself (ingest/query/spill).
* :class:`RegistryConfig` — budget, sharding, epsilon, spill directory.
* :class:`SpillStore` — crash-safe on-disk home of cold summaries.
* :class:`AggregationTree` — shard → node → global rollups.
* :class:`KeyAnswer` — one keyed answer with provenance + guarantee.
"""

from repro.service.tenancy.config import RegistryConfig
from repro.service.tenancy.keys import (
    KEY_SEP,
    WILDCARD,
    compose_key,
    split_key,
    validate_component,
)
from repro.service.tenancy.registry import (
    KeyAnswer,
    SummaryRegistry,
    compact_within_budget,
)
from repro.service.tenancy.store import SpillRecord, SpillStore
from repro.service.tenancy.tree import AggregationTree

__all__ = [
    "KEY_SEP",
    "WILDCARD",
    "AggregationTree",
    "KeyAnswer",
    "RegistryConfig",
    "SpillRecord",
    "SpillStore",
    "SummaryRegistry",
    "compact_within_budget",
    "compose_key",
    "split_key",
    "validate_component",
]
