"""The spill store: cold key summaries on disk, byte-identical back.

Spilled summaries reuse the epoch snapshot machinery's on-disk format —
each key's :class:`~repro.core.OPAQSummary` is one versioned ``.npz``
archive (magic ``OPAQSUM``), exactly the payload
:class:`~repro.service.SnapshotStore` persists per epoch — plus an
append-only JSONL manifest mapping keys to files.  The write discipline
makes every crash window safe:

* **spill** — the archive is written to a temporary name, ``os.replace``d
  into place, and only then recorded in the manifest.  A crash between
  the two leaves an *orphan* file (no record): garbage, collected on the
  next open.  A recorded file is always complete.
* **restore** — the manifest records the restore *before* the file is
  unlinked.  A crash between the two leaves an orphan again; a crash
  before the record leaves the key spilled, and the next open restores
  the same bytes.

The manifest is replayed on open (torn trailing line: ignored — it can
only be the record of an operation whose effects are orphan-safe) and
rewritten compactly once history outgrows the live set, so a registry
that churns keys for months does not replay an unbounded log.

Restores are **byte-identical**: ``samples``/``gaps``/``floors`` travel
as raw arrays and the scalar metadata round-trips through ``repr``-exact
JSON floats, so a spilled-and-restored key answers queries with the same
bytes as one that never left memory (pinned by the determinism property
tests).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.summary import OPAQSummary
from repro.errors import DataError
from repro.obs import current_tracer

__all__ = ["SpillStore", "SpillRecord"]

_MANIFEST = "SPILLS.jsonl"
_MAGIC = "OPAQSPILL"
_VERSION = 1
#: Rewrite the manifest once it holds this many times the live records.
_COMPACT_FACTOR = 4
_COMPACT_MIN_LINES = 64


@dataclass(frozen=True)
class SpillRecord:
    """One spilled key as the manifest describes it.

    ``engine`` names the portfolio engine that produced the archive (and
    therefore the loader that can read it back); manifests written
    before the portfolio carry no engine field and replay as ``opaq``.
    """

    key: str
    file: str
    count: int
    compactions: int
    epsilon: float
    engine: str = "opaq"


class SpillStore:
    """Directory-backed spill/restore of keyed summaries.

    Thread-safe: one internal lock serialises manifest appends and the
    live map.  Callers (registry shards) may spill and restore
    concurrently; the store never calls back into them, so the
    ``shard lock -> store lock`` order is acyclic by construction.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        loaders: Mapping[str, Callable[[Path], Any]] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # engine name -> archive loader; the registry passes the full
        # portfolio, a bare store reads the historical OPAQ format.
        self._loaders: dict[str, Callable[[Path], Any]] = dict(
            loaders if loaders is not None else {"opaq": OPAQSummary.load}
        )
        self._lock = threading.Lock()
        self._live: dict[str, SpillRecord] = {}
        self._aux: dict[str, str] = {}  # name -> file (rollup persistence)
        self._seq = 0
        self._lines = 0
        self._replay()
        self._collect_orphans()
        if self._lines == 0:
            self._append(
                {"op": "head", "magic": _MAGIC, "version": _VERSION}
            )

    # ------------------------------------------------------------------
    # Paths and startup replay
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _replay(self) -> None:
        if not self.manifest_path.exists():
            return
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise DataError(
                f"unreadable spill manifest {self.manifest_path}: {exc}"
            ) from None
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn trailing line: the op it recorded is orphan-safe
            self._lines += 1  # opaq: ignore[thread-unguarded-write] init-confined: replay precedes sharing
            op = record.get("op")
            if op == "head":
                if record.get("magic") != _MAGIC:
                    raise DataError(
                        f"{self.manifest_path} is not an OPAQ spill manifest "
                        f"(magic {record.get('magic')!r})"
                    )
                if record.get("version") != _VERSION:
                    raise DataError(
                        f"spill manifest version {record.get('version')!r} "
                        f"is not {_VERSION}; upgrade or discard the spill dir"
                    )
            elif op == "spill":
                self._live[str(record["key"])] = SpillRecord(  # opaq: ignore[thread-unguarded-write] init-confined: replay precedes sharing
                    key=str(record["key"]),
                    file=str(record["file"]),
                    count=int(record["count"]),
                    compactions=int(record["compactions"]),
                    epsilon=float(record["epsilon"]),
                    engine=str(record.get("engine", "opaq")),
                )
                self._note_seq(str(record["file"]))
            elif op == "restore":
                self._live.pop(str(record["key"]), None)  # opaq: ignore[thread-unguarded-write] init-confined: replay precedes sharing
            elif op == "aux":
                self._aux[str(record["name"])] = str(record["file"])  # opaq: ignore[thread-unguarded-write] init-confined: replay precedes sharing
                self._note_seq(str(record["file"]))
        # Drop records whose file vanished out from under the manifest
        # (external meddling); better an honest cold key than a crash.
        for key in [
            k for k, r in self._live.items()
            if not (self.directory / r.file).exists()
        ]:
            del self._live[key]
        for name in [
            n for n, f in self._aux.items()
            if not (self.directory / f).exists()
        ]:
            del self._aux[name]

    def _note_seq(self, filename: str) -> None:
        stem = Path(filename).stem
        tail = stem.rsplit("-", 1)[-1]
        if tail.isdigit():
            self._seq = max(self._seq, int(tail) + 1)  # opaq: ignore[thread-unguarded-write] init-confined: replay precedes sharing

    def _collect_orphans(self) -> None:
        referenced = {r.file for r in self._live.values()}
        referenced.update(self._aux.values())
        for path in self.directory.glob("spill-*.npz"):
            if path.name not in referenced:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------

    def _append(self, record: dict[str, object]) -> None:
        # One self-contained open/write/close per record: no long-lived
        # handle to leak or to hand between threads, and the close is
        # the flush.  Spill traffic is dominated by the .npz writes, so
        # the extra open is noise.
        with open(self.manifest_path, "a", encoding="utf-8") as log:
            log.write(json.dumps(record) + "\n")
        self._lines += 1  # opaq: ignore[thread-unguarded-write,thread-concurrent-rmw] caller holds self._lock at every call site

    def _maybe_compact(self) -> None:
        live = len(self._live) + len(self._aux) + 1
        if self._lines < max(_COMPACT_MIN_LINES, _COMPACT_FACTOR * live):
            return
        tmp = self.manifest_path.with_name(_MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fresh:
            fresh.write(
                json.dumps({"op": "head", "magic": _MAGIC, "version": _VERSION})
                + "\n"
            )
            for record in self._live.values():
                fresh.write(
                    json.dumps(
                        {
                            "op": "spill",
                            "key": record.key,
                            "file": record.file,
                            "count": record.count,
                            "compactions": record.compactions,
                            "epsilon": record.epsilon,
                            "engine": record.engine,
                        }
                    )
                    + "\n"
                )
            for name, filename in self._aux.items():
                fresh.write(
                    json.dumps({"op": "aux", "name": name, "file": filename})
                    + "\n"
                )
        os.replace(tmp, self.manifest_path)
        self._lines = len(self._live) + len(self._aux) + 1  # opaq: ignore[thread-unguarded-write] caller holds self._lock at every call site

    def _next_file(self) -> str:
        name = f"spill-{self._seq:010d}.npz"
        self._seq += 1  # opaq: ignore[thread-unguarded-write,thread-concurrent-rmw] caller holds self._lock at every call site
        return name

    def _write_summary(self, summary: Any, filename: str) -> int:
        path = self.directory / filename
        tmp = path.with_name(path.name + ".tmp.npz")
        summary.save(tmp)
        os.replace(tmp, path)
        return path.stat().st_size

    # ------------------------------------------------------------------
    # Spill / restore
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._live

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)

    def keys(self) -> list[str]:
        """Spilled keys, in manifest (spill) order."""
        with self._lock:
            return list(self._live)

    def spill(
        self,
        key: str,
        summary: Any,
        *,
        compactions: int,
        epsilon: float,
        engine: str = "opaq",
    ) -> int:
        """Persist one key's summary; returns bytes written.

        Re-spilling a key replaces its previous archive (keep-last-1 per
        key): the new file lands and is recorded before the old one is
        unlinked, so every crash point leaves a loadable version.
        ``engine`` names the portfolio engine whose ``save`` produced the
        archive; it selects the loader at restore time.
        """
        with self._lock:
            filename = self._next_file()
            nbytes = self._write_summary(summary, filename)
            previous = self._live.get(key)
            self._live[key] = SpillRecord(
                key=key,
                file=filename,
                count=summary.count,
                compactions=compactions,
                epsilon=epsilon,
                engine=engine,
            )
            self._append(
                {
                    "op": "spill",
                    "key": key,
                    "file": filename,
                    "count": summary.count,
                    "compactions": compactions,
                    "epsilon": epsilon,
                    "engine": engine,
                }
            )
            if previous is not None:
                (self.directory / previous.file).unlink(missing_ok=True)
            self._maybe_compact()
        current_tracer().count("service.tenancy.spill.bytes", nbytes)
        return nbytes

    def restore(self, key: str) -> tuple[Any, SpillRecord, int]:
        """Load one key back; returns ``(summary, record, bytes_read)``.

        The restore is recorded before the archive is unlinked, so a
        crash in between leaves only an orphan file.  The loader is
        selected by the record's engine; a record written by an engine
        this store was not given a loader for fails loudly instead of
        mis-parsing the archive.
        """
        with self._lock:
            record = self._live.get(key)
            if record is None:
                raise DataError(f"key {key!r} is not spilled in {self.directory}")
            loader = self._loaders.get(record.engine)
            if loader is None:
                raise DataError(
                    f"spilled key {key!r} was written by engine "
                    f"{record.engine!r}, but this store only loads "
                    f"{sorted(self._loaders)}"
                )
            path = self.directory / record.file
            nbytes = path.stat().st_size
            summary = loader(path)
            del self._live[key]
            self._append({"op": "restore", "key": key})
            path.unlink(missing_ok=True)
        current_tracer().count("service.tenancy.restore.bytes", nbytes)
        return summary, record, nbytes

    # ------------------------------------------------------------------
    # Aux summaries (aggregation-tree rollups across restarts)
    # ------------------------------------------------------------------

    def save_aux(self, name: str, summary: OPAQSummary) -> None:
        """Persist a named non-key summary (e.g. a shard rollup)."""
        with self._lock:
            filename = self._next_file()
            self._write_summary(summary, filename)
            previous = self._aux.get(name)
            self._aux[name] = filename
            self._append({"op": "aux", "name": name, "file": filename})
            if previous is not None:
                (self.directory / previous).unlink(missing_ok=True)
            self._maybe_compact()

    def load_aux(self, name: str) -> OPAQSummary | None:
        """Load a named summary saved by :meth:`save_aux`, if present."""
        with self._lock:
            filename = self._aux.get(name)
            if filename is None:
                return None
            return OPAQSummary.load(self.directory / filename)

    def aux_names(self) -> list[str]:
        with self._lock:
            return list(self._aux)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the store.  Idempotent.

        Appends are self-contained (each opens, writes and closes the
        manifest), so there is no handle to release — the method exists
        for lifecycle symmetry with the registry that owns the store.
        """

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
