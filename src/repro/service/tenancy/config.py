"""Configuration of the multi-tenant summary registry.

One validated object carries every knob of the keyed-serving subsystem:
how keys are partitioned across registry shards, how much resident
memory the whole registry may hold (the *global* budget, in float64
slots), the per-key accuracy contract (``per_key_epsilon``), and where
cold summaries spill.

The budget is counted in **slots** — one slot is one float64-sized cell
of payload (8 bytes).  A resident key costs its pending (unfolded)
elements one slot each, plus ``3 × num_samples`` once folded (samples,
gaps and floors arrays), plus a fixed ``per_key_overhead`` that stands
in for the entry bookkeeping.  The budget deliberately counts payload,
not Python object overhead: it is the knob that bounds the data plane,
and it is what the benchmark's resident-set numbers report against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigError
from repro.portfolio import resolve_engine

__all__ = ["RegistryConfig"]


@dataclass(frozen=True)
class RegistryConfig:
    """Parameters of one :class:`~repro.service.tenancy.SummaryRegistry`.

    Parameters
    ----------
    memory_budget:
        Global resident budget in float64 slots (multiply by 8 for
        bytes).  Enforced across *all* keys: when resident payload would
        exceed it, the coldest keys are folded and spilled (with
        ``spill_dir``) or the ingest fails with a retryable
        :class:`~repro.errors.ServiceError` (without).
    num_shards:
        Registry shards — independent lock domains, each with its own
        LRU order and level-0 rollup summary.  Keys map to shards by a
        process-independent CRC-32 of the key bytes, so a replayed
        ingest reproduces the same placement (and therefore the same
        rollup summaries).
    per_key_epsilon:
        The accuracy contract of every key: after any compaction the
        served rank-error guarantee ``g`` must satisfy
        ``(g - 1) <= per_key_epsilon * count`` for that key's own count.
        Compaction backs off (retains more samples) rather than break
        this — under memory pressure the budget is then met by spilling
        more keys, never by quietly loosening a key's guarantee.
    max_key_samples:
        Compaction *target* for a folded key summary.  The error budget
        may retain more than this when the epsilon demands it (see
        above); it never retains less.
    fold_threshold:
        Pending elements a key buffers before its ingest folds them into
        the summary eagerly.  Below the threshold folding is lazy
        (queries, spills and shutdown fold on demand) — the registry's
        ingest hot path is an append, not a merge.
    rollup_max_samples:
        Compaction bound of each aggregation-tree rollup summary (the
        shard-level and merged levels).  Rollups answer cross-key
        queries (``tenant=*``); their guarantee is their own, reported
        per answer, and is *not* covered by ``per_key_epsilon``.
    spill_dir:
        Directory for spilled key summaries (``None``: no spilling — the
        budget is enforced by failing ingest instead).  Restores are
        byte-identical: a spilled-and-restored key serves the same bytes
        as one that never left memory.
    per_key_overhead:
        Slots charged per resident key on top of its payload, standing
        in for entry bookkeeping.  Part of the budget arithmetic so a
        million empty keys cannot claim to cost nothing.
    engine:
        Default portfolio engine backing each key's summary — a name
        from :data:`repro.portfolio.ENGINES` (``opaq``/``kll``/``gk``/
        ``as95``) or a policy alias from
        :data:`repro.portfolio.ENGINE_POLICIES`
        (``deterministic-guarantee``/``mergeable-sketch``/
        ``smallest-memory``).  Resolved to a canonical engine name at
        construction.  Note the guarantee semantics differ per engine —
        see ``docs/guarantees.md``; the per-key epsilon contract is
        honoured by ``opaq``/``gk`` deterministically and by ``kll``
        probabilistically, and is vacuous for ``as95``.
    tenant_engines:
        Per-tenant engine overrides: a mapping (or tuple of pairs)
        ``tenant -> engine-or-policy``.  Tenants not listed use
        ``engine``.  The registry records the serving engine in every
        answer's provenance, so mixed-engine deployments stay auditable.
    """

    memory_budget: int = 8_000_000
    num_shards: int = 8
    per_key_epsilon: float = 0.01
    max_key_samples: int = 512
    fold_threshold: int = 8_192
    rollup_max_samples: int = 8_192
    spill_dir: str | Path | None = None
    per_key_overhead: int = 4
    engine: str = "opaq"
    tenant_engines: tuple[tuple[str, str], ...] | Mapping[str, str] = field(
        default=()
    )

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        if self.memory_budget < 1:
            raise ConfigError(
                "memory_budget must be positive (float64 slots); an "
                "unbounded registry turns key growth into memory exhaustion"
            )
        if not 0.0 < self.per_key_epsilon <= 1.0:
            raise ConfigError(
                "per_key_epsilon must lie in (0, 1]: it is the per-key "
                "rank-error fraction the registry promises to hold"
            )
        if self.max_key_samples < 2:
            raise ConfigError("max_key_samples must be at least 2")
        if self.fold_threshold < 1:
            raise ConfigError("fold_threshold must be at least 1 element")
        if self.rollup_max_samples < 2:
            raise ConfigError("rollup_max_samples must be at least 2")
        if self.per_key_overhead < 0:
            raise ConfigError("per_key_overhead cannot be negative")
        if self.memory_budget // self.num_shards < 1:
            raise ConfigError(
                f"memory_budget of {self.memory_budget} slots split over "
                f"{self.num_shards} shards leaves an empty shard budget; "
                "lower num_shards or raise the budget"
            )
        # Resolve engine names (and policy aliases) once, at the edge:
        # a typo fails construction, not the first fold hours later.
        object.__setattr__(self, "engine", resolve_engine(self.engine))
        pairs = (
            tuple(self.tenant_engines.items())
            if isinstance(self.tenant_engines, Mapping)
            else tuple(tuple(pair) for pair in self.tenant_engines)
        )
        resolved: list[tuple[str, str]] = []
        for pair in pairs:
            if len(pair) != 2:
                raise ConfigError(
                    f"tenant_engines entries must be (tenant, engine) "
                    f"pairs; got {pair!r}"
                )
            tenant, name = pair
            if not tenant:
                raise ConfigError("tenant_engines tenant cannot be empty")
            resolved.append((str(tenant), resolve_engine(str(name))))
        object.__setattr__(self, "tenant_engines", tuple(resolved))
        object.__setattr__(self, "_engine_map", dict(resolved))

    def engine_for(self, tenant: str) -> str:
        """The canonical engine name serving ``tenant``'s keys."""
        return self._engine_map.get(tenant, self.engine)

    @property
    def shard_budget(self) -> int:
        """Per-shard slice of the global budget (documented split: the
        CRC-32 key hash spreads keys uniformly, so equal slices enforce
        the global bound without a global lock)."""
        return self.memory_budget // self.num_shards
