"""The key model: ``(tenant, metric)`` pairs as flat registry keys.

A registry key is the tenant and metric joined by the ASCII unit
separator (``0x1f``) — a character that cannot legally appear in either
component, which makes the composite form unambiguous and cheaply
splittable.  The wildcard component ``"*"`` never names a stored key:
it selects the aggregation tree's rollups at query time
(``tenant="*"`` over all keys, optionally narrowed to one metric).

Components are UTF-8 strings of 1–255 encoded bytes.  The byte bound is
a wire decision (key blocks frame one length byte per component on
protocol v3), enforced here so a key that the registry accepts can
always travel.
"""

from __future__ import annotations

from repro.errors import DataError

__all__ = ["KEY_SEP", "WILDCARD", "compose_key", "split_key", "validate_component"]

#: ASCII unit separator: joins tenant and metric inside a flat key.
KEY_SEP = "\x1f"

#: Query-time wildcard: selects a rollup instead of one key.
WILDCARD = "*"

_MAX_COMPONENT_BYTES = 255


def validate_component(name: str, role: str) -> str:
    """Check one key component (tenant or metric); returns it unchanged."""
    if not isinstance(name, str) or not name:
        raise DataError(f"{role} must be a non-empty string, got {name!r}")
    if KEY_SEP in name:
        raise DataError(
            f"{role} {name!r} contains the reserved key separator (0x1f)"
        )
    if len(name.encode("utf-8")) > _MAX_COMPONENT_BYTES:
        raise DataError(
            f"{role} exceeds {_MAX_COMPONENT_BYTES} UTF-8 bytes: {name[:40]!r}…"
        )
    return name


def compose_key(tenant: str, metric: str) -> str:
    """``(tenant, metric) -> "tenant\\x1fmetric"`` (validated).

    Wildcards pass through — the registry's query path interprets them;
    its ingest path rejects them.
    """
    if tenant != WILDCARD:
        validate_component(tenant, "tenant")
    if metric != WILDCARD:
        validate_component(metric, "metric")
    return tenant + KEY_SEP + metric


def split_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`compose_key`."""
    tenant, sep, metric = key.partition(KEY_SEP)
    if not sep or not tenant or not metric or KEY_SEP in metric:
        raise DataError(
            f"malformed registry key {key!r}: expected tenant\\x1fmetric"
        )
    return tenant, metric
