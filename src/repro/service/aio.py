"""The asyncio wire layer: protocol v3 served over plain TCP.

:class:`AsyncServiceServer` is an ``asyncio.start_server`` loop speaking
the framed binary protocol of :mod:`repro.service.proto`.  One coroutine
per connection reads frames with ``readexactly``, dispatches on the
opcode, and writes one reply frame per request — in request order, so
clients may pipeline: send K frames, then read K replies.

Error discipline (mirrors the protocol module's contract):

* **Framing errors** — truncated header, wrong magic, version skew,
  oversized length — poison the byte stream.  The server sends one typed
  error frame (best effort) and **closes the connection**; nothing after
  a bad header can be trusted.
* **Application errors** — NaN ingest, query before the first epoch,
  backpressure timeout — are request-scoped.  The server replies with a
  typed error frame and **keeps the connection open**; the stream is
  still in sync because the declared payload was consumed.

Blocking service calls (ingest backpressure, snapshot barriers) run in
the default executor under ``asyncio.wait_for`` so a stalled shard can
never wedge the event loop (lint rule OPQ404 covers this module);
queries are lock-free reads and run inline.

:class:`ThreadedBinaryServer` hosts the loop on a daemon thread with the
same start/stop surface as the HTTP server — what ``opaq serve`` and the
tests use.
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import DataError, ReproError, ServiceError
from repro.obs import current_tracer
from repro.service import proto
from repro.service.engine import QuantileService

__all__ = ["AsyncServiceServer", "ThreadedBinaryServer"]

#: Ceiling for one blocking service call on the executor.  Generous —
#: the ingest path has its own (configurable, shorter) backpressure
#: timeout; this is the event loop's last-resort protection.
_REQUEST_TIMEOUT = 120.0


class AsyncServiceServer:
    """Protocol v2 over TCP for one :class:`QuantileService`."""

    def __init__(
        self,
        service: QuantileService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = proto.MAX_PAYLOAD,
        request_timeout: float = _REQUEST_TIMEOUT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_payload = max_payload
        self.request_timeout = request_timeout
        self._server: asyncio.base_events.Server | None = None
        # Encoded-reply cache for QUANTILES, keyed on (epoch, staleness,
        # raw request payload).  Sound because an epoch's summary is
        # immutable once published and staleness participates in the key,
        # so a hit is byte-identical to recomputing.  Dashboards polling
        # a fixed φ-vector hit this on every request after the first.
        self._reply_cache: dict[tuple[int, int, bytes], bytes] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (``port=0``: OS-assigned)."""
        # _server is only ever touched from the event loop's own thread
        # (start/serve_forever/close are coroutines on that loop).
        self._server = await asyncio.start_server(  # opaq: ignore[thread-unguarded-write] event-loop-confined state
            self._serve_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    @property
    def url(self) -> str:
        """Address of the bound socket, as ``opaq://host:port``."""
        return f"opaq://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None  # opaq: ignore[thread-unguarded-write] event-loop-confined state

    # -- connection loop -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._frame_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown: the connection is simply dropped
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # peer (or loop) already gone; nothing left to flush

    async def _frame_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tracer = current_tracer()
        tracer.count("service.proto.connections", 1)
        while True:
            try:
                header = await reader.readexactly(proto.HEADER.size)
            except asyncio.IncompleteReadError:
                return  # EOF between frames (or a torn header): close
            try:
                opcode, length = proto.parse_header(
                    header, max_payload=self.max_payload
                )
                payload = await reader.readexactly(length)
            except (DataError, asyncio.IncompleteReadError) as exc:
                # Framing failure: reply if possible, then close —
                # the stream can no longer be trusted.
                if isinstance(exc, asyncio.IncompleteReadError):
                    exc = ServiceError(
                        "connection closed mid-frame: "
                        f"{len(exc.partial)} of {length} payload bytes"
                    )
                tracer.count("service.proto.errors", 1, fatal=True)
                await self._send_error(writer, exc)
                return
            reply = await self._dispatch(opcode, payload)
            writer.write(reply)
            await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: BaseException
    ) -> None:
        """Best-effort error frame; swallow transport failures."""
        try:
            writer.write(proto.encode_frame(proto.ERROR_OP, proto.encode_error(exc)))
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass  # the peer is gone; the close below is all that is left

    async def _dispatch(self, opcode: int, payload: bytes) -> bytes:
        """One request frame in, one reply frame out (never raises)."""
        tracer = current_tracer()
        tracer.count("service.proto.requests", 1, opcode=opcode)
        try:
            name = proto.Op(opcode).name.lower()
        except ValueError:
            # The header parsed and the payload was consumed, so the
            # stream is still in sync: request-scoped error, stay open.
            tracer.count("service.proto.errors", 1, opcode=opcode)
            return proto.encode_frame(
                proto.ERROR_OP,
                proto.encode_error(
                    DataError(f"unknown opcode {opcode:#x} in a v2 frame")
                ),
            )
        try:
            with tracer.span(f"service.proto.{name}", bytes=len(payload)):
                body = await self._handle(opcode, payload)
            return proto.encode_frame(opcode | proto.REPLY_BIT, body)
        except ReproError as exc:
            tracer.count("service.proto.errors", 1, opcode=opcode)
            return proto.encode_frame(proto.ERROR_OP, proto.encode_error(exc))

    async def _handle(self, opcode: int, payload: bytes) -> bytes:
        if opcode == proto.Op.PING:
            return b""
        if opcode == proto.Op.QUANTILES:
            # Lock-free snapshot read + one vectorised searchsorted sweep:
            # cheap enough to answer inline on the event loop.  The only
            # lock on the path is the uncontended-by-design state-lock
            # bump of the query counter, never held across I/O.
            return self._answer_quantiles(payload)  # opaq: ignore[async-blocking-call]
        if opcode == proto.Op.INGEST:
            values = proto.decode_ingest_request(payload)
            result = await self._blocking(lambda: self.service.ingest(values))
            return proto.encode_ingest_reply(
                int(result["accepted"]), int(result["epoch"])
            )
        if opcode == proto.Op.INGEST_KEYED:
            keys, counts, values = proto.decode_ingest_keyed_request(payload)
            result = await self._blocking(
                lambda: self.service.ingest_keyed(keys, counts, values)
            )
            return proto.encode_ingest_keyed_reply(
                int(result["elements"]), int(result["keys"])
            )
        if opcode == proto.Op.QUANTILES_KEYED:
            # Keyed queries may fold pending data, restore a spilled key
            # or trigger evictions — registry work, off the event loop.
            keys, phis = proto.decode_quantiles_keyed_request(payload)
            answers = await self._blocking(
                lambda: self.service.quantiles_keyed(keys, phis)
            )
            return proto.encode_quantiles_keyed_reply(answers)
        if opcode == proto.Op.SNAPSHOT:
            snapshot = await self._blocking(self.service.snapshot)
            return proto.encode_snapshot_reply(
                snapshot.epoch,
                snapshot.count,
                snapshot.guarantee,
                snapshot.summary.num_samples,
            )
        if opcode == proto.Op.STATS:
            # stats() folds per-tenant shards under their locks and may
            # touch spill files — registry work, off the event loop.
            stats = await self._blocking(self.service.stats)
            return proto.encode_stats_reply(stats)
        raise DataError(f"unknown opcode {opcode:#x} in a v2 frame")

    _REPLY_CACHE_MAX = 128

    def _answer_quantiles(self, payload: bytes) -> bytes:
        snapshot = self.service.current_epoch
        key = None
        if snapshot is not None:
            key = (snapshot.epoch, self.service.staleness, payload)
            cached = self._reply_cache.get(key)
            if cached is not None:
                return cached
        phis = proto.decode_quantiles_request(payload)
        body = proto.encode_quantiles_reply(self.service.query_arrays(phis))
        if key is not None:
            if len(self._reply_cache) >= self._REPLY_CACHE_MAX:
                # FIFO eviction; entries for dead epochs age out with it.
                self._reply_cache.pop(next(iter(self._reply_cache)))
            self._reply_cache[key] = body
        return body

    async def _blocking(self, fn):  # noqa: ANN001, ANN202 - thin shim
        """Run a blocking service call off the event loop, bounded."""
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(None, fn), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                f"service call exceeded the {self.request_timeout:g}s "
                "request ceiling; the shards may be wedged"
            ) from None


class ThreadedBinaryServer:
    """Hosts :class:`AsyncServiceServer` on a daemon thread.

    The synchronous face of the binary wire layer — same start/stop
    shape as :class:`~repro.service.http.ServiceHTTPServer`, used by
    ``opaq serve --proto binary`` and anything else that is not itself
    an asyncio application.
    """

    def __init__(
        self,
        service: QuantileService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = proto.MAX_PAYLOAD,
    ) -> None:
        self._async = AsyncServiceServer(
            service, host=host, port=port, max_payload=max_payload
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._main_task: asyncio.Task | None = None
        self._thread = threading.Thread(
            target=self._run, name="opaq-binary-server", daemon=True
        )

    @property
    def service(self) -> QuantileService:
        return self._async.service

    @property
    def url(self) -> str:
        """``opaq://host:port`` of the bound socket (after start)."""
        return self._async.url

    def start(self, timeout: float = 10.0) -> None:
        """Bind and serve; returns once the socket is accepting."""
        if self._thread.ident is not None:
            raise ServiceError(
                "binary server already started; create a new instance "
                "to serve again"
            )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError(
                f"binary server did not come up within {timeout:g}s"
            )
        if self._startup_error is not None:
            raise ServiceError(
                f"binary server failed to start: {self._startup_error}"
            ) from self._startup_error

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel the serve loop and join the thread.  Idempotent."""
        loop, task = self._loop, self._main_task
        if loop is not None and task is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(task.cancel)
        self._thread.join(timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._main_task = asyncio.current_task()
        try:
            await self._async.start()
        except BaseException as exc:  # opaq: ignore[exception-broad-except] surfaced to start() on the caller's thread
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._async.serve_forever()
        except asyncio.CancelledError:
            pass  # stop() requested
        finally:
            await self._async.close()

    def __enter__(self) -> "ThreadedBinaryServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
