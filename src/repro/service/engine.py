"""The quantile service: router + shard workers + snapshotter + queries.

:class:`QuantileService` is the in-process subsystem the wire layer
(:mod:`repro.service.http`) wraps.  Data flow::

    ingest(batch) --route--> [shard queue]* --worker--> IncrementalOPAQ*
                                                             |
                         snapshot() / snapshot_every: barrier, merge,
                         compact, persist, atomic swap
                                                             |
    query(phi) <------ current EpochSnapshot (immutable, lock-free) <-+

Queries are answered from the current epoch's merged summary with the
paper's deterministic enclosure: the true φ-quantile of the snapshotted
data lies in ``[lower, upper]`` with at most ``2·guarantee`` elements
between the bounds, where ``guarantee`` is recomputed exactly from the
merged run layout (:meth:`~repro.core.OPAQSummary.guaranteed_rank_error`).
Elements ingested after the served epoch are reported as ``staleness``,
never silently mixed into an answer.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.bounds import QuantileBounds
from repro.core.quantile_phase import bounds_arrays
from repro.errors import DataError, EstimationError, ServiceError
from repro.obs import current_tracer
from repro.service.config import ServiceConfig
from repro.service.proto import QuantileVector
from repro.service.router import ShardRouter
from repro.service.shard import ShardWorker
from repro.service.snapshot import EpochSnapshot, SnapshotStore, Snapshotter
from repro.service.tenancy.config import RegistryConfig
from repro.service.tenancy.keys import split_key
from repro.service.tenancy.registry import KeyAnswer, SummaryRegistry

__all__ = ["QuantileService", "QueryResult", "QuantileVector"]


@dataclass(frozen=True)
class QueryResult:
    """Answers for one query call, tied to the epoch that produced them."""

    epoch: int
    count: int
    guarantee: int
    staleness: int
    bounds: list[QuantileBounds]

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (the wire layer's response body)."""
        return {
            "epoch": self.epoch,
            "count": self.count,
            "guarantee": self.guarantee,
            "staleness": self.staleness,
            "results": [
                {
                    "phi": b.phi,
                    "rank": b.rank,
                    "lower": b.lower,
                    "upper": b.upper,
                    "max_below": b.max_below,
                    "max_above": b.max_above,
                    "max_between": b.max_between,
                }
                for b in self.bounds
            ],
        }


class QuantileService:
    """Sharded, epoch-snapshotted quantile serving over OPAQ summaries."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        key_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._router = ShardRouter(
            self.config.num_shards,
            key_fn=key_fn,
            policy=self.config.router_policy,
        )
        self._workers = [
            ShardWorker(shard, self.config)
            for shard in range(self.config.num_shards)
        ]
        store = (
            SnapshotStore(self.config.snapshot_dir)
            if self.config.snapshot_dir is not None
            else None
        )
        self._snapshotter = Snapshotter(
            self._workers,
            store=store,
            max_merged_samples=self.config.max_merged_samples,
            retain=self.config.snapshot_retain,
        )
        self._restored = self._snapshotter.restore()
        # The multi-tenant registry behind the keyed opcodes.  Built
        # eagerly: with a spill directory configured it replays the
        # spill manifest here, so a warm restart serves keyed answers
        # before the first keyed ingest.
        self._registry = SummaryRegistry(self.config.tenancy or RegistryConfig())
        #: Guards the operational counters below: ingest() and query() run
        #: on whatever thread calls them — under the HTTP layer that is a
        #: thread per request — so the += updates race without it.
        self._state_lock = threading.Lock()
        #: Elements accepted into shard queues this process lifetime.
        self._accepted = 0
        self._since_snapshot = 0
        self._queries = 0
        self._closed = False
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def ingest(
        self, values: Sequence[float] | np.ndarray, timeout: float | None = None
    ) -> dict[str, int]:
        """Route one batch across the shards (blocking backpressure).

        The primary signature is array-in: pass a 1-D ``np.ndarray`` (or
        any numeric sequence).  Scalar ingest is deprecated — wrap the
        value in an array; per-element calls are exactly the per-request
        overhead the batched API exists to amortise.

        Returns ``{"accepted": n, "epoch": current}``; raises
        :class:`~repro.errors.ServiceError` when a shard queue stays full
        past the backpressure timeout and
        :class:`~repro.errors.DataError` for NaN or non-1-D input.
        """
        self._check_open()
        if isinstance(values, (int, float)):
            warnings.warn(
                "scalar ingest(x) is deprecated; pass a batched "
                "np.ndarray (ingest(np.asarray([x])))",
                DeprecationWarning,
                stacklevel=2,
            )
            values = np.asarray([values], dtype=np.float64)
        parts = self._router.split(values)
        accepted = 0
        for worker, part in zip(self._workers, parts):
            if part.size:
                worker.submit(part, timeout=timeout)
                accepted += int(part.size)
        with self._state_lock:
            self._accepted += accepted
            self._since_snapshot += accepted
        tracer = current_tracer()
        tracer.count("service.ingest.elements", accepted)
        tracer.count("service.ingest.batches", 1, shards=self.config.num_shards)
        if (
            self.config.snapshot_every is not None
            and self._since_snapshot >= self.config.snapshot_every
        ):
            self.snapshot()
        current = self._snapshotter.current
        return {
            "accepted": accepted,
            "epoch": current.epoch if current else 0,
        }

    # ------------------------------------------------------------------
    # Keyed (multi-tenant) path
    # ------------------------------------------------------------------

    @property
    def registry(self) -> SummaryRegistry:
        """The multi-tenant summary registry behind the keyed opcodes."""
        return self._registry

    def ingest_keyed(
        self,
        keys: Sequence[str],
        counts: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> dict[str, int]:
        """Route one keyed frame into the registry.

        ``keys`` are composite ``tenant\\x1fmetric`` strings (the wire
        form; see :func:`~repro.service.tenancy.compose_key`), ``counts``
        the per-key element counts and ``values`` the concatenation of
        every key's elements in key order.  Returns
        ``{"elements": n, "keys": k}``.  Keyed data lives entirely in the
        registry — it does not advance the epoch machinery or appear in
        the unkeyed quantile answers.
        """
        self._check_open()
        return self._registry.ingest_frame(keys, counts, values)

    def quantiles_keyed(
        self,
        keys: Sequence[str],
        phis: Sequence[float] | np.ndarray,
    ) -> list[KeyAnswer]:
        """One :class:`~repro.service.tenancy.KeyAnswer` per composite key.

        Wildcard components (``"*"``) select aggregation-tree rollups;
        concrete keys are served resident or restored from the spill
        store, each with the rank-error guarantee its own compaction
        history justifies.
        """
        self._check_open()
        pairs = [split_key(key) for key in keys]
        return self._registry.quantiles_many(pairs, phis)

    # ------------------------------------------------------------------
    # Snapshot / epoch control
    # ------------------------------------------------------------------

    def snapshot(self) -> EpochSnapshot:
        """Advance one epoch now (barrier + merge + persist + swap)."""
        self._check_open()
        snapshot = self._snapshotter.run_epoch()
        with self._state_lock:
            self._since_snapshot = 0
        return snapshot

    @property
    def current_epoch(self) -> EpochSnapshot | None:
        """The served epoch (None until data is snapshotted)."""
        return self._snapshotter.current

    @property
    def restored_epoch(self) -> EpochSnapshot | None:
        """The epoch adopted from disk at startup, if any."""
        return self._restored

    # ------------------------------------------------------------------
    # Query path (lock-free; never blocks on writers)
    # ------------------------------------------------------------------

    def quantiles(self, phis: Sequence[float] | np.ndarray) -> QueryResult:
        """Quantile bounds for a whole φ-vector — the primary query call.

        Array-in/array-out: every fraction is answered in one vectorised
        ``searchsorted`` sweep over the merged summary
        (:func:`~repro.core.quantile_phase.bounds_arrays`), bit-identical
        to the scalar path but with per-call cost independent of the
        number of fractions.
        """
        vector = self.query_arrays(phis)
        bounds = [
            QuantileBounds(
                phi=float(vector.phis[i]),
                rank=int(vector.ranks[i]),
                lower=float(vector.lower[i]),
                upper=float(vector.upper[i]),
                max_below=int(vector.max_below[i]),
                max_above=int(vector.max_above[i]),
            )
            for i in range(len(vector.phis))
        ]
        return QueryResult(
            epoch=vector.epoch,
            count=vector.count,
            guarantee=vector.guarantee,
            staleness=vector.staleness,
            bounds=bounds,
        )

    def query_arrays(
        self, phis: Sequence[float] | np.ndarray
    ) -> QuantileVector:
        """The wire-native form of :meth:`quantiles`: parallel arrays.

        This is the serving hot path — no per-φ object construction, so
        protocol v3 can frame the answer straight from the arrays.
        """
        snapshot = self._snapshotter.current
        if snapshot is None:
            raise EstimationError(
                "no epoch snapshot to serve yet: ingest data and call "
                "snapshot() (or configure snapshot_every)"
            )
        try:
            wanted = np.ascontiguousarray(phis, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataError(
                f"unparseable quantile fractions: {exc}"
            ) from None
        tracer = current_tracer()
        with tracer.span("service.query", queries=int(wanted.size)):
            psi, lower, upper, max_below, max_above, fractions = bounds_arrays(
                snapshot.summary, wanted
            )
        with self._state_lock:
            self._queries += fractions.size
        tracer.count(
            "service.query.count", fractions.size, epoch=snapshot.epoch
        )
        return QuantileVector(
            epoch=snapshot.epoch,
            count=snapshot.count,
            guarantee=snapshot.guarantee,
            staleness=self.staleness,
            phis=fractions,
            ranks=psi,
            lower=lower,
            upper=upper,
            max_below=max_below,
            max_above=max_above,
        )

    def query(self, phis: Sequence[float] | float) -> QueryResult:
        """Deprecated-compat spelling of :meth:`quantiles`.

        Vector input delegates unchanged; scalar input (``query(0.5)``)
        is deprecated — pass ``quantiles([0.5])``.
        """
        if isinstance(phis, (int, float)):
            warnings.warn(
                "scalar query(phi) is deprecated; call quantiles([phi]) "
                "with a fraction vector",
                DeprecationWarning,
                stacklevel=2,
            )
            phis = [float(phis)]
        return self.quantiles(phis)

    def estimate(
        self, source: np.ndarray, phis: Sequence[float]
    ) -> list[QuantileBounds]:
        """Batch counterpart of the streaming path: one POPAQ pass.

        Partitions ``source`` across ``num_shards`` workers on the
        configured execution backend (``ServiceConfig.backend``) and
        answers from the single merged summary, bypassing the ingest
        queues and the epoch machinery entirely.  Nothing is retained:
        this neither advances the epoch nor touches the shard estimators.
        Useful for ad-hoc questions over data that is already at hand —
        the streaming path exists for data that is not.
        """
        self._check_open()
        # Imported here, not at module level: the service's streaming core
        # must stay importable without the parallel layer.
        from repro.parallel import ParallelOPAQ

        popaq = ParallelOPAQ(
            self.config.num_shards,
            self.config.opaq_config(),
            backend=self.config.backend,
        )
        result = popaq.run(np.asarray(source, dtype=np.float64), phis)
        with self._state_lock:
            self._queries += len(list(phis))
        return result.bounds(phis)

    @property
    def staleness(self) -> int:
        """Elements accepted but not yet covered by the served epoch."""
        snapshot = self._snapshotter.current
        covered = snapshot.count if snapshot else 0
        restored = self._restored.count if self._restored else 0
        return restored + self._accepted - covered

    def stats(self) -> dict[str, object]:
        """Operational counters (the wire layer's ``/stats`` body)."""
        snapshot = self._snapshotter.current
        return {
            "shards": self.config.num_shards,
            "accepted": self._accepted,
            "queries": self._queries,
            "epoch": snapshot.epoch if snapshot else 0,
            "count": snapshot.count if snapshot else 0,
            "guarantee": snapshot.guarantee if snapshot else None,
            "staleness": self.staleness,
            "samples": snapshot.summary.num_samples if snapshot else 0,
            "closed": self._closed,
            "tenancy": self._registry.stats(),
            "per_shard": [
                {
                    "shard": w.shard_id,
                    "ingested": w.ingested,
                    "pending_batches": w.pending,
                    "folds": w.folds,
                    "samples": (
                        w.summary.num_samples if w.summary is not None else 0
                    ),
                    # The shard's own error budget.  The merged epoch's
                    # "guarantee" above is NOT the max of these: merging
                    # composes the budgets (see the accounting pinned in
                    # tests/core/test_merge_algebra.py), which is why it
                    # degrades as shards rise — reported separately here
                    # so the trade is visible, never hidden.
                    "guarantee": (
                        w.summary.guaranteed_rank_error()
                        if w.summary is not None
                        else None
                    ),
                }
                for w in self._workers
            ],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, final_snapshot: bool = True) -> None:
        """Stop the workers; by default flush a final epoch first.

        Idempotent.  With ``final_snapshot`` the shutdown epoch lands in
        the snapshot store, so a subsequent warm restart serves every
        element this process ever accepted.
        """
        if self._closed:
            return
        if final_snapshot and (
            self._since_snapshot or self._snapshotter.current is None
        ):
            try:
                self.snapshot()
            except EstimationError:
                pass  # nothing ingested: nothing to persist
        for worker in self._workers:
            worker.stop()
        # Registry shutdown spills every resident key when a spill
        # directory is configured — the keyed half of the warm restart.
        self._registry.close()
        # A monotonic bool latch: racing readers see either open or
        # closed, both of which are coherent states.
        self._closed = True  # opaq: ignore[thread-unguarded-write] monotonic latch
        current_tracer().count("service.closed", 1)

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def __enter__(self) -> "QuantileService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
