"""repro.service — a sharded quantile-serving subsystem on OPAQ summaries.

The summary that one pass produces (:class:`~repro.core.OPAQSummary`) is
mergeable, compactable and serialisable — exactly the properties a
production serving system needs.  This package turns them into one:

- :class:`ShardRouter` — deterministic hash, chunk, or user-keyed
  partitioning of ingest batches across shards;
- :class:`ShardWorker` — per-shard worker threads feeding
  :class:`~repro.core.IncrementalOPAQ` through **bounded** queues whose
  blocking is the backpressure signal;
- :class:`Snapshotter` / :class:`SnapshotStore` — epoch-based merge of
  the shard summaries into one compacted, queryable summary, swapped in
  atomically (readers never block on writers) and persisted in a
  versioned on-disk format for warm restarts;
- :class:`QuantileService` — the assembled engine: batched ``ingest`` /
  ``quantiles`` / ``stats`` / ``snapshot`` / ``close``;
- :mod:`repro.service.proto` + :mod:`repro.service.aio` — wire protocol
  v2: compact binary frames served by an asyncio loop
  (:class:`ThreadedBinaryServer`, ``opaq serve``);
- :mod:`repro.service.http` — the JSON/HTTP compatibility layer
  (protocol v1), byte-identical answers to the binary path;
- :class:`ServiceClient` — one batched client for both transports,
  selected by address scheme (``opaq://`` or ``http://``);
- :mod:`repro.service.tenancy` — the multi-tenant registry behind the
  keyed opcodes: millions of ``(tenant, metric)`` summaries under one
  memory budget, with LRU spill to disk, per-key error budgets and an
  aggregation tree for ``tenant="*"`` rollups
  (:class:`SummaryRegistry`, :class:`RegistryConfig`,
  :class:`KeyAnswer`).

Every query carries the paper's deterministic guarantee, recomputed
exactly for the merged run layout: the true φ-quantile of the served
epoch lies in ``[lower, upper]`` with at most ``2·guarantee`` elements
between the bounds.  See ``docs/service.md`` for the architecture and
the wire-level protocol reference.
"""

from repro.service.aio import AsyncServiceServer, ThreadedBinaryServer
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.engine import QuantileService, QueryResult
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.proto import QuantileVector
from repro.service.router import ShardRouter, hash_shard_indices
from repro.service.shard import ShardWorker
from repro.service.snapshot import EpochSnapshot, SnapshotStore, Snapshotter
from repro.service.tenancy import KeyAnswer, RegistryConfig, SummaryRegistry

__all__ = [
    "ServiceConfig",
    "QuantileService",
    "QueryResult",
    "QuantileVector",
    "ShardRouter",
    "hash_shard_indices",
    "ShardWorker",
    "EpochSnapshot",
    "SnapshotStore",
    "Snapshotter",
    "ServiceClient",
    "ServiceHTTPServer",
    "AsyncServiceServer",
    "ThreadedBinaryServer",
    "make_server",
    "RegistryConfig",
    "SummaryRegistry",
    "KeyAnswer",
]
