"""Ablation A9: equi-depth (OPAQ) vs equi-width selectivity under skew.

The paper's opening motivation, made measurable: "equi-depth histograms
... have been used to estimate query result sizes.  In the past,
equi-depth histograms have not worked well for range queries when data
distribution skew has been high.  Our new algorithm ... promises better
results due to its combination of accuracy and efficiency features."

Both histograms get the same memory; range queries of several widths run
over increasingly skewed Zipf workloads.  Reported: mean absolute
selectivity error.  The equal-width grid degrades with skew; the
OPAQ-backed equi-depth bands do not (and only they carry guarantees).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.apps import EquiDepthHistogram, EquiWidthHistogram
from repro.core import OPAQ, OPAQConfig
from repro.experiments import TableResult

_N = 200_000
_BUCKETS = 50  # equi-depth buckets; equal-width gets 3x the counters


def _quantile_anchored_queries(rng, sorted_data, count=200):
    """Range predicates where real queries live: anchored at data
    quantiles, so every query covers actual value mass."""
    u = rng.uniform(0.0, 0.95, size=count)
    w = rng.uniform(0.01, 0.3, size=count)
    n = sorted_data.size
    lo_idx = (u * (n - 1)).astype(np.int64)
    hi_idx = (np.minimum(u + w, 1.0) * (n - 1)).astype(np.int64)
    return np.column_stack([sorted_data[lo_idx], sorted_data[hi_idx]])


def _compare():
    rng = np.random.default_rng(41)
    result = TableResult(
        title=(
            f"Ablation A9: range-selectivity error vs value skew "
            f"(n={_N:,}, {_BUCKETS} equi-depth buckets, mean |error|)"
        ),
        header=["value skew (lognormal sigma)", "equi-depth (OPAQ)", "equi-width", "width/depth"],
    )
    ratios = {}
    for sigma in (0.0, 1.0, 2.0, 3.0):
        base = rng.normal(size=_N) * sigma
        data = np.exp(base) if sigma else rng.uniform(0.0, 1.0, size=_N)
        sd = np.sort(data)
        lo, hi = float(sd[0]), float(sd[-1])
        summary = OPAQ(OPAQConfig(run_size=_N // 10, sample_size=1000)).summarize(data)
        depth = EquiDepthHistogram(summary, _BUCKETS)
        width = EquiWidthHistogram(lo, np.nextafter(hi, np.inf), 3 * _BUCKETS)
        width.update(data)
        queries = _quantile_anchored_queries(rng, sd)
        depth_err = []
        width_err = []
        for q_lo, q_hi in queries:
            true = (
                np.searchsorted(sd, q_hi, side="right")
                - np.searchsorted(sd, q_lo, side="left")
            ) / data.size
            depth_err.append(abs(depth.selectivity(q_lo, q_hi).estimate - true))
            width_err.append(abs(width.selectivity(q_lo, q_hi) - true))
        d, w = float(np.mean(depth_err)), float(np.mean(width_err))
        ratios[sigma] = w / max(d, 1e-9)
        result.add_row(sigma, f"{d:.5f}", f"{w:.5f}", f"{ratios[sigma]:.1f}x")
    result.paper_reference["ratios"] = ratios
    return result


def bench_selectivity_vs_skew(benchmark, show):
    result = run_once(benchmark, _compare)
    show(result)
    ratios = result.paper_reference["ratios"]
    # Under heavy value skew the equal-width error dwarfs equi-depth's...
    assert ratios[3.0] > 10.0
    # ...while equi-depth stays essentially skew-independent (and is the
    # only one of the two with deterministic bands).
    depth_errors = [float(r[1]) for r in result.rows]
    assert max(depth_errors) < 0.01
    benchmark.extra_info["width_over_depth"] = ratios
