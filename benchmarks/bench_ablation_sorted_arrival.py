"""Ablation A6: adversarial arrival order — where OPAQ's distribution
independence actually bites.

Table 7's workloads arrive in random order, which flatters the interval
method ([AS95]): its on-the-fly boundary adjustment sees a representative
prefix, and its midpoint splits are exactly right for uniform values.
Feed it *skewed values in sorted order* and the splits misallocate counts:
its worst error climbs past OPAQ's deterministic bound, while OPAQ's error
(a function of ranks only) stays put.  This is the paper's core claim —
"it does not provide an upper bound of the error rate" — made measurable.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import AdaptiveIntervalEstimator, consume
from repro.core import OPAQ, OPAQConfig, bounds_for
from repro.experiments import TableResult
from repro.metrics import (
    dectile_fractions,
    rera_bound,
    rera_per_quantile,
    rera_point_estimates,
    true_quantiles,
)
from repro.workloads import make_generator

_N = 100_000
_S = 1000  # r = 3 runs -> r*s = 3000 keys, equal to 1500 intervals


def _opaq_rera(arr, sd, trues, phis):
    config = OPAQConfig(run_size=-(-_N // 3), sample_size=_S)
    bounds = bounds_for(OPAQ(config).summarize(arr), phis)
    return rera_per_quantile(
        sd,
        trues,
        np.array([b.lower for b in bounds]),
        np.array([b.upper for b in bounds]),
    )


def _as95_rera(arr, sd, trues, phis):
    est = consume(AdaptiveIntervalEstimator(intervals=1500), arr, run_size=5000)
    return rera_point_estimates(sd, trues, est.query_many(phis))


def _sorted_arrival():
    data = make_generator("zipf", parameter=0.2).generate(_N, seed=31)
    sd = np.sort(data)
    phis = dectile_fractions()
    trues = true_quantiles(sd, phis)
    result = TableResult(
        title=(
            f"Ablation A6: random vs sorted arrival, skewed values "
            f"(zipf 0.2, n={_N:,}, equal memory, max RERA %)"
        ),
        header=["method", "random arrival", "sorted arrival", "guaranteed bound"],
    )
    rows = {}
    for name, fn in (("OPAQ", _opaq_rera), ("AS95", _as95_rera)):
        random_err = float(fn(data, sd, trues, phis).max())
        sorted_err = float(fn(sd.copy(), sd, trues, phis).max())
        rows[name] = (random_err, sorted_err)
        bound = f"{rera_bound(_S):.2f}" if name == "OPAQ" else "none"
        result.add_row(name, f"{random_err:.3f}", f"{sorted_err:.3f}", bound)
    result.paper_reference["rows"] = rows
    return result


def bench_sorted_arrival(benchmark, show):
    result = run_once(benchmark, _sorted_arrival)
    show(result)
    rows = result.paper_reference["rows"]
    opaq_random, opaq_sorted = rows["OPAQ"]
    as95_random, as95_sorted = rows["AS95"]
    # OPAQ honours its bound under both orders.
    assert opaq_random <= rera_bound(_S)
    assert opaq_sorted <= rera_bound(_S)
    # The interval method degrades under sorted skewed arrival — past the
    # bound OPAQ guarantees with the same memory.
    assert as95_sorted > as95_random
    assert as95_sorted > rera_bound(_S)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["opaq_bound"] = rera_bound(_S)
