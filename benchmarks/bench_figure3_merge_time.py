"""Figure 3: executed merge time, bitonic vs sample, 1K-128K bytes/proc.

Paper claim: "The Bitonic merge outperforms the sample merge for small
number of processors and small data sets.  For large number of processors
and large data sets, the sample merge outperforms the Bitonic merge."
"""

from benchmarks.conftest import run_once
from repro.experiments import figure3


def bench_figure3(benchmark, show):
    result = run_once(benchmark, figure3)
    show(result)
    # Crossovers must exist for the larger machines.
    assert result.paper_reference["crossover_p8"] != "none"
    assert result.paper_reference["crossover_p4"] != "none"
    # Bitonic wins the smallest configuration (1KB, p=2).
    first = result.rows[0]
    assert float(first[1]) < float(first[4])
    # Sample merge wins the largest (128KB, p=8).
    last = result.rows[-1]
    assert float(last[6]) < float(last[3])
    benchmark.extra_info["crossover_p8"] = result.paper_reference["crossover_p8"]
