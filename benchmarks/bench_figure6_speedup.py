"""Figure 6: speed-up at a fixed total size (paper: 4M elements).

Paper claim: near-linear speed-up through p=8 ("our algorithm has a high
speedup performance ... due to the low cost of the global merge").
"""

from benchmarks.conftest import run_once
from repro.experiments import figure6


def bench_figure6(benchmark, show):
    result = run_once(benchmark, figure6)
    show(result)
    speedup_at_8 = result.paper_reference["speedup_at_8"]
    assert speedup_at_8 > 6.5  # paper's figure shows ~7 at p=8
    benchmark.extra_info["speedup_at_8"] = speedup_at_8
    benchmark.extra_info["paper_speedup_at_8"] = 7.0
