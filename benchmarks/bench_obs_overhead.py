"""Observability overhead: with no sink configured, tracing is free.

The design target (docs/api.md) is that instrumentation with no tracer
installed — the production default — costs one ambient lookup and an
attribute check per site, i.e. under 5% of the sample phase's runtime.
This benchmark times the full pass in three modes:

- ``disabled``  — no tracer installed (the default path);
- ``null sink`` — a live tracer draining into :class:`NullSink`
  (events are built and dropped);
- ``memory``    — a full :class:`MemorySink` capture.

and asserts the ordering claim the zero-cost path is designed around:
the disabled path does strictly less work than a live tracer, so it must
not be measurably slower than the null-sink run.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import OPAQ, OPAQConfig
from repro.obs import MemorySink, NullSink, current_tracer, tracing

N = 400_000
CONFIG = OPAQConfig(run_size=20_000, sample_size=500)


def _best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_obs_disabled_path_is_free(benchmark):
    data = np.random.default_rng(23).uniform(size=N)
    est = OPAQ(CONFIG)

    def disabled() -> None:
        est.summarize(data)

    def null_sink() -> None:
        with tracing(NullSink()):
            est.summarize(data)

    def memory() -> None:
        with tracing(MemorySink()):
            est.summarize(data)

    disabled()  # warm numpy / allocator before timing anything
    t_disabled = _best_of(disabled)
    t_null = _best_of(null_sink)
    t_memory = _best_of(memory)

    # The per-site cost of the disabled path, measured directly: the
    # ambient lookup, the enabled check, and a shared no-op span.
    calls = 100_000
    t0 = time.perf_counter()
    for _ in range(calls):
        tracer = current_tracer()
        if tracer.enabled:  # pragma: no cover - disabled here by design
            raise AssertionError
        with tracer.span("phase.sample"):
            pass
    per_site_ns = (time.perf_counter() - t0) / calls * 1e9

    print()
    print("observability overhead (best of 7, n=%d)" % N)
    print("  disabled (default): %8.2f ms" % (t_disabled * 1e3))
    print("  null sink tracer:   %8.2f ms  (%+5.1f%%)"
          % (t_null * 1e3, (t_null / t_disabled - 1) * 100))
    print("  memory sink:        %8.2f ms  (%+5.1f%%)"
          % (t_memory * 1e3, (t_memory / t_disabled - 1) * 100))
    print("  disabled path per instrumented site: %.0f ns" % per_site_ns)

    # Zero-cost claim: the disabled path must not be slower than a live
    # tracer that builds and drops every event (5% margin for timer
    # noise on a shared CI machine).
    assert t_disabled <= t_null * 1.05 + 1e-3
    # And a single disabled site is sub-microsecond — noise next to the
    # O(m log s) selection work it wraps.
    assert per_site_ns < 5_000

    benchmark.extra_info["disabled_ms"] = t_disabled * 1e3
    benchmark.extra_info["null_sink_ms"] = t_null * 1e3
    benchmark.extra_info["memory_sink_ms"] = t_memory * 1e3
    benchmark.extra_info["per_site_ns"] = per_site_ns
    benchmark.pedantic(disabled, rounds=1, iterations=1)
