"""Table 11: the fraction of total time spent in I/O.

Paper claim: "The algorithm spends around 50% of the total execution time
in performing I/O", independent of the data and machine size.
"""

from benchmarks.conftest import run_once
from repro.experiments import table11


def bench_table11(benchmark, show):
    result = run_once(benchmark, table11)
    show(result)
    fractions = [
        float(cell) for row in result.rows for cell in row[1:]
    ]
    assert all(0.40 <= f <= 0.62 for f in fractions)
    benchmark.extra_info["io_fraction_range"] = (min(fractions), max(fractions))
    benchmark.extra_info["paper_range"] = (0.40, 0.57)
