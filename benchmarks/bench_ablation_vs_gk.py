"""Ablation A4: OPAQ versus the post-paper sketches at equal memory.

GK01 superseded this line of work; at equal memory, how do OPAQ's bounds
and realised errors compare with GK, P², and the fixed-grid [SD77]?
Measured: realised worst rank error over the dectiles, memory used, and
each method's *guaranteed* error (if any).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import (
    CellMidpointEstimator,
    GreenwaldKhanna,
    KLLSketch,
    P2Estimator,
    TDigest,
    consume,
)
from repro.core import OPAQ, OPAQConfig, bounds_for
from repro.experiments import TableResult
from repro.metrics import dectile_fractions


def _worst_rank_error(sd, estimates, phis):
    worst = 0
    n = sd.size
    for phi, est in zip(phis, estimates):
        lo = np.searchsorted(sd, est, side="left")
        hi = np.searchsorted(sd, est, side="right")
        target = int(np.ceil(phi * n))
        err = 0 if lo < target <= hi else min(abs(lo + 1 - target), abs(hi - target))
        worst = max(worst, int(err))
    return worst


def _compare():
    n = 100_000
    rng = np.random.default_rng(17)
    data = rng.uniform(0.0, 1.0e9, size=n)
    sd = np.sort(data)
    phis = dectile_fractions()
    result = TableResult(
        title=f"Ablation A4: modern comparison at ~equal memory (n={n:,})",
        header=["method", "memory (keys)", "worst rank err", "guaranteed"],
    )
    measured = {}

    config = OPAQConfig(run_size=10_000, sample_size=300)
    summary = OPAQ(config).summarize(data)
    bounds = bounds_for(summary, phis)
    mids = np.array([b.midpoint for b in bounds])
    worst = _worst_rank_error(sd, mids, phis)
    measured["OPAQ"] = (summary.memory_footprint, worst, summary.guaranteed_rank_error())
    result.add_row("OPAQ (midpoint)", summary.memory_footprint, worst,
                   summary.guaranteed_rank_error())

    gk = consume(GreenwaldKhanna(epsilon=0.0017), data, run_size=10_000)
    worst = _worst_rank_error(sd, gk.query_many(phis), phis)
    measured["GK01"] = (gk.memory_footprint, worst, int(gk.rank_error_bound()))
    result.add_row("GK01", gk.memory_footprint, worst, int(gk.rank_error_bound()))

    td = consume(TDigest(compression=300, buffer_size=512), data, run_size=10_000)
    worst = _worst_rank_error(sd, td.query_many(phis), phis)
    measured["tdigest"] = (td.memory_footprint, worst, None)
    result.add_row("t-digest", td.memory_footprint, worst, "probabilistic")

    kll = consume(KLLSketch(k=700, seed=9), data, run_size=10_000)
    worst = _worst_rank_error(sd, kll.query_many(phis), phis)
    measured["KLL"] = (kll.memory_footprint, worst, None)
    result.add_row("KLL", kll.memory_footprint, worst, "probabilistic")

    p2 = consume(P2Estimator(phis), data[:20_000], run_size=5_000)
    sd20 = np.sort(data[:20_000])
    worst = _worst_rank_error(sd20, p2.query_many(phis), phis) * (n // 20_000)
    measured["P2"] = (p2.memory_footprint, worst, None)
    result.add_row("P2 (scaled)", p2.memory_footprint, worst, "none")

    cells = consume(
        CellMidpointEstimator(0.0, 1.0e9, cells=6000, interpolate=True),
        data,
        run_size=10_000,
    )
    worst = _worst_rank_error(sd, cells.query_many(phis), phis)
    measured["SD77"] = (cells.memory_footprint, worst, None)
    result.add_row("SD77 (interp)", cells.memory_footprint, worst, "none (needs prior)")

    result.paper_reference["measured"] = measured
    return result


def bench_vs_modern_sketches(benchmark, show):
    result = run_once(benchmark, _compare)
    show(result)
    measured = result.paper_reference["measured"]
    # Both bounded methods must respect their own guarantees.
    for name in ("OPAQ", "GK01"):
        _, worst, guarantee = measured[name]
        assert worst <= guarantee
    benchmark.extra_info["measured"] = {
        k: {"memory": v[0], "worst": v[1], "guarantee": v[2]}
        for k, v in measured.items()
    }
