"""Table 10: parallel RERL and RERN versus total size (p=8).

Paper claim: ~0.5-0.7 % at 1024 samples/run, flat in the data size.
"""

from benchmarks.conftest import run_once
from repro.experiments import parallel_error_reports, resolve_n, table10
from repro.metrics import rerl_bound, rern_bound


def bench_table10(benchmark, show):
    result = run_once(benchmark, table10)
    show(result)
    sizes = [resolve_n(n) for n in (500_000, 4_000_000)]
    for n, rep in parallel_error_reports(sizes=sizes).items():
        assert rep.rerl <= rerl_bound(10, 1024)
        assert rep.rern <= rern_bound(10, 1024)
    benchmark.extra_info["paper_rerl_range"] = (0.51, 0.62)
    benchmark.extra_info["paper_rern_range"] = (0.52, 0.67)
