"""Table 12: per-phase fraction of the execution time (n/p = 4M).

Paper claim: "The I/O time and sampling time take more than 83% of the
total execution time of the algorithm and are relatively independent of
the number of processors used."
"""

from benchmarks.conftest import run_once
from repro.experiments import table12


def bench_table12(benchmark, show):
    result = run_once(benchmark, table12)
    show(result)
    rows = {row[0]: [float(c) for c in row[1:]] for row in result.rows}
    for io, sampling in zip(rows["I/O"], rows["Sampling"]):
        assert io + sampling >= 0.83
    for phase in ("Local Merg.", "Global Merg."):
        assert max(rows[phase]) < 0.10
    # Global merge grows (weakly) with p, as in the paper.
    gm = rows["Global Merg."]
    assert gm[-1] >= gm[0]
    benchmark.extra_info["io_plus_sampling_min"] = min(
        io + s for io, s in zip(rows["I/O"], rows["Sampling"])
    )
    benchmark.extra_info["paper_claim"] = ">= 0.83"
