"""Table 3: RERA per dectile versus sample size (uniform and Zipf, n=1M).

Paper claim: error roughly halves when ``s`` doubles, stays far below the
analytic bound ``2/s·100``, and does not depend on the distribution.
"""


from benchmarks.conftest import run_once
from repro.experiments import opaq_error_report, resolve_n, table3
from repro.metrics import rera_bound


def bench_table3(benchmark, show):
    result = run_once(benchmark, table3)
    show(result)
    n = resolve_n(1_000_000)
    means = {}
    for dist in ("uniform", "zipf"):
        for s in (250, 500, 1000):
            rep = opaq_error_report(dist, n, s)
            means[(dist, s)] = float(rep.rera.mean())
            # Every dectile within the deterministic bound.
            assert rep.rera.max() <= rera_bound(s)
    for dist in ("uniform", "zipf"):
        assert means[(dist, 250)] > means[(dist, 500)] > means[(dist, 1000)]
    # Distribution independence: uniform and Zipf agree within the bound.
    assert abs(means[("uniform", 1000)] - means[("zipf", 1000)]) < rera_bound(1000)
    benchmark.extra_info["rera_mean_s1000_uniform"] = means[("uniform", 1000)]
    benchmark.extra_info["rera_mean_s1000_zipf"] = means[("zipf", 1000)]
    benchmark.extra_info["paper_rera_s1000"] = 0.09
