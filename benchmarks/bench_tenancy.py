"""Multi-tenant registry scaling: resident keys vs. keyed throughput.

Not a paper experiment — release engineering for
:mod:`repro.service.tenancy`.  The registry's promise is *key-count*
scaling under one fixed memory budget: millions of ``(tenant, metric)``
summaries, each carrying its own compaction history and so its own
served guarantee.  This bench records what that promise costs at
10k/100k/1M keys:

* **keyed ingest throughput** — elements/second through the binary wire
  (``INGEST_KEYED`` frames via :class:`~repro.service.ServiceClient`),
  including the inline folds that turn pending batches into compacted
  per-key summaries.  The per-element price rises as keys shrink: a
  4000-element key amortises its fold far better than a 16-element one,
  which is the honest trade a per-key backend makes.
* **keyed query throughput** — keys answered per second for 3-φ vectors
  over a deterministic sample of resident keys, plus the global
  ``("*", "*")`` rollup served from the aggregation tree.
* **residency** — ``used_slots`` vs. the fixed ``budget_slots``, plus
  resident/spilled key counts: the registry must stay at or under
  budget at every scale (the invariant
  ``tests/service/tenancy/test_registry.py`` pins functionally).
* **per-key guarantee** — every sampled answer must satisfy
  ``epsilon_bound <= per_key_epsilon``; the worst observed bound is
  recorded per row.

A separate **churn** row squeezes a deliberately undersized budget so
LRU spill/restore actually cycles (the scale rows size their budget to
the folded working set, so spilling stays incidental there), and
re-queries the oldest keys to price a restore.

Run as a script to (re)generate the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_tenancy.py

which writes ``BENCH_tenancy.json`` at the repo root, or through
pytest-benchmark like the other benches.  The pytest path runs a
reduced sweep (no 1M-key row) unless ``REPRO_FULL=1``; the committed
JSON always comes from the full script run.
"""

from __future__ import annotations

import gc
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.harness import full_scale
from repro.service import (
    QuantileService,
    ServiceClient,
    ServiceConfig,
    ThreadedBinaryServer,
)
from repro.service.tenancy import RegistryConfig, SummaryRegistry

try:  # pytest-benchmark path; absent when run as a plain script
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None

_EPSILON = 0.02
_MAX_KEY_SAMPLES = 256
_PHIS = np.array([0.5, 0.9, 0.99])
_METRICS = 32  # distinct metric names; tenants grow with the key count
_QUERY_SAMPLE = 1_024  # resident keys probed per row
_QUERY_BATCH = 256  # key pairs per QUANTILES_KEYED request
_QUERY_SECONDS = 0.5  # keep querying for at least this long
_OUT = Path(__file__).resolve().parent.parent / "BENCH_tenancy.json"

#: (keys, elements_per_key, keys_per_frame, ingest_repeats).  Budgets are
#: derived, not listed: 1.3x the folded working set (see ``_budget``).
#: The first row is the headline — big keys, best-of-3 — and the ladder
#: then trades elements-per-key for key-count at roughly constant data.
_FULL_SCALES = (
    (10_000, 4_000, 1_000, 3),
    (100_000, 100, 10_000, 1),
    (1_000_000, 16, 62_500, 1),
)
#: CI sweep: same shape, no 1M-key row, smaller headline.
_CI_SCALES = (
    (5_000, 4_000, 1_000, 1),
    (50_000, 100, 10_000, 1),
)

_CHURN_KEYS = 2_000
_CHURN_EL = 200


def _pair(i: int) -> tuple[str, str]:
    """Deterministic (tenant, metric) for key index ``i``."""
    return f"t{i // _METRICS}", f"m{i % _METRICS}"


def _budget(keys: int, el_per_key: int) -> int:
    """Fixed slot budget: 1.3x the fold-compacted working set.

    A folded key occupies ``per_key_overhead + 3*num_samples`` slots
    with ``num_samples <= min(el_per_key, max_key_samples)``; the slack
    absorbs in-flight ingest blocks and shard imbalance without ever
    letting residency grow past the recorded ceiling.
    """
    slots_per_key = 4 + 3 * min(el_per_key, _MAX_KEY_SAMPLES)
    return int(1.3 * keys * slots_per_key)


def _frames(
    keys: int, el_per_key: int, keys_per_frame: int, data: np.ndarray
) -> list[dict[tuple[str, str], np.ndarray]]:
    """Pre-build the keyed batches so prep is outside the ingest clock."""
    frames = []
    for lo in range(0, keys, keys_per_frame):
        hi = min(lo + keys_per_frame, keys)
        frames.append(
            {
                _pair(i): data[i * el_per_key : (i + 1) * el_per_key]
                for i in range(lo, hi)
            }
        )
    return frames


def _measure_scale(
    keys: int,
    el_per_key: int,
    keys_per_frame: int,
    repeats: int,
    spill_root: Path,
) -> dict[str, object]:
    elements = keys * el_per_key
    budget = _budget(keys, el_per_key)
    data = np.random.default_rng(7).uniform(size=elements)
    frames = _frames(keys, el_per_key, keys_per_frame, data)
    probe = [
        _pair(i)
        for i in np.linspace(
            0, keys - 1, min(_QUERY_SAMPLE, keys), dtype=np.int64
        )
    ]

    best_ingest = 0.0
    row: dict[str, object] = {}
    for rep in range(repeats):
        tenancy = RegistryConfig(
            memory_budget=budget,
            num_shards=8,
            per_key_epsilon=_EPSILON,
            max_key_samples=_MAX_KEY_SAMPLES,
            # Whole keys arrive in one frame here, so the fold (and the
            # compaction that enforces epsilon) happens inline: the
            # ingest number prices durable *summaries*, not raw buffers.
            fold_threshold=el_per_key,
            spill_dir=spill_root / f"scale-{keys}-{rep}",
        )
        service = QuantileService(ServiceConfig(tenancy=tenancy))
        server = ThreadedBinaryServer(service, port=0)
        server.start()
        try:
            with ServiceClient(server.url, timeout=600.0) as client:
                start = time.perf_counter()
                for frame in frames:
                    client.ingest_keyed(frame)
                ingest_seconds = time.perf_counter() - start
                best_ingest = max(best_ingest, elements / ingest_seconds)

                answered = 0
                worst_bound = 0.0
                epsilon_ok = True
                start = time.perf_counter()
                while time.perf_counter() - start < _QUERY_SECONDS:
                    lo = answered % len(probe)
                    pairs = probe[lo : lo + _QUERY_BATCH] or probe
                    for answer in client.quantiles_keyed(pairs, _PHIS):
                        worst_bound = max(worst_bound, answer.epsilon_bound)
                        epsilon_ok = epsilon_ok and (
                            answer.guarantee - 1
                            <= _EPSILON * answer.count
                        )
                    answered += len(pairs)
                query_seconds = (time.perf_counter() - start) / answered

                start = time.perf_counter()
                (rollup,) = client.quantiles_keyed([("*", "*")], _PHIS)
                rollup_seconds = time.perf_counter() - start
                tenancy_stats = client.stats()["tenancy"]
        finally:
            server.stop()
            service.close(final_snapshot=False)
        assert rollup.count == elements, rollup.count
        row = {
            "keys": keys,
            "elements_per_key": el_per_key,
            "elements": elements,
            "keys_per_frame": keys_per_frame,
            "ingest_repeats": repeats,
            "budget_slots": budget,
            "used_slots": int(tenancy_stats["used_slots"]),
            "resident_keys": int(tenancy_stats["resident_keys"]),
            "spilled_keys": int(tenancy_stats["spilled_keys"]),
            "folds": int(tenancy_stats["folds"]),
            "spills": int(tenancy_stats["spills"]),
            "ingest_seconds": elements / best_ingest,
            "ingest_elements_per_second": best_ingest,
            "query_keys_per_second": 1.0 / query_seconds,
            "query_phis": int(_PHIS.size),
            "rollup_seconds": rollup_seconds,
            "rollup_count": int(rollup.count),
            "probed_keys": len(probe),
            "worst_epsilon_bound": worst_bound,
            "epsilon_ok": bool(epsilon_ok),
        }
        assert row["used_slots"] <= budget, row
        assert epsilon_ok and worst_bound <= _EPSILON, row
    return row


def _measure_churn(spill_root: Path) -> dict[str, object]:
    """Undersized budget, in-process registry: price the spill cycle."""
    keys, el = _CHURN_KEYS, _CHURN_EL
    # ~4 resident keys' worth per shard: most of the working set must
    # live on disk, so ingest itself churns the LRU spill path.
    config = RegistryConfig(
        memory_budget=keys * (4 + 3 * 64) // 8,
        num_shards=4,
        per_key_epsilon=0.05,
        max_key_samples=64,
        fold_threshold=el,
        spill_dir=spill_root / "churn",
    )
    data = np.random.default_rng(11).uniform(size=keys * el)
    oldest = [_pair(i) for i in range(256)]
    with SummaryRegistry(config) as registry:
        start = time.perf_counter()
        for lo in range(0, keys, 500):
            hi = min(lo + 500, keys)
            names = [
                "\x1f".join(_pair(i)) for i in range(lo, hi)
            ]
            registry.ingest_frame(
                names,
                np.full(hi - lo, el, dtype=np.int64),
                data[lo * el : hi * el],
            )
        ingest_seconds = time.perf_counter() - start
        stats_after_ingest = registry.stats()

        worst_bound = 0.0
        start = time.perf_counter()
        for tenant, metric in oldest:
            answer = registry.quantiles(tenant, metric, _PHIS)
            worst_bound = max(worst_bound, answer.epsilon_bound)
        restore_seconds = (time.perf_counter() - start) / len(oldest)
        stats = registry.stats()
    row = {
        "keys": keys,
        "elements_per_key": el,
        "budget_slots": config.memory_budget,
        "used_slots": int(stats["used_slots"]),
        "resident_keys": int(stats["resident_keys"]),
        "spilled_keys": int(stats["spilled_keys"]),
        "spills": int(stats["spills"]),
        "restores": int(stats["restores"]),
        "evictions": int(stats["evictions"]),
        "ingest_elements_per_second": keys * el / ingest_seconds,
        "requeried_cold_keys": len(oldest),
        "seconds_per_cold_query": restore_seconds,
        "worst_epsilon_bound": worst_bound,
    }
    assert stats_after_ingest["spills"] > 0, stats_after_ingest
    assert stats["restores"] > 0, stats
    assert row["used_slots"] <= row["budget_slots"], row
    assert worst_bound <= config.per_key_epsilon, row
    return row


def main(scales=_FULL_SCALES, out: Path | None = _OUT) -> dict[str, object]:
    gc_was_enabled = gc.isenabled()
    gc.disable()  # keep collector pauses out of the throughput clocks
    try:
        with tempfile.TemporaryDirectory(prefix="opaq-bench-") as tmp:
            spill_root = Path(tmp)
            rows = [
                _measure_scale(keys, el, per_frame, repeats, spill_root)
                for keys, el, per_frame, repeats in scales
            ]
            churn = _measure_churn(spill_root)
    finally:
        if gc_was_enabled:
            gc.enable()
    report = {
        "benchmark": "tenancy",
        "per_key_epsilon": _EPSILON,
        "max_key_samples": _MAX_KEY_SAMPLES,
        "query_phis": [float(phi) for phi in _PHIS],
        "scales": rows,
        "churn": churn,
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
    for row in rows:
        print(
            f"{row['keys']:>9,} keys x {row['elements_per_key']:>5,} el: "
            f"{row['ingest_elements_per_second']:,.0f} el/s ingest, "
            f"{row['query_keys_per_second']:,.0f} keys/s query, "
            f"used {row['used_slots']:,}/{row['budget_slots']:,} slots, "
            f"worst eps {row['worst_epsilon_bound']:.4f}"
        )
    print(
        f"churn {churn['keys']:,} keys @ budget {churn['budget_slots']:,}: "
        f"{churn['spills']} spills, {churn['restores']} restores, "
        f"{churn['seconds_per_cold_query'] * 1e3:.2f} ms/cold query"
    )
    if out is not None:
        print(f"wrote {out}")
    return report


def bench_tenancy_scaling(benchmark):
    """One sweep under pytest-benchmark (headline numbers in extra_info).

    CI scale by default; ``REPRO_FULL=1`` runs (and rewrites the JSON
    for) the full 10k/100k/1M ladder.
    """
    full = full_scale()
    report = run_once(
        benchmark,
        main,
        _FULL_SCALES if full else _CI_SCALES,
        out=_OUT if full else None,
    )
    for row in report["scales"]:
        key = f"keys_{row['keys']}"
        benchmark.extra_info[f"{key}_ingest_eps"] = row[
            "ingest_elements_per_second"
        ]
        benchmark.extra_info[f"{key}_query_kps"] = row["query_keys_per_second"]
        # Residency and the per-key contract are hard invariants at
        # every scale; the throughput floor is set far below any
        # observed run (wire ingest benches >5M el/s on one modest
        # core at the headline row) to keep CI flake-free.
        assert row["used_slots"] <= row["budget_slots"]
        assert row["epsilon_ok"] and row["worst_epsilon_bound"] <= _EPSILON
    assert (
        report["scales"][0]["ingest_elements_per_second"] > 1e6
    )
    churn = report["churn"]
    assert churn["spills"] > 0 and churn["restores"] > 0
    benchmark.extra_info["churn_ms_per_cold_query"] = (
        churn["seconds_per_cold_query"] * 1e3
    )


if __name__ == "__main__":
    main()
