"""Figure 5: size-up — total time versus per-processor size at fixed p.

Paper claim: near-linear in n/p (an 8x larger per-processor share takes
~8x longer), again because the global merge is negligible.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure5


def bench_figure5(benchmark, show):
    result = run_once(benchmark, figure5)
    show(result)
    for p in (1, 4, 16):
        ratio = result.paper_reference[f"sizeup_ratio_p{p}"]
        assert 6.5 < ratio < 9.5  # ideal is 8x for the 0.5M -> 4M sweep
    benchmark.extra_info.update(
        {k: v for k, v in result.paper_reference.items() if k.startswith("sizeup")}
    )
