"""Table 5: RERA per dectile versus data size (s=1000, 1M/5M/10M).

Paper claim: at fixed ``s``, the error rate does not grow with ``n``.
"""

from benchmarks.conftest import run_once
from repro.experiments import opaq_error_report, resolve_n, table5
from repro.metrics import rera_bound


def bench_table5(benchmark, show):
    result = run_once(benchmark, table5)
    show(result)
    sizes = [resolve_n(n) for n in (1_000_000, 5_000_000, 10_000_000)]
    for dist in ("uniform", "zipf"):
        means = []
        for n in sizes:
            rep = opaq_error_report(dist, n, 1000)
            assert rep.rera.max() <= rera_bound(1000)
            means.append(float(rep.rera.mean()))
        # Independence of n: no systematic growth (3x head-room for noise).
        assert max(means) < 3 * max(min(means), 1e-6)
        benchmark.extra_info[f"rera_means_{dist}"] = means
    benchmark.extra_info["paper_typical"] = 0.09
