"""Ablation A7: overlapping I/O with computation (paper section 4).

"Since a large fraction of the total execution time is spent in I/O, we
can significantly reduce the total execution time by overlapping the I/O
and the computation."  With I/O ~52% and sampling ~45% of the total, full
overlap should cut the wall clock to roughly max(io, sampling) — a ~1.8x
speed-up — while leaving the answers bit-for-bit identical.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OPAQConfig
from repro.experiments import TableResult
from repro.parallel import ParallelOPAQ
from repro.workloads import UniformGenerator


def _overlap():
    n, p = 400_000, 4
    data = UniformGenerator().generate(n, seed=13)
    config = OPAQConfig(run_size=n // (p * 3), sample_size=1024)
    result = TableResult(
        title=f"Ablation A7: I/O-computation overlap (n={n:,}, p={p})",
        header=["mode", "total (s)", "io frac", "sampling frac"],
    )
    outcomes = {}
    for overlap in (False, True):
        res = ParallelOPAQ(p, config, overlap_io=overlap).run(data.copy())
        fr = res.phase_fractions()
        outcomes[overlap] = res
        result.add_row(
            "overlapped" if overlap else "sequential",
            f"{res.total_time:.3f}",
            f"{fr.get('io', 0):.2f}",
            f"{fr.get('sampling', 0):.2f}",
        )
    result.paper_reference["outcomes"] = outcomes
    return result


def bench_io_overlap(benchmark, show):
    result = run_once(benchmark, _overlap)
    show(result)
    plain = result.paper_reference["outcomes"][False]
    overlapped = result.paper_reference["outcomes"][True]
    ratio = overlapped.total_time / plain.total_time
    # max(io, sampling)/(io + sampling) with the calibrated constants
    # is ~0.53; allow head-room for the (unoverlapped) merge phases.
    assert 0.45 < ratio < 0.70
    # Identical answers: the optimisation touches only the clock.
    np.testing.assert_array_equal(
        overlapped.summary.samples, plain.summary.samples
    )
    benchmark.extra_info["speedup_from_overlap"] = 1.0 / ratio
