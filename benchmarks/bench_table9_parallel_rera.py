"""Table 9: parallel RERA per dectile versus total size (p=8).

Paper claim: ~0.09 % everywhere — identical to the sequential algorithm
and independent of the data size.
"""


from benchmarks.conftest import run_once
from repro.experiments import parallel_error_reports, resolve_n, table9
from repro.metrics import rera_bound


def bench_table9(benchmark, show):
    result = run_once(benchmark, table9)
    show(result)
    sizes = [resolve_n(n) for n in (500_000, 4_000_000)]
    reports = parallel_error_reports(sizes=sizes)
    for n, rep in reports.items():
        assert rep.rera.max() <= rera_bound(1024)
    means = [float(rep.rera.mean()) for rep in reports.values()]
    assert max(means) < 3 * max(min(means), 1e-6)  # size independence
    benchmark.extra_info["rera_means"] = means
    benchmark.extra_info["paper_typical"] = 0.09
