"""Equal-memory shootout across the quantile-engine portfolio.

Every engine in :data:`repro.portfolio.ENGINES` gets the *same* slot
budget (float64-sized cells of summary payload, the same unit the
tenancy registry bills) and summarizes the same workloads:

* **uniform** — the paper's uniform generator (n/10 duplicates),
* **zipf** — the paper's Zipf(0.86) generator (heavy duplication),
* **sorted** — the uniform data in ascending order (adversarial for
  samplers, friendly for mergers).

Per (order, engine) row the shootout records the memory actually used
against the budget, the engine's *guaranteed* rank error, the *observed*
rank error of the served bounds against exact ground truth, ingest
throughput, and the cost of merging two half-stream summaries (``null``
where the engine does not merge).  The committed ``BENCH_portfolio.json``
at the repo root is written by running this module as a script at full
scale; the pytest-benchmark entry point runs a reduced sweep in CI.

Guarantee semantics differ per engine (see ``docs/portfolio.md``):
``opaq``/``gk`` bounds are deterministic, so ``observed < guaranteed``
is asserted outright; ``kll``'s bound holds per query with probability
``1 - delta`` (delta = 0.01) and is asserted here too because the sweep
is seeded (a fixed-seed run either passes forever or never); ``as95``
reports no guarantee (``guaranteed_rank_error() == n``), so only the
observed error of its point estimates is recorded.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.core.quantile_phase import bounds_arrays as _opaq_bounds_arrays
from repro.errors import EstimationError
from repro.experiments.harness import full_scale, paper_dataset, resolve_n
from repro.metrics import dectile_fractions
from repro.portfolio import ENGINES

_OUT = Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"

#: Equal-memory budget, in float64 slots of summary payload.  Mirrors the
#: paper's Table 7 footnote (r * s = 3000 with s = 1000): an OPAQ summary
#: of 1000 samples costs exactly 3000 slots (samples, gaps, floors).
_BUDGET_SLOTS = 3_000

#: Paper-scale element count; CI runs n/10 via ``resolve_n``.
_PAPER_N = 1_000_000

#: Dectiles plus the tails the portfolio docs quote.
_PHIS = np.sort(np.append(dectile_fractions(), [0.01, 0.99]))

_ORDERS = ("uniform", "zipf", "sorted")

#: Half-stream pieces merged when measuring merge cost.
_MERGE_PARTS = 2


def _bounds_arrays(summary, phis):
    """Per-phi bound arrays for any portfolio summary.

    Sketch summaries carry ``bounds_arrays`` themselves; the core
    :class:`OPAQSummary` exposes the same arrays via the free function.
    """
    method = getattr(summary, "bounds_arrays", None)
    if method is not None:
        return method(phis)
    return _opaq_bounds_arrays(summary, phis)


def _workload(order: str, n: int) -> np.ndarray:
    if order == "sorted":
        return np.sort(paper_dataset("uniform", n))
    return np.asarray(paper_dataset(order, n))


def _observed_rank_error(
    ground: np.ndarray, psi: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> int:
    """Worst true-rank distance of any served bound from its target.

    ``rank(v)`` follows the summary convention (count of elements
    ``<= v``); duplicates credit a bound with the friendliest rank of its
    value, matching what ``guaranteed_rank_error`` promises about the
    *value* served.
    """
    rank_lo = np.searchsorted(ground, lower, side="right")
    rank_hi = np.searchsorted(ground, upper, side="left") + 1
    below = np.maximum(psi - rank_lo, 0)
    above = np.maximum(rank_hi - psi, 0)
    return int(max(below.max(), above.max()))


def _enclosure_holds(
    ground: np.ndarray, psi: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> bool:
    exact = ground[psi.astype(np.int64) - 1]
    return bool(np.all(lower <= exact) and np.all(exact <= upper))


def _measure(order: str, engine_name: str, n: int) -> dict[str, object]:
    spec = ENGINES[engine_name]
    data = _workload(order, n)
    ground = np.sort(data)

    engine = spec.for_budget(_BUDGET_SLOTS, n_hint=n)
    start = time.perf_counter()
    summary = engine.summarize(data)
    ingest_seconds = time.perf_counter() - start

    psi, lower, upper, _, _, _ = _bounds_arrays(summary, _PHIS)
    guaranteed = int(summary.guaranteed_rank_error())
    observed = _observed_rank_error(ground, psi, lower, upper)

    merge_seconds: float | None = None
    if spec.mergeable:
        parts = [
            engine.summarize(chunk)
            for chunk in np.array_split(data, _MERGE_PARTS)
        ]
        start = time.perf_counter()
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        merge_seconds = time.perf_counter() - start
        assert merged.count == n, (engine_name, merged.count, n)
    else:
        try:
            summary.merge(summary)
        except EstimationError:
            pass
        else:  # pragma: no cover - spec claim out of sync with engine
            raise AssertionError(f"{engine_name} claims not mergeable but merged")

    row = {
        "order": order,
        "engine": engine_name,
        "guarantee": spec.guarantee,
        "n": n,
        "budget_slots": _BUDGET_SLOTS,
        "memory_slots": int(summary.memory_footprint),
        "guaranteed_rank_error": guaranteed,
        "observed_rank_error": observed,
        "guaranteed_epsilon": (guaranteed - 1) / n,
        "observed_epsilon": observed / n,
        "ingest_elements_per_second": n / ingest_seconds,
        "merge_seconds": merge_seconds,
        "enclosure_holds": _enclosure_holds(ground, psi, lower, upper),
    }

    assert row["memory_slots"] <= _BUDGET_SLOTS, row
    if spec.guarantee in ("deterministic", "randomized"):
        # Deterministic engines must honour the bound outright; KLL's is
        # per-query probabilistic (delta = 0.01) but the sweep is seeded,
        # so a pass here is reproducible, not lucky.
        assert observed < guaranteed, row
        assert row["enclosure_holds"], row
    return row


def main(
    orders: tuple[str, ...] = _ORDERS, out: Path | None = _OUT
) -> dict[str, object]:
    n = resolve_n(_PAPER_N)
    gc_was_enabled = gc.isenabled()
    gc.disable()  # keep collector pauses out of the throughput clocks
    try:
        rows = [
            _measure(order, engine_name, n)
            for order in orders
            for engine_name in sorted(ENGINES)
        ]
    finally:
        if gc_was_enabled:
            gc.enable()
    report = {
        "benchmark": "portfolio",
        "budget_slots": _BUDGET_SLOTS,
        "n": n,
        "full_scale": full_scale(),
        "query_phis": [float(phi) for phi in _PHIS],
        "merge_parts": _MERGE_PARTS,
        "rows": rows,
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
    for row in rows:
        merge = (
            f"{row['merge_seconds'] * 1e3:7.2f} ms merge"
            if row["merge_seconds"] is not None
            else "   not mergeable"
        )
        print(
            f"{row['order']:>8} {row['engine']:>5}: "
            f"mem {row['memory_slots']:>5,}/{row['budget_slots']:,} slots, "
            f"rank err {row['observed_rank_error']:>6,} observed "
            f"/ {row['guaranteed_rank_error']:>7,} guaranteed, "
            f"{row['ingest_elements_per_second']:>12,.0f} el/s, {merge}"
        )
    if out is not None:
        print(f"wrote {out}")
    return report


try:
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None


def bench_portfolio_shootout(benchmark):
    """One equal-memory sweep under pytest-benchmark.

    CI scale by default; ``REPRO_FULL=1`` runs (and rewrites the JSON
    for) the committed paper-scale report.
    """
    full = full_scale()
    report = run_once(benchmark, main, out=_OUT if full else None)
    for row in report["rows"]:
        key = f"{row['order']}/{row['engine']}"
        benchmark.extra_info[f"{key}.observed_rank_error"] = row[
            "observed_rank_error"
        ]
        benchmark.extra_info[f"{key}.el_per_s"] = round(
            row["ingest_elements_per_second"]
        )
    engines = {row["engine"] for row in report["rows"]}
    assert engines == set(ENGINES), engines
    assert len(report["rows"]) == len(_ORDERS) * len(ENGINES)


if __name__ == "__main__":
    main()
