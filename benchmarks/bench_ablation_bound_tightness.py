"""Ablation A2: how tight are the lemma bounds in practice?

Measures the realised rank displacement of each bound against the
deterministic budget ``n/s``, across all the stress distributions.  The
paper's tables show errors ~2x under the bound; this quantifies it.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OPAQ, OPAQConfig, bounds_for
from repro.experiments import TableResult
from repro.metrics import dectile_fractions
from repro.workloads import make_generator


def _tightness():
    n, m, s = 100_000, 10_000, 500
    config = OPAQConfig(run_size=m, sample_size=s)
    result = TableResult(
        title=f"Ablation A2: realised rank error vs the n/s budget (n={n:,}, s={s})",
        header=["distribution", "worst below", "worst above", "budget n/s", "utilisation"],
    )
    utilisations = {}
    for name in ("uniform", "zipf", "normal", "sorted", "few_distinct", "constant"):
        data = make_generator(name).generate(n, seed=7)
        summary = OPAQ(config).summarize(data)
        sd = np.sort(data)
        worst_below = worst_above = 0
        for b in bounds_for(summary, dectile_fractions()):
            below = b.rank - np.searchsorted(sd, b.lower, side="right")
            above = np.searchsorted(sd, b.upper, side="left") - b.rank
            worst_below = max(worst_below, int(below))
            worst_above = max(worst_above, int(above))
        budget = summary.guaranteed_rank_error()
        util = max(worst_below, worst_above) / budget
        utilisations[name] = util
        result.add_row(name, worst_below, worst_above, budget, f"{util:.2f}")
    result.paper_reference["utilisations"] = utilisations
    return result


def bench_bound_tightness(benchmark, show):
    result = run_once(benchmark, _tightness)
    show(result)
    for name, util in result.paper_reference["utilisations"].items():
        assert util <= 1.0, f"{name}: measured error exceeded the deterministic bound"
    benchmark.extra_info["utilisations"] = result.paper_reference["utilisations"]
