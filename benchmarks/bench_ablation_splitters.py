"""Ablation A10: OPAQ splitters vs probabilistic splitting ([DNS91]).

The paper cites DeWitt, Naughton & Schneider's *probabilistic splitting*
as the load-balancing state of the art it improves upon: sample-based
splitters balance partitions only *in expectation*, so an external sort
sized to the expected bucket must over-provision memory or risk overflow.
OPAQ's splitters carry a deterministic bucket-size cap.

This ablation sorts the same data many times with both splitter sources
at equal splitter-derivation budgets and records the distribution of the
largest bucket: random splitters' worst case drifts past OPAQ's
deterministic cap, while every OPAQ run obeys it.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OPAQ, OPAQConfig
from repro.core.quantile_phase import splitters
from repro.experiments import TableResult

_N = 100_000
_Q = 8  # partitions
_TRIALS = 40


def _bucket_sizes(data: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    idx = np.searchsorted(cuts, data, side="left")
    return np.bincount(idx, minlength=cuts.size + 1)


def _compare():
    rng = np.random.default_rng(91)
    data = rng.lognormal(0.0, 1.0, size=_N)
    config = OPAQConfig(run_size=_N // 10, sample_size=300)
    summary = OPAQ(config).summarize(data)
    budget = summary.num_samples  # equal splitter-derivation budget

    # OPAQ: deterministic, one derivation suffices (it cannot vary).
    opaq_cuts = splitters(summary, _Q, which="upper")
    opaq_max = int(_bucket_sizes(data, opaq_cuts).max())
    opaq_cap = _N // _Q + summary.guaranteed_rank_error()

    # Probabilistic splitting: random sample of the same size, repeated.
    random_maxima = []
    for trial in range(_TRIALS):
        sample = np.sort(rng.choice(data, size=budget, replace=False))
        cut_idx = (np.arange(1, _Q) * sample.size) // _Q
        random_maxima.append(int(_bucket_sizes(data, sample[cut_idx]).max()))
    random_maxima = np.array(random_maxima)

    ideal = _N // _Q
    result = TableResult(
        title=(
            f"Ablation A10: splitter quality, OPAQ vs probabilistic "
            f"splitting (n={_N:,}, q={_Q}, {_TRIALS} trials, "
            f"ideal bucket {ideal:,})"
        ),
        header=["splitter", "max bucket (median)", "max bucket (worst)", "guarantee"],
    )
    result.add_row("OPAQ", opaq_max, opaq_max, opaq_cap)
    result.add_row(
        "random sample",
        int(np.median(random_maxima)),
        int(random_maxima.max()),
        "expectation only",
    )
    result.paper_reference.update(
        {
            "opaq_max": opaq_max,
            "opaq_cap": opaq_cap,
            "random_worst": int(random_maxima.max()),
            "random_median": int(np.median(random_maxima)),
        }
    )
    return result


def bench_splitters_vs_probabilistic(benchmark, show):
    result = run_once(benchmark, _compare)
    show(result)
    ref = result.paper_reference
    # OPAQ honours its deterministic cap.
    assert ref["opaq_max"] <= ref["opaq_cap"]
    # The random splitters' observed worst case exceeds OPAQ's worst case
    # (they only control the expectation).
    assert ref["random_worst"] > ref["opaq_max"]
    benchmark.extra_info.update(ref)
