"""Serving throughput at the wire: binary protocol v3 vs the HTTP shim.

Not a paper experiment — release engineering for :mod:`repro.service`.
Unlike the pre-redesign version of this bench (which timed in-process
calls), every number here crosses a real socket through
:class:`~repro.service.client.ServiceClient`, so the comparison captures
what the API redesign actually bought: framed numpy payloads versus
JSON-encoded float lists, and a pipelined φ-vector query versus one HTTP
round-trip per call.

Measured at 1/4/8 shards over the same 1M-element dataset, per protocol:

* **ingest throughput** — elements/second for batched ``ingest`` calls
  (4 × 250k batches) plus the epoch snapshot: the full cost of making
  the data queryable through the wire;
* **query throughput** — 9-φ dectile vectors answered per second.  The
  binary client pipelines ``quantiles_many`` at depth ``_PIPELINE`` (all
  request frames written before replies are read — the server answers in
  order); HTTP has no pipelining, so it pays a full round-trip per
  vector.  Both counts are per *vector*, not per φ.  A repeated
  φ-vector against an unchanged epoch hits the binary server's
  encoded-reply cache — deliberately part of the measured path, since a
  dashboard polling fixed fractions is the canonical query workload.

Both guarantee levels are recorded per row (``guarantee_merged`` for the
served epoch, ``guarantee_per_shard`` for the worst shard) because they
are different numbers and the merged one degrades as shards rise.

Run as a script to (re)generate the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

which writes ``BENCH_service.json`` at the repo root, or through
pytest-benchmark like the other benches for ``--benchmark-json`` output.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.metrics import dectile_fractions
from repro.service import (
    QuantileService,
    ServiceClient,
    ServiceConfig,
    ThreadedBinaryServer,
    make_server,
)

try:  # pytest-benchmark path; absent when run as a plain script
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None

_N = 1_000_000
_BATCH = 250_000
_SHARD_COUNTS = (1, 4, 8)
_PIPELINE = 32  # quantiles_many depth on the binary path
_QUERY_SECONDS = 1.0  # measure queries for about this long per row
_REPEATS = 5  # best-of, to shave scheduler noise off the record
_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _config(shards: int) -> ServiceConfig:
    """Fixed *total* sample budget across shard counts.

    Per-shard sample size scales as ``1/shards`` so every row holds the
    same total sample memory — scale-out at constant resources, the
    paper's parallel framing — rather than silently giving the 8-shard
    row 8× the budget.  Run size stays fixed: the paper's ``m`` is a
    property of the memory block a run is folded in, not of the shard
    count, and holding it constant keeps the per-run fold count (and so
    the fold bookkeeping) comparable across rows.
    """
    return ServiceConfig(
        num_shards=shards,
        run_size=100_000,
        sample_size=1_000 // shards,
        queue_capacity=64,
        kernel="numpy",
        router_policy="chunk",
    )


def _serve(protocol: str, service: QuantileService):
    """Start a live server for ``protocol``; return (url, stop)."""
    if protocol == "binary":
        server = ThreadedBinaryServer(service, port=0)
        server.start()
        return server.url, server.stop
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)

    return server.url, stop


def _measure(protocol: str, shards: int, data: np.ndarray) -> dict[str, float]:
    """Best-of-``_REPEATS`` on each axis independently (the axes do not
    interact: ingest finishes before querying starts)."""
    phis = dectile_fractions()
    best_ingest = 0.0
    best_qps = 0.0
    row: dict[str, float] = {}
    for _ in range(_REPEATS):
        with QuantileService(_config(shards)) as service:
            url, stop = _serve(protocol, service)
            try:
                with ServiceClient(url, timeout=60.0) as client:
                    payloads = [
                        data[begin : begin + _BATCH]
                        for begin in range(0, data.size, _BATCH)
                    ]
                    if protocol == "http":
                        # The v1 wire: JSON float lists, like old callers.
                        payloads = [p.tolist() for p in payloads]
                    start = time.perf_counter()
                    for payload in payloads:
                        client.ingest(payload)
                    client.snapshot()
                    ingest_seconds = time.perf_counter() - start

                    vectors = 0
                    start = time.perf_counter()
                    while time.perf_counter() - start < _QUERY_SECONDS:
                        if protocol == "binary":
                            replies = client.quantiles_many([phis] * _PIPELINE)
                        else:
                            replies = [client.quantiles(phis)]
                        vectors += len(replies)
                    query_seconds = (time.perf_counter() - start) / vectors

                    vec = replies[-1]
                    assert vec.count == data.size
                    stats = client.stats()
            finally:
                stop()
            service.close(final_snapshot=False)
        best_ingest = max(best_ingest, data.size / ingest_seconds)
        best_qps = max(best_qps, 1.0 / query_seconds)
        row = {
            "protocol": protocol,
            "shards": shards,
            "elements": int(data.size),
            "ingest_seconds": data.size / best_ingest,
            "ingest_elements_per_second": best_ingest,
            "query_seconds_per_vector": 1.0 / best_qps,
            "queries_per_second": best_qps,
            "pipeline_depth": _PIPELINE if protocol == "binary" else 1,
            "guarantee_merged": vec.guarantee,
            "guarantee_per_shard": max(
                s["guarantee"] for s in stats["per_shard"]
            ),
        }
    return row


def main() -> dict[str, object]:
    data = np.random.default_rng(7).uniform(size=_N)
    before = [_measure("http", shards, data) for shards in _SHARD_COUNTS]
    after = [_measure("binary", shards, data) for shards in _SHARD_COUNTS]
    speedups = [
        {
            "shards": b["shards"],
            "ingest": a["ingest_elements_per_second"]
            / b["ingest_elements_per_second"],
            "query": a["queries_per_second"] / b["queries_per_second"],
        }
        for b, a in zip(before, after)
    ]
    report = {
        "benchmark": "service_throughput",
        "elements": _N,
        "query_phis": len(dectile_fractions()),
        "before_http": before,
        "after_binary": after,
        "speedup_binary_over_http": speedups,
    }
    _OUT.write_text(json.dumps(report, indent=2) + "\n")
    for rows, label in ((before, "http  "), (after, "binary")):
        for row in rows:
            print(
                f"{label} shards={row['shards']}: "
                f"{row['ingest_elements_per_second']:,.0f} elements/s ingest, "
                f"{row['queries_per_second']:,.0f} vectors/s query "
                f"(merged guarantee {row['guarantee_merged']}, "
                f"per-shard {row['guarantee_per_shard']})"
            )
    for s in speedups:
        print(
            f"speedup shards={s['shards']}: "
            f"ingest {s['ingest']:.1f}x, query {s['query']:.1f}x"
        )
    print(f"wrote {_OUT}")
    return report


def bench_service_ingest_and_query(benchmark):
    """One full sweep under pytest-benchmark (headline numbers in extra_info)."""
    report = run_once(benchmark, main)
    for row in report["after_binary"]:
        key = f"binary_shards_{row['shards']}"
        benchmark.extra_info[f"{key}_ingest_eps"] = row[
            "ingest_elements_per_second"
        ]
        benchmark.extra_info[f"{key}_query_qps"] = row["queries_per_second"]
        # Even the single-shard binary path must sustain a meaningful
        # rate; the floor is far below any observed run to avoid CI flake.
        assert row["ingest_elements_per_second"] > 1e5
    for s in report["speedup_binary_over_http"]:
        benchmark.extra_info[f"speedup_ingest_shards_{s['shards']}"] = s["ingest"]
        benchmark.extra_info[f"speedup_query_shards_{s['shards']}"] = s["query"]


if __name__ == "__main__":
    main()
