"""Serving throughput: what the sharded service sustains end to end.

Not a paper experiment — release engineering for :mod:`repro.service`.
Measures, at 1/4/8 shards:

* **ingest throughput** — elements/second through route → bounded queue →
  worker fold, including the epoch snapshot at the end (the full cost of
  making the data queryable);
* **query latency** — seconds per 9-quantile query against the served
  epoch (lock-free reads of the merged summary).

Run as a script to (re)generate the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

which writes ``BENCH_service.json`` at the repo root, or through
pytest-benchmark like the other benches for ``--benchmark-json`` output.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.metrics import dectile_fractions
from repro.service import QuantileService, ServiceConfig

try:  # pytest-benchmark path; absent when run as a plain script
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None

_N = 1_000_000
_SHARD_COUNTS = (1, 4, 8)
_QUERY_ROUNDS = 200
_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _config(shards: int) -> ServiceConfig:
    return ServiceConfig(
        num_shards=shards,
        run_size=100_000,
        sample_size=1_000,
        queue_capacity=64,
    )


def _measure(shards: int, data: np.ndarray) -> dict[str, float]:
    phis = dectile_fractions()
    with QuantileService(_config(shards)) as service:
        start = time.perf_counter()
        for begin in range(0, data.size, 50_000):
            service.ingest(data[begin : begin + 50_000])
        service.snapshot()
        ingest_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(_QUERY_ROUNDS):
            result = service.query(phis)
        query_seconds = (time.perf_counter() - start) / _QUERY_ROUNDS

        assert result.count == data.size
        service.close(final_snapshot=False)
    return {
        "shards": shards,
        "elements": int(data.size),
        "ingest_seconds": ingest_seconds,
        "ingest_elements_per_second": data.size / ingest_seconds,
        "query_seconds_per_call": query_seconds,
        "queries_per_second": 1.0 / query_seconds,
        "guarantee": result.guarantee,
    }


def main() -> dict[str, object]:
    data = np.random.default_rng(7).uniform(size=_N)
    rows = [_measure(shards, data) for shards in _SHARD_COUNTS]
    report = {
        "benchmark": "service_throughput",
        "elements": _N,
        "query_phis": 9,
        "rows": rows,
    }
    _OUT.write_text(json.dumps(report, indent=2) + "\n")
    for row in rows:
        print(
            f"shards={row['shards']}: "
            f"{row['ingest_elements_per_second']:,.0f} elements/s ingest, "
            f"{row['query_seconds_per_call'] * 1e6:,.0f} us/query"
        )
    print(f"wrote {_OUT}")
    return report


def bench_service_ingest_and_query(benchmark):
    """One full sweep under pytest-benchmark (headline numbers in extra_info)."""
    report = run_once(benchmark, main)
    for row in report["rows"]:
        key = f"shards_{row['shards']}"
        benchmark.extra_info[f"{key}_ingest_eps"] = row[
            "ingest_elements_per_second"
        ]
        benchmark.extra_info[f"{key}_query_qps"] = row["queries_per_second"]
        # Even the single-shard service must sustain a meaningful rate;
        # the floor is far below any observed run to avoid CI flakiness.
        assert row["ingest_elements_per_second"] > 1e5


if __name__ == "__main__":
    main()
