"""Ablation A8: summary compaction — bounded memory for long-lived summaries.

A library extension past the paper: incremental summaries grow by ``r·s``
samples per ingested batch.  :meth:`OPAQSummary.compact_to` bounds them by
collapsing adjacent gap groups; the original sub-run bookkeeping keeps the
guarantee proportional to the *coarsened gap*, not to ``runs × gap``.
This bench sweeps the memory/accuracy frontier that trade creates.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import IncrementalOPAQ, OPAQConfig, quantile_bounds
from repro.experiments import TableResult
from repro.metrics import dectile_fractions


def _frontier():
    rng = np.random.default_rng(29)
    batches = [rng.uniform(size=20_000) for _ in range(10)]
    sd = np.sort(np.concatenate(batches))
    n = sd.size
    config = OPAQConfig(run_size=4000, sample_size=200)
    result = TableResult(
        title=f"Ablation A8: compaction frontier (n={n:,}, 10 batches)",
        header=["max samples", "kept", "guarantee", "worst actual rank err"],
    )
    rows = []
    for max_samples in (None, 4000, 1000, 250):
        inc = IncrementalOPAQ(config, max_samples=max_samples)
        for batch in batches:
            inc.update(batch)
        worst = 0
        enclosed = True
        for phi in dectile_fractions():
            b = quantile_bounds(inc.summary, float(phi))
            true = sd[b.rank - 1]
            enclosed &= b.lower <= true <= b.upper
            below = b.rank - np.searchsorted(sd, b.lower, side="right")
            above = np.searchsorted(sd, b.upper, side="left") - b.rank
            worst = max(worst, int(below), int(above))
        guarantee = inc.guaranteed_rank_error()
        rows.append((max_samples, inc.summary.num_samples, guarantee, worst, enclosed))
        result.add_row(
            max_samples if max_samples else "unbounded",
            inc.summary.num_samples,
            guarantee,
            worst,
        )
    result.paper_reference["rows"] = rows
    return result


def bench_compaction_frontier(benchmark, show):
    result = run_once(benchmark, _frontier)
    show(result)
    rows = result.paper_reference["rows"]
    for max_samples, kept, guarantee, worst, enclosed in rows:
        assert enclosed
        assert worst <= guarantee
        if max_samples:
            assert kept <= max_samples
    # Guarantees degrade monotonically as memory shrinks...
    guarantees = [g for _, _, g, _, _ in rows]
    assert guarantees == sorted(guarantees)
    # ...but stay a small fraction of n even at 250 samples for 200k keys.
    assert guarantees[-1] < 0.05 * 200_000
    benchmark.extra_info["frontier"] = [
        {"max_samples": r[0], "guarantee": r[2], "worst": r[3]} for r in rows
    ]
