"""Ablation A1: the selection strategy behind the sample phase.

The paper discusses three ways to extract the regular samples of a run
(deterministic selection, randomized selection, sorting).  All produce
identical samples; this ablation measures what they cost — the one bench
in the suite where the *wall time* is the result.
"""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig

_N = 200_000
_RUN = 20_000
_S = 1000


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(42).uniform(size=_N)


@pytest.mark.parametrize(
    "strategy", ["numpy", "sort", "median_of_medians", "floyd_rivest"]
)
def bench_sample_phase_strategy(benchmark, data, strategy):
    config = OPAQConfig(run_size=_RUN, sample_size=_S, strategy=strategy)
    opaq = OPAQ(config)
    summary = benchmark(opaq.summarize, data)
    # All strategies agree on the samples (determinism of regular ranks).
    reference = OPAQ(
        OPAQConfig(run_size=_RUN, sample_size=_S, strategy="sort")
    ).summarize(data)
    np.testing.assert_array_equal(summary.samples, reference.samples)
